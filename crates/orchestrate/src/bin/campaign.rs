//! Command-line front end for fuzzing campaigns — single-process and
//! orchestrated.
//!
//! ```text
//! campaign [--threads N] [--budget N] [--apps KUE,MKD,...] [--corpus DIR]
//!          [--deadline-secs S] [--no-shrink] [--replay-checks N]
//!          [--seed N] [--presets LIST] [--verify DIR] [--list [--json]]
//!          [--directed] [--conform] [--prune] [--analyze] [--races-out PATH]
//!          [--attempts N] [--metrics-out PATH] [--trace-out PATH]
//!          [--obs-level LEVEL] [--bench-execs] [--bench-window-ms N]
//!          [--bench-warmup-ms N] [--bench-out PATH]
//!          [--orchestrate | --bench-orchestrate] [--shards N] [--rounds N]
//!          [--round-budget N] [--slices N] [--scheduler thompson|ucb]
//!          [--workdir DIR] [--merged-corpus DIR] [--orch-out PATH]
//!          [--worker-deadline-secs S] [--induce-crash K]
//!          [--bench-orch-out PATH]
//! ```
//!
//! Plain `std::env::args` parsing — no argument-parsing dependency.
//! Under `--orchestrate` this binary becomes the parent of N copies of
//! itself, each running one (app, preset, mode) arm in single-campaign
//! mode.

use std::process::ExitCode;

use nodefz_campaign::{report, run_with_progress, BenchConfig, CampaignConfig, Corpus, Event};
use nodefz_orchestrate::{OrchConfig, SchedulerKind};

const USAGE: &str = "usage: campaign [options]
       campaign report [--workdir DIR] [--out DIR]
       campaign explain REPRO [options]
       campaign sa [--apps LIST] [--conform N] [--family F] [--out PATH]
                   [--soundness] [--gated] [--tripwire N] [--canary]
                   [--apicov PATH]
       campaign lint [--apps LIST]
  --threads N        worker threads (default 4)
  --budget N         total fuzz runs (default 400)
  --apps A,B,C       bug abbreviations to target (default: the fig6 set)
  --presets LIST     comma-separated fuzz presets to arm (standard,
                     aggressive, guided); the special name 'directed'
                     enables the race-directed arm, alone it means a
                     directed-only campaign
  --corpus DIR       persist minimized repros into DIR
  --deadline-secs S  wall-clock budget; drain gracefully when exceeded
  --no-shrink        skip delta-debugging of new findings
  --replay-checks N  acceptance replays per repro (default 10)
  --seed N           base environment seed (default 1)
  --verify DIR       replay every corpus entry in DIR and exit
  --list             list known bug abbreviations and exit
  --json             with --list: print the nodefz-arms-v1 arm space for
                     the targeted apps instead of the human listing
  --directed         add a race-directed bandit arm per app, fed by
                     happens-before analysis of one recorded run
  --conform          add the CONFORM and CONFORM-API arms: generated
                     event-driven programs (independent sampling and
                     API-graph traversal) judged against the runtime's
                     ordering oracle; campaigns that pull CONFORM-API
                     embed a nodefz-apicov-v1 coverage block in the final
                     metrics snapshot
  --prune            classify every run into its happens-before
                     equivalence class online and report pruning counters
                     (distinct/redundant and redundancy ratio) in metrics
                     snapshots; the dispatched run stream is unchanged,
                     so found bugs and corpora are byte-identical with or
                     without the flag
  --analyze          predict races from one recorded run per app, confirm
                     them with race-directed runs, and exit
  --races-out PATH   where --analyze writes the nodefz-races-v1 report
                     (default RACES_report.json)
  --attempts N       directed confirmation attempts per predicted flip
                     under --analyze (default 24; 0 = predict only)
  --unranked         with --analyze: chase predicted races in plain
                     happens-before order instead of ranking them by
                     static-candidate priority (the A/B baseline)
  --metrics-out PATH write nodefz-metrics-v1 telemetry snapshots to PATH,
                     refreshed every ~500ms and finalized at drain
  --journal-out PATH write the nodefz-journal-v1 flight recorder (arm
                     pulls with bandit state, prune verdicts, bug
                     discoveries) to PATH at drain
  --trace-out PATH   after the campaign, record one instrumented run as a
                     chrome://tracing timeline (needs an obs-feature build)
  --obs-level LEVEL  worker loop profiling: off | counters | full
                     (default off; above off needs an obs-feature build)
  --bench-execs      measure execs/sec per (app, preset) and exit
  --bench-window-ms N  measurement window per arm (default 400)
  --bench-warmup-ms N  warmup per arm, excluded from measurement (default 100)
  --bench-out PATH   where to write the JSON report
                     (default BENCH_throughput.json)
  --orchestrate      run the multi-process orchestrator: shard budget
                     slices of the full app x preset x mode arm space
                     across child campaign processes and merge their
                     corpora with cross-shard dedup
  --shards N         concurrent worker processes (default 2)
  --rounds N         budget rounds incl. the initial coverage round
                     (default 3)
  --round-budget N   fuzz runs per budget slice (default 40)
  --slices N         slices per post-coverage round (default: arm count)
  --scheduler S      round allocation policy: thompson | ucb
                     (default thompson)
  --workdir DIR      orchestrator scratch dir (default nodefz-orch)
  --merged-corpus DIR  canonical merged corpus (default WORKDIR/corpus)
  --orch-out PATH    nodefz-orch-v1 rollup, refreshed per round
                     (default ORCH_report.json)
  --worker-deadline-secs S  kill-and-quarantine deadline per worker
                     (default 120)
  --induce-crash K   deliberately crash the K-th work item's worker
                     (crash-robustness testing)
  --bench-orchestrate  run the same orchestration under thompson and ucb
                     and write the execs-to-discovery comparison
  --bench-orch-out PATH  where --bench-orchestrate writes the report
                     (default BENCH_orchestrate.json)

campaign report — merge an orchestrated workdir's flight recorders
  --workdir DIR      the orchestrator workdir to read (default nodefz-orch)
  --out DIR          where to write the merged journal.jsonl and
                     timeline.json (default WORKDIR/report)

campaign sa — static race prediction without executing a schedule
  --apps A,B,C       apps whose static models to analyze (default: every
                     registered app, buggy and fixed variants)
  --conform N        also model and analyze the first N generated
                     programs of a conform seed family (default 0; the
                     soundness/gated/canary sweeps default to 200 when
                     this is unset)
  --family F         conform seed family for --conform and the sweeps
                     (default 0, the CI smoke family; 3 is the API-graph
                     family)
  --apicov PATH      run the family's first N programs (N as for the
                     sweeps) under vanilla scheduling and write their
                     nodefz-apicov-v1 API-coverage document to PATH
  --out PATH         where to write the nodefz-sa-v1 report
                     (default SA_report.json)
  --soundness        run the dynamic soundness gate over the conform
                     programs: every dynamically predicted race must be
                     covered by a static candidate, else exit nonzero
  --gated            run the static-first differential sweep: programs
                     the analyzer proves race-free skip the differential
                     harness, tripwires re-check every Nth skip
  --tripwire N       tripwire cadence under --gated (default 8)
  --canary           sabotage the analyzer (drop one candidate per
                     program) and exit zero only if the soundness gate
                     trips — proves the gate can fail

campaign lint — schedule-sensitivity lints over app static models
  --apps A,B,C       apps to lint (default: every registered app);
                     advisory only, always exits zero

campaign explain REPRO — explain one confirmed bug's race causally
  REPRO              a corpus .repro file (see --corpus / --verify)
  --report-out PATH  write the nodefz-race-report-v1 JSON to PATH
  --html-out PATH    also render a self-contained HTML report
  --check            replay only the explained flip and verify the bug
                     still manifests (exit nonzero when it does not)
  --attempts N       directed replays per flip cut under --check
                     (default 24)
  --no-color         plain output (also honored: NO_COLOR)";

/// What to run instead of a campaign, if anything.
struct AltMode {
    verify: Option<String>,
    list: bool,
    /// With `list`: emit the machine-readable arm enumeration.
    list_json: bool,
    bench: Option<BenchOpts>,
    analyze: Option<AnalyzeOpts>,
    /// Append the CONFORM arm to the targeted apps (after the default
    /// set is filled in, so `--conform` alone fuzzes fig6 + CONFORM).
    conform: bool,
    orchestrate: bool,
    bench_orchestrate: bool,
    orch: OrchOpts,
    /// Undocumented worker sabotage: abort the process after N runs.
    crash_after_runs: Option<u64>,
}

struct OrchOpts {
    shards: usize,
    rounds: u32,
    round_budget: u64,
    slices: Option<usize>,
    scheduler: SchedulerKind,
    workdir: String,
    merged_corpus: Option<String>,
    orch_out: String,
    worker_deadline_secs: u64,
    induce_crash: Option<usize>,
    bench_out: String,
}

impl Default for OrchOpts {
    fn default() -> OrchOpts {
        OrchOpts {
            shards: 2,
            rounds: 3,
            round_budget: 40,
            slices: None,
            scheduler: SchedulerKind::Thompson,
            workdir: "nodefz-orch".into(),
            merged_corpus: None,
            orch_out: "ORCH_report.json".into(),
            worker_deadline_secs: 120,
            induce_crash: None,
            bench_out: "BENCH_orchestrate.json".into(),
        }
    }
}

struct AnalyzeOpts {
    races_out: String,
    attempts: u64,
    /// Keep the happens-before race order instead of static ranking.
    unranked: bool,
}

impl Default for AnalyzeOpts {
    fn default() -> AnalyzeOpts {
        AnalyzeOpts {
            races_out: "RACES_report.json".into(),
            attempts: 24,
            unranked: false,
        }
    }
}

struct BenchOpts {
    window_ms: u64,
    warmup_ms: u64,
    out: String,
}

impl Default for BenchOpts {
    fn default() -> BenchOpts {
        BenchOpts {
            window_ms: 400,
            warmup_ms: 100,
            out: "BENCH_throughput.json".into(),
        }
    }
}

fn parse_presets(cfg: &mut CampaignConfig, spec: &str) -> Result<(), String> {
    let mut presets = Vec::new();
    for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        if name.eq_ignore_ascii_case("directed") {
            cfg.directed = true;
        } else {
            let index = nodefz_campaign::preset_index(name).ok_or_else(|| {
                format!(
                    "--presets: unknown preset '{name}' (known: {}, directed)",
                    nodefz_campaign::PRESETS.join(", ")
                )
            })?;
            if !presets.contains(&index) {
                presets.push(index);
            }
        }
    }
    cfg.presets = presets;
    Ok(())
}

fn parse_args(args: &[String]) -> Result<(CampaignConfig, AltMode), String> {
    let mut cfg = CampaignConfig::default();
    let mut alt = AltMode {
        verify: None,
        list: false,
        list_json: false,
        bench: None,
        analyze: None,
        conform: false,
        orchestrate: false,
        bench_orchestrate: false,
        orch: OrchOpts::default(),
        crash_after_runs: None,
    };
    let mut bench_opts = BenchOpts::default();
    let mut bench = false;
    let mut analyze_opts = AnalyzeOpts::default();
    let mut analyze = false;
    let mut conform = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        fn num<T: std::str::FromStr>(name: &str, raw: String) -> Result<T, String> {
            raw.parse().map_err(|_| format!("{name}: not a number"))
        }
        match arg.as_str() {
            "--threads" => cfg.threads = num("--threads", value("--threads")?)?,
            "--budget" => cfg.budget = num("--budget", value("--budget")?)?,
            "--apps" => {
                cfg.apps = value("--apps")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--presets" => {
                let spec = value("--presets")?;
                parse_presets(&mut cfg, &spec)?;
            }
            "--corpus" => cfg.corpus_dir = Some(value("--corpus")?.into()),
            "--deadline-secs" => {
                let secs: u64 = num("--deadline-secs", value("--deadline-secs")?)?;
                cfg.deadline = Some(std::time::Duration::from_secs(secs));
            }
            "--no-shrink" => cfg.shrink = false,
            "--replay-checks" => {
                cfg.replay_checks = num("--replay-checks", value("--replay-checks")?)?;
            }
            "--seed" => cfg.base_seed = num("--seed", value("--seed")?)?,
            "--verify" => alt.verify = Some(value("--verify")?),
            "--list" => alt.list = true,
            "--json" => alt.list_json = true,
            "--directed" => cfg.directed = true,
            "--conform" => conform = true,
            "--prune" => cfg.prune = true,
            "--analyze" => analyze = true,
            "--races-out" => analyze_opts.races_out = value("--races-out")?,
            "--attempts" => analyze_opts.attempts = num("--attempts", value("--attempts")?)?,
            "--unranked" => analyze_opts.unranked = true,
            "--metrics-out" => cfg.metrics_out = Some(value("--metrics-out")?.into()),
            "--journal-out" => cfg.journal_out = Some(value("--journal-out")?.into()),
            "--trace-out" => cfg.trace_out = Some(value("--trace-out")?.into()),
            "--obs-level" => {
                let spelled = value("--obs-level")?;
                cfg.obs_level = nodefz_obs::ObsLevel::parse(&spelled)
                    .ok_or_else(|| format!("--obs-level: unknown level '{spelled}'"))?;
            }
            "--bench-execs" => bench = true,
            "--bench-window-ms" => {
                bench_opts.window_ms = num("--bench-window-ms", value("--bench-window-ms")?)?;
            }
            "--bench-warmup-ms" => {
                bench_opts.warmup_ms = num("--bench-warmup-ms", value("--bench-warmup-ms")?)?;
            }
            "--bench-out" => bench_opts.out = value("--bench-out")?,
            "--orchestrate" => alt.orchestrate = true,
            "--bench-orchestrate" => alt.bench_orchestrate = true,
            "--shards" => alt.orch.shards = num("--shards", value("--shards")?)?,
            "--rounds" => alt.orch.rounds = num("--rounds", value("--rounds")?)?,
            "--round-budget" => {
                alt.orch.round_budget = num("--round-budget", value("--round-budget")?)?;
            }
            "--slices" => alt.orch.slices = Some(num("--slices", value("--slices")?)?),
            "--scheduler" => {
                let spelled = value("--scheduler")?;
                alt.orch.scheduler = SchedulerKind::parse(&spelled)
                    .ok_or_else(|| format!("--scheduler: unknown policy '{spelled}'"))?;
            }
            "--workdir" => alt.orch.workdir = value("--workdir")?,
            "--merged-corpus" => alt.orch.merged_corpus = Some(value("--merged-corpus")?),
            "--orch-out" => alt.orch.orch_out = value("--orch-out")?,
            "--worker-deadline-secs" => {
                alt.orch.worker_deadline_secs =
                    num("--worker-deadline-secs", value("--worker-deadline-secs")?)?;
            }
            "--induce-crash" => {
                alt.orch.induce_crash = Some(num("--induce-crash", value("--induce-crash")?)?);
            }
            "--bench-orch-out" => alt.orch.bench_out = value("--bench-orch-out")?,
            "--crash-after-runs" => {
                alt.crash_after_runs =
                    Some(num("--crash-after-runs", value("--crash-after-runs")?)?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    if bench {
        alt.bench = Some(bench_opts);
    }
    if analyze {
        alt.analyze = Some(analyze_opts);
    }
    if conform {
        alt.conform = true;
    }
    Ok((cfg, alt))
}

/// The fig6 experiment set: every reproduced bug the paper fuzzes.
fn default_apps() -> Vec<String> {
    nodefz_apps::registry()
        .iter()
        .map(|c| c.info())
        .filter(|i| i.in_fig6)
        .map(|i| i.abbr.to_string())
        .collect()
}

fn verify_corpus(dir: &str) -> ExitCode {
    // Opening would create a missing directory, and an empty corpus
    // verifies vacuously — so a typo'd path must not look like a pass.
    if !std::path::Path::new(dir).is_dir() {
        eprintln!("campaign: corpus {dir} does not exist");
        return ExitCode::FAILURE;
    }
    let corpus = match Corpus::open(std::path::Path::new(dir)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("campaign: cannot open corpus {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let entries = match corpus.load_all() {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("campaign: cannot load corpus {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures = 0;
    for entry in &entries {
        match nodefz_campaign::verify_entry(entry) {
            Ok(()) => println!("ok   {}", entry.file_name()),
            Err(e) => {
                failures += 1;
                println!("FAIL {e}");
            }
        }
    }
    println!(
        "verified {}/{} entries",
        entries.len() - failures,
        entries.len()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_bench(cfg: &CampaignConfig, opts: &BenchOpts) -> ExitCode {
    let bench_cfg = BenchConfig {
        apps: cfg.apps.clone(),
        warmup: std::time::Duration::from_millis(opts.warmup_ms),
        window: std::time::Duration::from_millis(opts.window_ms),
        base_seed: cfg.base_seed,
    };
    println!(
        "bench: {} apps x {} presets, {}ms warmup + {}ms window per arm",
        bench_cfg.apps.len(),
        nodefz_campaign::PRESETS.len(),
        opts.warmup_ms,
        opts.window_ms,
    );
    let report = match nodefz_campaign::measure(&bench_cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign: {e}");
            return ExitCode::FAILURE;
        }
    };
    for arm in &report.arms {
        println!(
            "  {:<4} {:<10} {:>8} runs  {:>9.1} execs/s  {:>8.1} distinct/s  {:>10.1} effective/s  {:>5.3} redundancy",
            arm.app,
            arm.preset,
            arm.runs,
            arm.execs_per_sec(),
            arm.canon.distinct_per_sec(),
            arm.pruned.effective_per_sec(),
            arm.canon.redundancy_ratio(),
        );
    }
    println!(
        "  snapshot-fork: {:.1} forks/s, {:.1} distinct/s",
        report.snapshot_fork.forks_per_sec(),
        report.snapshot_fork.distinct_per_sec(),
    );
    println!(
        "  total: {} runs, {:.1} execs/s, {:.1} distinct/s, {:.1} effective/s ({:.3} redundancy)",
        report.total_runs(),
        report.total_execs_per_sec(),
        report.total_distinct_per_sec(),
        report.total_effective_per_sec(),
        report.total_redundancy_ratio(),
    );
    if let Err(e) = std::fs::write(&opts.out, report.to_json()) {
        eprintln!("campaign: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("  wrote {}", opts.out);
    ExitCode::SUCCESS
}

fn run_analyze(cfg: &CampaignConfig, opts: &AnalyzeOpts) -> ExitCode {
    let analyze_cfg = nodefz_campaign::AnalyzeConfig {
        apps: cfg.apps.clone(),
        env_seed: cfg.base_seed,
        attempts: opts.attempts,
        races_out: Some(opts.races_out.clone().into()),
        corpus_dir: cfg.corpus_dir.clone(),
        replay_checks: cfg.replay_checks,
        ranked: !opts.unranked,
    };
    println!(
        "analyze: {} apps at env seed {}, {} directed attempts per flip ({})",
        analyze_cfg.apps.len(),
        analyze_cfg.env_seed,
        analyze_cfg.attempts,
        if analyze_cfg.ranked {
            "static-ranked"
        } else {
            "unranked"
        },
    );
    let started = std::time::Instant::now();
    let report = match nodefz_campaign::analyze_campaign(&analyze_cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign: {e}");
            return ExitCode::FAILURE;
        }
    };
    for analysis in &report.analyses {
        println!(
            "  {:<4} {} events, {} accesses, {} predicted pair(s)",
            analysis.app,
            analysis.events,
            analysis.accesses,
            analysis.races.len(),
        );
        for race in &analysis.races {
            println!(
                "       {:<3} {:<20} {} x {} (cut {}, chain {})",
                race.class.label(),
                race.site,
                race.a.kind,
                race.b.kind,
                race.cut,
                race.chain_cut,
            );
        }
    }
    for c in &report.confirmed {
        println!(
            "  confirmed {:<4} {:<3} {:<20} in {} directed exec(s)",
            c.app, c.class, c.site, c.execs,
        );
    }
    for (app, error) in &report.failed {
        println!("  FAILED {app}: {error}");
    }
    println!(
        "analyze: {} predicted, {} confirmed, {} failed in {} directed exec(s); wrote {}",
        report.analyses.iter().map(|a| a.races.len()).sum::<usize>(),
        report.confirmed.len(),
        report.failed.len(),
        report.directed_execs,
        opts.races_out,
    );
    if report.sa.models > 0 {
        println!(
            "analyze: static models for {} app(s): {} candidate(s) ({} AV-capable, {} OV, {} COV), {} dynamically confirmed",
            report.sa.models,
            report.sa.candidates,
            report.sa.av,
            report.sa.ov,
            report.sa.cov,
            report.sa.confirmed,
        );
    }
    if let Some(path) = &cfg.metrics_out {
        let snapshot = nodefz_campaign::MetricsSnapshot {
            elapsed: started.elapsed(),
            budget: report.directed_execs,
            runs: report.directed_execs,
            dispatched: 0,
            manifested: report.confirmed.len() as u64,
            unique_bugs: report.confirmed.len() as u64,
            finished: true,
            arms: Vec::new(),
            discovery: Vec::new(),
            phases: Vec::new(),
            callbacks: Vec::new(),
            run_dispatched: None,
            pruning: None,
            prune_health: None,
            sa: Some(report.sa),
            apicov: None,
        };
        if let Err(e) = nodefz_obs::write_atomic(path, &snapshot.to_json()) {
            eprintln!("campaign: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote metrics {}", path.display());
    }
    if report.failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn orch_config(cfg: &CampaignConfig, opts: &OrchOpts) -> Result<OrchConfig, String> {
    let worker_bin = std::env::current_exe()
        .map_err(|e| format!("cannot resolve own binary for worker spawns: {e}"))?;
    Ok(OrchConfig {
        apps: cfg.apps.clone(),
        shards: opts.shards,
        rounds: opts.rounds,
        slices_per_round: opts.slices,
        slice_budget: opts.round_budget,
        base_seed: cfg.base_seed,
        scheduler: opts.scheduler,
        workdir: opts.workdir.clone().into(),
        merged_corpus: opts.merged_corpus.clone().map(Into::into),
        orch_out: Some(opts.orch_out.clone().into()),
        worker_deadline: std::time::Duration::from_secs(opts.worker_deadline_secs),
        worker_bin,
        induce_crash: opts.induce_crash,
        replay_checks: cfg.replay_checks,
        prune: cfg.prune,
    })
}

fn run_orchestrate(cfg: &CampaignConfig, opts: &OrchOpts) -> ExitCode {
    let orch = match orch_config(cfg, opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("campaign: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "orchestrate: {} apps, {} scheduler, {} rounds x {} runs/slice on {} shard(s)",
        orch.apps.len(),
        orch.scheduler.label(),
        orch.rounds,
        orch.slice_budget,
        orch.shards,
    );
    match nodefz_orchestrate::orchestrate(&orch, |line| println!("{line}")) {
        Ok(report) => {
            let arm_pruning = report.arm_pruning();
            for (arm, pruning) in report.arms.iter().zip(&arm_pruning) {
                println!(
                    "  {:<28} {:>3} slice(s)  {:>3} new bug(s)  {:>6} runs{}{}",
                    arm.spec.label(),
                    arm.pulls,
                    arm.new_bugs,
                    arm.runs,
                    pruning
                        .map(|p| {
                            format!("  {} distinct / {} effective", p.distinct, p.effective())
                        })
                        .unwrap_or_default(),
                    arm.quarantined
                        .as_ref()
                        .map(|r| format!("  QUARANTINED ({r})"))
                        .unwrap_or_default(),
                );
            }
            if let Some(p) = report.pruning_totals() {
                println!(
                    "orchestrate: pruning saw {} runs, {} distinct class(es), {} skipped ({} effective dispositions)",
                    p.runs,
                    p.distinct,
                    p.skipped,
                    p.effective(),
                );
            }
            println!(
                "orchestrate: {} unique bug(s) in merged corpus {} after {} runs",
                report.unique_bugs(),
                report.merged_dir.display(),
                report.total_runs,
            );
            println!("wrote {}", opts.orch_out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_bench_orchestrate(cfg: &CampaignConfig, opts: &OrchOpts) -> ExitCode {
    let orch = match orch_config(cfg, opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("campaign: {e}");
            return ExitCode::FAILURE;
        }
    };
    match nodefz_orchestrate::bench_orchestrate(&orch, |line| println!("{line}")) {
        Ok(bench) => {
            for report in [&bench.thompson, &bench.ucb] {
                println!(
                    "  {:<9} {} unique bug(s) in {} runs, full discovery at {}",
                    report.scheduler.label(),
                    report.unique_bugs(),
                    report.total_runs,
                    report
                        .execs_to_full_discovery()
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "-".into()),
                );
            }
            if let Err(e) =
                nodefz_obs::write_atomic(std::path::Path::new(&opts.bench_out), &bench.to_json())
            {
                eprintln!("campaign: cannot write {}: {e}", opts.bench_out);
                return ExitCode::FAILURE;
            }
            println!("wrote {}", opts.bench_out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `campaign report`: merge an orchestrated workdir's journals and
/// worker traces into one tagged journal plus a unified timeline.
fn run_report(args: &[String]) -> ExitCode {
    let mut workdir = "nodefz-orch".to_string();
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result = match arg.as_str() {
            "--workdir" => value("--workdir").map(|v| workdir = v),
            "--out" => value("--out").map(|v| out = Some(v)),
            "--help" | "-h" => Err(USAGE.to_string()),
            other => Err(format!("report: unknown argument '{other}'\n{USAGE}")),
        };
        if let Err(message) = result {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    let workdir = std::path::PathBuf::from(workdir);
    let out = out.map_or_else(|| workdir.join("report"), std::path::PathBuf::from);
    match nodefz_orchestrate::merge_report(&workdir, &out) {
        Ok(summary) => {
            println!(
                "report: merged {} worker journal(s) + orchestrator ({} events), {} timeline span(s) from {} traced worker(s)",
                summary.workers, summary.events, summary.spans, summary.traced,
            );
            println!("wrote {}", summary.journal_out.display());
            println!("wrote {}", summary.timeline_out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `campaign explain REPRO`: render one corpus entry's causal race
/// report, optionally validating it with a directed-flip replay.
fn run_explain(args: &[String]) -> ExitCode {
    let mut repro: Option<String> = None;
    let mut report_out: Option<String> = None;
    let mut html_out: Option<String> = None;
    let mut color = std::env::var_os("NO_COLOR").is_none();
    let mut explain_cfg = nodefz_explain::ExplainConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result = match arg.as_str() {
            "--report-out" => value("--report-out").map(|v| report_out = Some(v)),
            "--html-out" => value("--html-out").map(|v| html_out = Some(v)),
            "--check" => {
                explain_cfg.check = true;
                Ok(())
            }
            "--no-color" => {
                color = false;
                Ok(())
            }
            "--attempts" => value("--attempts").and_then(|v| {
                v.parse()
                    .map(|n| explain_cfg.attempts = n)
                    .map_err(|_| "--attempts: not a number".to_string())
            }),
            "--help" | "-h" => Err(USAGE.to_string()),
            other if !other.starts_with('-') && repro.is_none() => {
                repro = Some(other.to_string());
                Ok(())
            }
            other => Err(format!("explain: unknown argument '{other}'\n{USAGE}")),
        };
        if let Err(message) = result {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    let Some(repro) = repro else {
        eprintln!("explain: a REPRO file is required\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&repro) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("campaign: cannot read {repro}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let entry = match nodefz_campaign::CorpusEntry::decode(&text) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("campaign: {repro} is not a nodefz-repro document: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match nodefz_explain::explain_entry(&entry, &explain_cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", nodefz_explain::render_ansi(&report, color));
    if let Some(path) = &report_out {
        if let Err(e) = nodefz_obs::write_atomic(
            std::path::Path::new(path),
            &nodefz_explain::to_json(&report),
        ) {
            eprintln!("campaign: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = &html_out {
        if let Err(e) = nodefz_obs::write_atomic(
            std::path::Path::new(path),
            &nodefz_explain::render_html(&report),
        ) {
            eprintln!("campaign: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if explain_cfg.check && !report.check.is_some_and(|c| c.manifested) {
        eprintln!("campaign: --check failed: the explained flip did not re-manifest the bug");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Splits a `--apps` value into trimmed, non-empty abbreviations.
fn split_apps(spec: &str) -> Vec<String> {
    spec.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Every registered app abbreviation, fig6 or not — the static analyzer
/// costs nothing to run, so it defaults to full coverage.
fn all_apps() -> Vec<String> {
    nodefz_apps::registry()
        .iter()
        .map(|c| c.info().abbr.to_string())
        .collect()
}

struct SaOpts {
    apps: Option<Vec<String>>,
    conform: u64,
    family: u64,
    out: String,
    soundness: bool,
    gated: bool,
    tripwire: u64,
    canary: bool,
    /// Where to write the family's `nodefz-apicov-v1` coverage document,
    /// if requested.
    apicov: Option<String>,
}

impl Default for SaOpts {
    fn default() -> SaOpts {
        SaOpts {
            apps: None,
            conform: 0,
            family: 0,
            out: "SA_report.json".into(),
            soundness: false,
            gated: false,
            tripwire: 8,
            canary: false,
            apicov: None,
        }
    }
}

fn parse_sa_args(args: &[String]) -> Result<SaOpts, String> {
    let mut opts = SaOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        fn num(name: &str, raw: String) -> Result<u64, String> {
            raw.parse().map_err(|_| format!("{name}: not a number"))
        }
        match arg.as_str() {
            "--apps" => opts.apps = Some(split_apps(&value("--apps")?)),
            "--conform" => opts.conform = num("--conform", value("--conform")?)?,
            "--family" => opts.family = num("--family", value("--family")?)?,
            "--out" => opts.out = value("--out")?,
            "--soundness" => opts.soundness = true,
            "--gated" => opts.gated = true,
            "--tripwire" => opts.tripwire = num("--tripwire", value("--tripwire")?)?,
            "--canary" => opts.canary = true,
            "--apicov" => opts.apicov = Some(value("--apicov")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("sa: unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// `campaign sa`: analyze app static models (and optionally generated
/// conform programs) without executing a single schedule, write the
/// `nodefz-sa-v1` report, and optionally run the dynamic soundness
/// gate, the static-first gated differential sweep, or the
/// broken-analyzer canary.
fn run_sa(args: &[String]) -> ExitCode {
    use nodefz_apps::common::Variant;

    let opts = match parse_sa_args(args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let apps = opts.apps.clone().unwrap_or_else(all_apps);
    let mut analyses = Vec::new();
    for abbr in &apps {
        let Some(case) = nodefz_apps::by_abbr(abbr) else {
            eprintln!("sa: unknown app '{abbr}'");
            return ExitCode::FAILURE;
        };
        let mut modeled = false;
        for variant in [Variant::Buggy, Variant::Fixed] {
            let Some(model) = case.static_model(variant) else {
                continue;
            };
            modeled = true;
            let analysis = nodefz_sa::analyze_model(model);
            println!(
                "  {:<4} {:<6} {:>3} atom(s)  {:>3} candidate(s)  {:>3} lint(s)",
                analysis.model.name,
                analysis.model.variant,
                analysis.model.atoms.len(),
                analysis.candidates.len(),
                analysis.lints.len(),
            );
            analyses.push(analysis);
        }
        if !modeled {
            println!("  {abbr:<4} (no static model)");
        }
    }

    let pool = Some(nodefz_rt::LoopPool::new());
    let sweep_count = if opts.conform > 0 { opts.conform } else { 200 };
    if opts.conform > 0 {
        let mut race_free = 0u64;
        let mut candidates = 0usize;
        for i in 0..opts.conform {
            let seed = nodefz_sa::family_seed(opts.family, i);
            let prog = std::rc::Rc::new(nodefz_conform::generate_family(opts.family, seed));
            let pm = nodefz_sa::model_of_prog(&prog, &format!("conform-{seed:016x}"));
            let analysis = nodefz_sa::analyze_model(pm.model);
            race_free += u64::from(analysis.candidates.is_empty());
            candidates += analysis.candidates.len();
            analyses.push(analysis);
        }
        println!(
            "sa: modeled {} conform program(s) of family {}: {} candidate(s), {} proven race-free",
            opts.conform, opts.family, candidates, race_free,
        );
    }

    let report = nodefz_sa::sa_report(&analyses);
    if let Err(e) = nodefz_obs::write_atomic(std::path::Path::new(&opts.out), &report) {
        eprintln!("campaign: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!(
        "sa: {} model(s), {} candidate(s), {} lint finding(s); wrote {}",
        analyses.len(),
        analyses.iter().map(|a| a.candidates.len()).sum::<usize>(),
        analyses.iter().map(|a| a.lints.len()).sum::<usize>(),
        opts.out,
    );

    if let Some(path) = &opts.apicov {
        // Coverage accounting over the same seed stream the sweeps walk:
        // run each program once under vanilla scheduling and fold it into
        // one `nodefz-apicov-v1` document.
        let mut cov = nodefz_conform::ApiCoverage::default();
        for i in 0..sweep_count {
            let seed = nodefz_sa::family_seed(opts.family, i);
            let prog = std::rc::Rc::new(nodefz_conform::generate_family(opts.family, seed));
            let (report, log) =
                nodefz_conform::run_logged(&prog, seed, nodefz_conform::Mode::Vanilla, &pool);
            let completed = matches!(report.termination, nodefz_rt::Termination::Quiescent);
            cov.record(
                &prog,
                &log,
                &nodefz_conform::OracleCtx {
                    demux: false,
                    completed,
                },
            );
        }
        let snap = cov.snapshot();
        if let Err(e) =
            nodefz_obs::write_atomic(std::path::Path::new(path), &format!("{}\n", snap.to_json()))
        {
            eprintln!("campaign: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "apicov: {} program(s) of family {}: {}/{} nodes, {}/{} edges, {}/{} rules; wrote {path}",
            snap.programs,
            opts.family,
            snap.nodes_covered,
            snap.nodes_total,
            snap.edges_covered,
            snap.edges_total,
            snap.rules_covered,
            snap.rules_total,
        );
    }

    if opts.soundness {
        let stats = match nodefz_sa::sweep_family(opts.family, sweep_count, &pool) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("campaign: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "soundness: {} program(s), {} dynamic race(s), {} candidate(s) ({} confirmed), {} race-free",
            stats.programs,
            stats.dynamic,
            stats.metrics.candidates,
            stats.metrics.confirmed,
            stats.race_free,
        );
        if !stats.missing.is_empty() {
            for miss in stats.missing.iter().take(10) {
                eprintln!("  MISS {miss}");
            }
            eprintln!(
                "sa: soundness gate FAILED — {} dynamic prediction(s) uncovered",
                stats.missing.len()
            );
            return ExitCode::FAILURE;
        }
        println!("soundness: gate holds — every dynamic prediction is statically covered");
    }

    if opts.gated {
        let diff_cfg = nodefz_conform::DiffConfig {
            pool: Some(nodefz_rt::LoopPool::new()),
            ..nodefz_conform::DiffConfig::default()
        };
        match nodefz_sa::static_gated_sweep(opts.family, sweep_count, opts.tripwire, &diff_cfg) {
            Ok(s) => println!(
                "gated: {} program(s): {} race-free, {} skipped, {} tripwire(s), {} differential(s)",
                s.programs, s.race_free, s.skipped, s.tripwires, s.differentials,
            ),
            Err(e) => {
                eprintln!("campaign: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.canary {
        let mut tripped = false;
        for i in 0..sweep_count {
            let seed = nodefz_sa::family_seed(opts.family, i);
            let prog = std::rc::Rc::new(nodefz_conform::generate_family(opts.family, seed));
            match nodefz_sa::check_prog(&prog, seed, &pool, true) {
                Ok(check) if !check.missing.is_empty() => {
                    println!(
                        "canary: gate tripped at seed {seed:#018x} after {} program(s) ({} miss(es))",
                        i + 1,
                        check.missing.len(),
                    );
                    tripped = true;
                    break;
                }
                Ok(_) => {}
                Err(e) => {
                    eprintln!("campaign: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if !tripped {
            eprintln!(
                "sa: canary FAILED — the sabotaged analyzer never tripped the \
                 soundness gate across {sweep_count} program(s)"
            );
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}

/// `campaign lint`: run the schedule-sensitivity lint pass over app
/// static models. Advisory only — findings are printed, never fatal.
fn run_lint(args: &[String]) -> ExitCode {
    use nodefz_apps::common::Variant;

    let mut apps: Option<Vec<String>> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let result = match arg.as_str() {
            "--apps" => match it.next() {
                Some(spec) => {
                    apps = Some(split_apps(spec));
                    Ok(())
                }
                None => Err("--apps needs a value".to_string()),
            },
            "--help" | "-h" => Err(USAGE.to_string()),
            other => Err(format!("lint: unknown argument '{other}'\n{USAGE}")),
        };
        if let Err(message) = result {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    let apps = apps.unwrap_or_else(all_apps);
    let mut findings = 0usize;
    let mut models = 0usize;
    for abbr in &apps {
        let Some(case) = nodefz_apps::by_abbr(abbr) else {
            eprintln!("lint: unknown app '{abbr}'");
            return ExitCode::FAILURE;
        };
        for variant in [Variant::Buggy, Variant::Fixed] {
            let Some(model) = case.static_model(variant) else {
                continue;
            };
            models += 1;
            let idx = nodefz_sa::MhpIndex::build(&model);
            let lints = nodefz_sa::lint_model(&model, &idx);
            for lint in &lints {
                let atoms = lint
                    .atoms
                    .iter()
                    .map(|&a| model.atoms[a as usize].label.as_str())
                    .collect::<Vec<_>>()
                    .join(" ~ ");
                println!(
                    "  {:<12} {:<24} {:<14} {} ({})",
                    format!("{}/{}", model.name, model.variant),
                    lint.rule,
                    lint.site,
                    lint.detail,
                    atoms,
                );
            }
            findings += lints.len();
        }
    }
    println!("lint: {findings} finding(s) over {models} model(s); advisory only");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => return run_report(&args[1..]),
        Some("explain") => return run_explain(&args[1..]),
        Some("sa") => return run_sa(&args[1..]),
        Some("lint") => return run_lint(&args[1..]),
        _ => {}
    }
    let (mut cfg, alt) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = alt.verify {
        return verify_corpus(&dir);
    }
    if cfg.apps.is_empty() {
        cfg.apps = default_apps();
    }
    if alt.conform {
        for abbr in [nodefz_conform::ABBR, nodefz_conform::API_ABBR] {
            if !cfg.apps.iter().any(|a| a.eq_ignore_ascii_case(abbr)) {
                cfg.apps.push(abbr.into());
            }
        }
    }
    if alt.list {
        if alt.list_json {
            // The machine-readable contract an orchestrating process
            // consumes: the arm space for the *resolved* app set.
            print!(
                "{}",
                nodefz_campaign::arms_to_json(&nodefz_campaign::arm_space(&cfg.apps))
            );
            return ExitCode::SUCCESS;
        }
        for case in nodefz_apps::registry() {
            let info = case.info();
            println!("{:<4} {:<16} {}", info.abbr, info.name, info.bug_ref);
        }
        let conform = nodefz_conform::bug_case().info();
        println!(
            "{:<4} {:<16} {}",
            conform.abbr, "conformance arm", conform.bug_ref
        );
        let api = nodefz_conform::api_bug_case().info();
        println!("{:<4} {:<16} {}", api.abbr, "API-graph arm", api.bug_ref);
        return ExitCode::SUCCESS;
    }
    if let Some(opts) = &alt.bench {
        return run_bench(&cfg, opts);
    }
    if let Some(opts) = &alt.analyze {
        return run_analyze(&cfg, opts);
    }
    if alt.bench_orchestrate {
        return run_bench_orchestrate(&cfg, &alt.orch);
    }
    if alt.orchestrate {
        return run_orchestrate(&cfg, &alt.orch);
    }

    println!(
        "campaign: {} runs over {} apps on {} threads{}",
        cfg.budget,
        cfg.apps.len(),
        cfg.threads,
        cfg.corpus_dir
            .as_ref()
            .map(|d| format!(", corpus {}", d.display()))
            .unwrap_or_default(),
    );
    let crash_after = alt.crash_after_runs;
    let outcome = run_with_progress(&cfg, |event| {
        if let Event::Run { completed, budget } = event {
            // Deliberate mid-campaign death for orchestrator
            // crash-robustness tests: die hard (no exit code, no drain),
            // exactly like a segfaulting worker would.
            if crash_after.is_some_and(|n| *completed >= n) {
                std::process::abort();
            }
            // Sample run ticks so a large budget does not flood the console.
            let step = (budget / 20).max(1);
            if completed % step == 0 || completed == budget {
                println!("  {completed}/{budget} runs");
            }
            return;
        }
        if let Some(line) = report::render_event(event) {
            println!("{line}");
        }
    });
    match outcome {
        Ok(report_data) => {
            print!("{}", report::render_summary(&report_data));
            if let Some(path) = &cfg.metrics_out {
                println!("wrote metrics {}", path.display());
            }
            if let Some(path) = &cfg.trace_out {
                println!("wrote trace {}", path.display());
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("campaign: {message}");
            ExitCode::FAILURE
        }
    }
}
