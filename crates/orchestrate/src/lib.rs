//! # nodefz-orchestrate — multi-process campaign orchestration
//!
//! One `campaign` process parallelizes fuzz runs across worker threads;
//! this crate adds the level above: a campaign *of campaigns*. The
//! orchestrator enumerates the full arm space — every app × preset ×
//! mode (fuzz / directed / conform) — and shards budget slices across N
//! child `campaign` worker processes:
//!
//! ```text
//!             ┌► worker proc (KUE/standard/fuzz)  ──► corpus shard ─┐
//! orchestrate ┼► worker proc (KUE/directed)       ──► corpus shard ─┼► merge ─► canonical corpus
//!    ▲        └► worker proc (CONFORM/aggressive) ──► corpus shard ─┘    │
//!    └──────────── Thompson-sampling budget reallocation ◄──────────────┘
//! ```
//!
//! * [`scheduler`] — Thompson sampling over Beta posteriors (reward =
//!   new unique bugs per budget slice), with the in-process UCB policy
//!   kept as a fallback for comparison.
//! * [`worker`] — child-process lifecycle: spawn the same binary in
//!   single-campaign mode, poll, kill past the deadline, classify exits.
//! * [`merge`] — cross-shard corpus merge with [`BugSignature`] dedup;
//!   the merged corpus is canonical and passes `campaign --verify`.
//! * [`orch`] — the round loop tying it together, plus the
//!   `nodefz-orch-v1` rollup and the Thompson-vs-UCB bench.
//! * [`report`] — merges the orchestrator's and every worker's
//!   `nodefz-journal-v1` flight recorders plus per-worker chrome traces
//!   into one tagged journal and one unified Perfetto timeline.
//!
//! Work-item seeds derive from (arm, per-arm pull count) only and round
//! results are processed in spawn-index order, so the found-bug set is
//! invariant to the shard count; crashed, stalled, or erroring workers
//! quarantine their arm and have their partial corpus salvaged instead
//! of failing the campaign.
//!
//! [`BugSignature`]: nodefz_trace::BugSignature

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod merge;
pub mod orch;
pub mod report;
pub mod scheduler;
pub mod worker;

pub use merge::MergedCorpus;
pub use orch::{
    bench_orchestrate, orchestrate, work_seed, OrchBenchReport, OrchConfig, OrchDiscovery,
    OrchReport, WorkPruning, WorkRecord,
};
pub use report::{merge_report, ReportSummary};
pub use scheduler::{ArmState, Scheduler, SchedulerKind, SplitMix};
pub use worker::{Outcome, WorkItem};
