//! Round-level arm scheduling: Thompson sampling with a UCB fallback.
//!
//! The orchestrator's unit of allocation is one *budget slice* — a fixed
//! number of fuzz runs handed to one worker process running one
//! (app, preset, mode) arm. Each round the scheduler picks which arms
//! get the round's slices. Two policies:
//!
//! * **Thompson sampling** (default): each arm keeps a Beta posterior
//!   over "a slice of this arm yields at least one new unique bug". A
//!   pick samples every posterior and plays the argmax, so exploration
//!   falls out of posterior width instead of a tuned bonus term. Rewards
//!   are the *new-unique-bug count* a slice contributed to the merged
//!   corpus: `n` new bugs add `n` successes, a dry slice adds one
//!   failure. Between rounds both counts decay toward the prior, because
//!   bug yield is non-stationary — an arm's bugs deplete as they are
//!   found, and yesterday's star arm must be re-provable.
//! * **UCB**: the single-process campaign's allocator
//!   (mean + exploration bound), kept as `--scheduler ucb` so orchestrated
//!   runs can be compared against the old policy on equal footing.
//!
//! All randomness comes from a splitmix64 stream seeded by the campaign
//! base seed, so a whole orchestration is reproducible.

use nodefz_campaign::ArmSpec;

/// Which allocation policy drives budget rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Beta-posterior Thompson sampling (default).
    Thompson,
    /// Mean + exploration-bound UCB, as inside a single campaign process.
    Ucb,
}

impl SchedulerKind {
    /// The CLI/report spelling.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Thompson => "thompson",
            SchedulerKind::Ucb => "ucb",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s {
            "thompson" => Some(SchedulerKind::Thompson),
            "ucb" => Some(SchedulerKind::Ucb),
            _ => None,
        }
    }
}

/// Per-round decay of the Beta counts (non-stationarity: found bugs
/// don't come back).
const DECAY: f64 = 0.9;

/// UCB exploration weight, matching the in-process bandit's scale.
const UCB_C: f64 = 0.5;

/// Scheduler-side state of one orchestrated arm.
#[derive(Clone, Debug)]
pub struct ArmState {
    /// What the arm runs.
    pub spec: ArmSpec,
    /// Decayed count of new-unique-bug successes.
    pub successes: f64,
    /// Decayed count of dry slices.
    pub failures: f64,
    /// Budget slices played on this arm so far.
    pub pulls: u64,
    /// Undecayed total of new unique bugs this arm contributed.
    pub new_bugs: u64,
    /// Fuzz runs this arm's workers actually executed.
    pub runs: u64,
    /// Why the arm was quarantined, if it was (crashed/stalled/errored
    /// worker). Quarantined arms receive no further slices.
    pub quarantined: Option<String>,
}

/// Thompson/UCB allocator over the orchestrated arm space.
#[derive(Debug)]
pub struct Scheduler {
    kind: SchedulerKind,
    arms: Vec<ArmState>,
    rng: SplitMix,
}

impl Scheduler {
    /// Creates a scheduler over `arms`, with all posteriors at the
    /// uniform prior. `seed` fixes the sampling stream.
    pub fn new(kind: SchedulerKind, arms: Vec<ArmSpec>, seed: u64) -> Scheduler {
        Scheduler {
            kind,
            arms: arms
                .into_iter()
                .map(|spec| ArmState {
                    spec,
                    successes: 0.0,
                    failures: 0.0,
                    pulls: 0,
                    new_bugs: 0,
                    runs: 0,
                    quarantined: None,
                })
                .collect(),
            rng: SplitMix::new(seed ^ 0x5eed_0c4e_d01e_0001),
        }
    }

    /// Which policy this scheduler runs.
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// All arm states, in enumeration order.
    pub fn arms(&self) -> &[ArmState] {
        &self.arms
    }

    /// Indices of arms still eligible for slices.
    pub fn active(&self) -> Vec<usize> {
        (0..self.arms.len())
            .filter(|&i| self.arms[i].quarantined.is_none())
            .collect()
    }

    /// Marks one slice as played on `arm` without consulting the policy
    /// (the coverage round plays every arm unconditionally).
    pub fn pull(&mut self, arm: usize) {
        self.arms[arm].pulls += 1;
    }

    /// Picks the arm for one budget slice, or `None` when every arm is
    /// quarantined. Marks the pick as a pull.
    pub fn pick(&mut self) -> Option<usize> {
        let active = self.active();
        let choice = match self.kind {
            SchedulerKind::Thompson => {
                // Sample every active posterior; play the argmax.
                let mut best: Option<(usize, f64)> = None;
                for &i in &active {
                    let arm = &self.arms[i];
                    let draw = self.rng.beta(arm.successes + 1.0, arm.failures + 1.0);
                    if best.is_none_or(|(_, b)| draw > b) {
                        best = Some((i, draw));
                    }
                }
                best.map(|(i, _)| i)
            }
            SchedulerKind::Ucb => {
                let total: u64 = active.iter().map(|&i| self.arms[i].pulls).sum();
                let mut best: Option<(usize, f64)> = None;
                for &i in &active {
                    let arm = &self.arms[i];
                    // Optimistic start: an unpulled arm always wins a slot.
                    let score = if arm.pulls == 0 {
                        f64::INFINITY
                    } else {
                        let mean = arm.successes / (arm.successes + arm.failures).max(1.0);
                        let bonus =
                            UCB_C * ((2.0 * (total.max(1) as f64).ln()) / arm.pulls as f64).sqrt();
                        mean + bonus
                    };
                    if best.is_none_or(|(_, b)| score > b) {
                        best = Some((i, score));
                    }
                }
                best.map(|(i, _)| i)
            }
        }?;
        self.arms[choice].pulls += 1;
        Some(choice)
    }

    /// Credits a finished slice: `new_bugs` signatures the slice added to
    /// the merged corpus, `runs` fuzz runs it executed.
    pub fn reward(&mut self, arm: usize, new_bugs: u64, runs: u64) {
        let state = &mut self.arms[arm];
        if new_bugs > 0 {
            state.successes += new_bugs as f64;
        } else {
            state.failures += 1.0;
        }
        state.new_bugs += new_bugs;
        state.runs += runs;
    }

    /// Removes an arm from future rounds; its already-merged findings stay.
    pub fn quarantine(&mut self, arm: usize, reason: &str) {
        self.arms[arm].quarantined = Some(reason.to_string());
    }

    /// Ends a round: decays the Thompson posteriors toward the prior.
    pub fn end_round(&mut self) {
        if self.kind == SchedulerKind::Thompson {
            for arm in &mut self.arms {
                arm.successes *= DECAY;
                arm.failures *= DECAY;
            }
        }
    }
}

/// splitmix64: tiny, deterministic, and already the repo's seed-derivation
/// primitive — no RNG dependency needed.
#[derive(Debug)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Seeds the stream.
    pub fn new(seed: u64) -> SplitMix {
        SplitMix { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal via Box-Muller.
    fn normal(&mut self) -> f64 {
        // Guard the log: next_f64 can return exactly 0.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Gamma(alpha, 1) via Marsaglia-Tsang squeeze; only `alpha >= 1` is
    /// ever needed here (Beta parameters are count + 1).
    fn gamma(&mut self, alpha: f64) -> f64 {
        debug_assert!(alpha >= 1.0);
        let d = alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = self.next_f64().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }

    /// Beta(a, b) draw as a Gamma ratio.
    pub fn beta(&mut self, a: f64, b: f64) -> f64 {
        let ga = self.gamma(a);
        let gb = self.gamma(b);
        ga / (ga + gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_campaign::ArmMode;

    fn arm(app: &str, preset: &str) -> ArmSpec {
        ArmSpec {
            app: app.to_string(),
            preset: preset.to_string(),
            mode: ArmMode::Fuzz,
        }
    }

    #[test]
    fn beta_draws_stay_in_unit_interval_and_track_the_mean() {
        let mut rng = SplitMix::new(7);
        let mut sum = 0.0;
        const N: usize = 2000;
        for _ in 0..N {
            let x = rng.beta(9.0, 1.0);
            assert!((0.0..=1.0).contains(&x), "{x}");
            sum += x;
        }
        let mean = sum / N as f64;
        // Beta(9,1) has mean 0.9.
        assert!((mean - 0.9).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn thompson_shifts_budget_toward_the_yielding_arm() {
        let mut s = Scheduler::new(
            SchedulerKind::Thompson,
            vec![arm("KUE", "standard"), arm("MKD", "standard")],
            3,
        );
        // Arm 0 always yields a new bug, arm 1 never does.
        for _ in 0..200 {
            let i = s.pick().unwrap();
            s.reward(i, if i == 0 { 1 } else { 0 }, 10);
        }
        let pulls: Vec<u64> = s.arms().iter().map(|a| a.pulls).collect();
        assert!(
            pulls[0] > 3 * pulls[1],
            "yielding arm should dominate: {pulls:?}"
        );
        assert!(pulls[1] > 0, "dry arm still gets some exploration");
    }

    #[test]
    fn ucb_plays_every_arm_before_exploiting() {
        let mut s = Scheduler::new(
            SchedulerKind::Ucb,
            vec![arm("A", "p"), arm("B", "p"), arm("C", "p")],
            1,
        );
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            seen.insert(s.pick().unwrap());
        }
        assert_eq!(seen.len(), 3, "optimistic start covers all arms first");
    }

    #[test]
    fn quarantined_arms_receive_no_further_slices() {
        let mut s = Scheduler::new(
            SchedulerKind::Thompson,
            vec![arm("A", "p"), arm("B", "p")],
            5,
        );
        s.quarantine(0, "worker crashed");
        for _ in 0..20 {
            assert_eq!(s.pick(), Some(1));
        }
        s.quarantine(1, "worker stalled");
        assert_eq!(s.pick(), None, "all quarantined means no pick");
        assert_eq!(s.arms()[0].quarantined.as_deref(), Some("worker crashed"));
    }

    #[test]
    fn same_seed_same_history_means_same_picks() {
        let arms = vec![arm("A", "p"), arm("B", "p"), arm("C", "p")];
        let mut a = Scheduler::new(SchedulerKind::Thompson, arms.clone(), 11);
        let mut b = Scheduler::new(SchedulerKind::Thompson, arms, 11);
        for step in 0..50 {
            let pa = a.pick().unwrap();
            let pb = b.pick().unwrap();
            assert_eq!(pa, pb, "step {step}");
            let bugs = u64::from(step % 3 == 0 && pa == 1);
            a.reward(pa, bugs, 4);
            b.reward(pb, bugs, 4);
            if step % 10 == 9 {
                a.end_round();
                b.end_round();
            }
        }
    }

    #[test]
    fn decay_forgets_stale_evidence() {
        let mut s = Scheduler::new(SchedulerKind::Thompson, vec![arm("A", "p")], 2);
        s.reward(0, 10, 1);
        let before = s.arms()[0].successes;
        s.end_round();
        assert!(s.arms()[0].successes < before);
        assert_eq!(s.arms()[0].new_bugs, 10, "reporting totals never decay");
    }
}
