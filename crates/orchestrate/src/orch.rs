//! The orchestration loop: rounds of budget slices across worker
//! processes, cross-shard merge, rollup reporting.
//!
//! Round 0 is the *coverage round*: every arm in the enumerated space
//! gets exactly one slice, so the full app × preset × mode grid is
//! touched before any allocation policy kicks in. Every later round asks
//! the [`Scheduler`] for each slice's arm. Work items are identified by
//! a global spawn index; results are processed **in index order**, not
//! completion order, and each item's seed derives from (arm, per-arm
//! pull count) only — so the found-bug set and the scheduler trajectory
//! are invariant to the shard count, which merely bounds how many
//! workers run at once.
//!
//! Crash robustness: a worker that exits nonzero, dies on a signal, or
//! outlives the worker deadline quarantines its arm for the rest of the
//! campaign; whatever its shard corpus holds is salvaged into the merge
//! and the round continues.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::time::Duration;

use nodefz_campaign::{arm_space, ArmSpec};
use nodefz_obs::{Journal, JournalEvent, JsonValue, JsonWriter, WorkerState, JOURNAL_CAP};

use crate::merge::MergedCorpus;
use crate::scheduler::{ArmState, Scheduler, SchedulerKind, SplitMix};
use crate::worker::{self, Outcome, WorkItem};

/// Everything an orchestrated campaign needs.
#[derive(Clone, Debug)]
pub struct OrchConfig {
    /// Bug abbreviations whose arm space to enumerate.
    pub apps: Vec<String>,
    /// Maximum concurrently running worker processes.
    pub shards: usize,
    /// Total rounds, including the coverage round.
    pub rounds: u32,
    /// Slices per post-coverage round (`None` = one per enumerated arm).
    pub slices_per_round: Option<usize>,
    /// Fuzz runs per budget slice.
    pub slice_budget: u64,
    /// Base environment seed; work-item seeds derive from it.
    pub base_seed: u64,
    /// Allocation policy for post-coverage rounds.
    pub scheduler: SchedulerKind,
    /// Scratch directory for per-slice work dirs.
    pub workdir: PathBuf,
    /// Canonical merged corpus (`None` = `{workdir}/corpus`).
    pub merged_corpus: Option<PathBuf>,
    /// Where to write the `nodefz-orch-v1` rollup, refreshed per round
    /// (`None` = no rollup file).
    pub orch_out: Option<PathBuf>,
    /// Kill-and-quarantine deadline per worker.
    pub worker_deadline: Duration,
    /// The campaign binary to spawn workers from.
    pub worker_bin: PathBuf,
    /// Sabotage the work item with this global index (testing).
    pub induce_crash: Option<usize>,
    /// Replay acceptance checks forwarded to workers.
    pub replay_checks: u32,
    /// Forward `--prune` to workers: each child campaign classifies its
    /// runs into happens-before equivalence classes and reports pruning
    /// counters in its metrics snapshot, which the rollup aggregates into
    /// effective throughput per arm.
    pub prune: bool,
}

impl Default for OrchConfig {
    fn default() -> OrchConfig {
        OrchConfig {
            apps: Vec::new(),
            shards: 2,
            rounds: 3,
            slices_per_round: None,
            slice_budget: 40,
            base_seed: 1,
            scheduler: SchedulerKind::Thompson,
            workdir: PathBuf::from("nodefz-orch"),
            merged_corpus: None,
            orch_out: None,
            worker_deadline: Duration::from_secs(120),
            worker_bin: PathBuf::new(),
            induce_crash: None,
            replay_checks: 10,
            prune: false,
        }
    }
}

impl OrchConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.apps.is_empty() {
            return Err("at least one app must be targeted".into());
        }
        if self.shards == 0 {
            return Err("shards must be at least 1".into());
        }
        if self.rounds == 0 {
            return Err("rounds must be at least 1".into());
        }
        if self.slice_budget == 0 {
            return Err("round budget must be at least 1 run".into());
        }
        if self.worker_bin.as_os_str().is_empty() {
            return Err("worker binary path is empty".into());
        }
        Ok(())
    }

    /// The canonical merged corpus directory.
    pub fn merged_corpus_dir(&self) -> PathBuf {
        self.merged_corpus
            .clone()
            .unwrap_or_else(|| self.workdir.join("corpus"))
    }
}

/// Pruning counters one worker reported — the optional `pruning` block
/// of its `nodefz-metrics-v1` snapshot, present when the child campaign
/// ran with `--prune`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkPruning {
    /// Runs the child's pruner classified.
    pub runs: u64,
    /// Runs landing in a fresh happens-before class (seen-set inserts).
    pub distinct: u64,
    /// Runs landing in an already-seen class.
    pub redundant: u64,
    /// Schedule classes dispositioned without executing them.
    pub skipped: u64,
    /// Prefix-forked runs.
    pub forked: u64,
}

impl WorkPruning {
    /// Classes dispositioned: executed-and-distinct plus
    /// skipped-without-executing.
    pub fn effective(&self) -> u64 {
        self.distinct + self.skipped
    }

    fn add(&mut self, other: &WorkPruning) {
        self.runs += other.runs;
        self.distinct += other.distinct;
        self.redundant += other.redundant;
        self.skipped += other.skipped;
        self.forked += other.forked;
    }

    fn write_fields(&self, w: &mut JsonWriter) {
        w.field_u64("runs", self.runs);
        w.field_u64("distinct", self.distinct);
        w.field_u64("redundant", self.redundant);
        w.field_u64("skipped", self.skipped);
        w.field_u64("forked", self.forked);
        w.field_u64("effective", self.effective());
    }
}

/// One executed budget slice, for the rollup.
#[derive(Clone, Debug)]
pub struct WorkRecord {
    /// Global spawn index.
    pub index: usize,
    /// Round the slice ran in.
    pub round: u32,
    /// `APP/preset/mode` label of the arm.
    pub arm: String,
    /// Environment seed of the child campaign.
    pub seed: u64,
    /// How the worker ended.
    pub outcome: String,
    /// Fuzz runs the worker reported executing.
    pub runs: u64,
    /// New unique bugs the slice contributed to the merge.
    pub new_bugs: u64,
    /// Corpus files skipped while salvaging the shard.
    pub salvage_skipped: u64,
    /// Pruning counters the worker reported (`None` when the child ran
    /// without `--prune` or died before its first snapshot).
    pub pruning: Option<WorkPruning>,
}

/// When one merged bug was first discovered, in global execs.
#[derive(Clone, Debug)]
pub struct OrchDiscovery {
    /// `APP:digest` signature of the bug.
    pub signature: String,
    /// Global fuzz-run index (summed over slices in processing order) at
    /// which the bug first manifested.
    pub exec: u64,
}

/// What a finished orchestration reports — also the `nodefz-orch-v1`
/// rollup document.
#[derive(Clone, Debug)]
pub struct OrchReport {
    /// Allocation policy that ran.
    pub scheduler: SchedulerKind,
    /// Concurrency bound used.
    pub shards: usize,
    /// Rounds completed so far.
    pub rounds_done: u32,
    /// Rounds planned.
    pub rounds: u32,
    /// Fuzz runs per slice.
    pub slice_budget: u64,
    /// Fuzz runs executed across all workers.
    pub total_runs: u64,
    /// Final scheduler arm states, in enumeration order.
    pub arms: Vec<ArmState>,
    /// Every executed slice, in processing order.
    pub work: Vec<WorkRecord>,
    /// Global discovery curve of the merged corpus.
    pub discovery: Vec<OrchDiscovery>,
    /// Entries in the merged canonical corpus.
    pub merged_entries: usize,
    /// Where the merged corpus lives.
    pub merged_dir: PathBuf,
    /// Whether all planned rounds ran (false in mid-campaign snapshots
    /// and when every arm got quarantined).
    pub finished: bool,
}

impl OrchReport {
    /// Distinct bugs in the merged corpus.
    pub fn unique_bugs(&self) -> usize {
        self.merged_entries
    }

    /// Global exec count at which the *last* unique bug was found — the
    /// bench's execs-to-full-discovery figure. `None` when nothing was
    /// found.
    pub fn execs_to_full_discovery(&self) -> Option<u64> {
        self.discovery.iter().map(|d| d.exec).max()
    }

    /// Campaign-wide pruning totals summed over all slices that reported
    /// counters; `None` when no worker pruned.
    pub fn pruning_totals(&self) -> Option<WorkPruning> {
        let mut total = WorkPruning::default();
        let mut any = false;
        for rec in &self.work {
            if let Some(p) = &rec.pruning {
                total.add(p);
                any = true;
            }
        }
        any.then_some(total)
    }

    /// Per-arm pruning totals in `self.arms` order (arms whose slices
    /// never reported counters get `None`).
    pub fn arm_pruning(&self) -> Vec<Option<WorkPruning>> {
        self.arms
            .iter()
            .map(|arm| {
                let label = arm.spec.label();
                let mut total = WorkPruning::default();
                let mut any = false;
                for rec in self.work.iter().filter(|r| r.arm == label) {
                    if let Some(p) = &rec.pruning {
                        total.add(p);
                        any = true;
                    }
                }
                any.then_some(total)
            })
            .collect()
    }

    /// Static-analyzer race-candidate counts per arm, in `self.arms`
    /// order (`None` for arms whose app has no static model — e.g. the
    /// CONFORM arm, whose programs are generated per seed).
    pub fn arm_sa_candidates(&self) -> Vec<Option<u64>> {
        self.arms
            .iter()
            .map(|arm| {
                let case = nodefz_apps::by_abbr(&arm.spec.app)?;
                let model = case.static_model(nodefz_apps::common::Variant::Buggy)?;
                let idx = nodefz_sa::MhpIndex::build(&model);
                Some(nodefz_sa::candidates(&model, &idx).len() as u64)
            })
            .collect()
    }

    /// Arms quarantined by worker failure, as (label, reason).
    pub fn quarantined(&self) -> Vec<(String, String)> {
        self.arms
            .iter()
            .filter_map(|a| {
                a.quarantined
                    .as_ref()
                    .map(|reason| (a.spec.label(), reason.clone()))
            })
            .collect()
    }

    /// Serializes the rollup as `nodefz-orch-v1`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "nodefz-orch-v1");
        w.field_str("scheduler", self.scheduler.label());
        w.field_u64("shards", self.shards as u64);
        w.field_u64("rounds_done", u64::from(self.rounds_done));
        w.field_u64("rounds", u64::from(self.rounds));
        w.field_u64("slice_budget", self.slice_budget);
        w.field_u64("total_runs", self.total_runs);
        w.field_u64("unique_bugs", self.merged_entries as u64);
        w.field_bool("finished", self.finished);
        if let Some(total) = self.pruning_totals() {
            w.key("pruning");
            w.begin_object();
            total.write_fields(&mut w);
            w.end_object();
        }
        let arm_pruning = self.arm_pruning();
        let arm_sa = self.arm_sa_candidates();
        w.key("arms");
        w.begin_array();
        for ((arm, pruning), sa) in self.arms.iter().zip(&arm_pruning).zip(&arm_sa) {
            w.begin_object();
            w.field_str("app", &arm.spec.app);
            w.field_str("preset", &arm.spec.preset);
            w.field_str("mode", arm.spec.mode.label());
            if let Some(n) = sa {
                w.field_u64("sa_candidates", *n);
            }
            w.field_u64("pulls", arm.pulls);
            w.field_f64("successes", arm.successes, 4);
            w.field_f64("failures", arm.failures, 4);
            w.field_u64("new_bugs", arm.new_bugs);
            w.field_u64("runs", arm.runs);
            w.field_bool("quarantined", arm.quarantined.is_some());
            if let Some(reason) = &arm.quarantined {
                w.field_str("quarantine_reason", reason);
            }
            if let Some(p) = pruning {
                w.key("pruning");
                w.begin_object();
                p.write_fields(&mut w);
                w.end_object();
            }
            w.end_object();
        }
        w.end_array();
        w.key("work");
        w.begin_array();
        for rec in &self.work {
            w.begin_object();
            w.field_u64("index", rec.index as u64);
            w.field_u64("round", u64::from(rec.round));
            w.field_str("arm", &rec.arm);
            w.field_u64("seed", rec.seed);
            w.field_str("outcome", &rec.outcome);
            w.field_u64("runs", rec.runs);
            w.field_u64("new_bugs", rec.new_bugs);
            w.field_u64("salvage_skipped", rec.salvage_skipped);
            if let Some(p) = &rec.pruning {
                w.key("pruning");
                w.begin_object();
                p.write_fields(&mut w);
                w.end_object();
            }
            w.end_object();
        }
        w.end_array();
        w.key("discovery");
        w.begin_array();
        for d in &self.discovery {
            w.begin_object();
            w.field_str("signature", &d.signature);
            w.field_u64("exec", d.exec);
            w.end_object();
        }
        w.end_array();
        w.key("merged");
        w.begin_object();
        w.field_str("dir", &self.merged_dir.display().to_string());
        w.field_u64("entries", self.merged_entries as u64);
        w.end_object();
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

/// Deterministic per-slice seed: depends on the arm label and on how
/// many slices that arm has already received — never on shard count,
/// spawn order, or wall clock.
pub fn work_seed(base: u64, arm_label: &str, nth_pull: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in arm_label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SplitMix::new(base ^ h ^ nth_pull.wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_u64()
}

/// The fields the orchestrator reads back from a worker's
/// `nodefz-metrics-v1` snapshot.
struct WorkerMetrics {
    runs: u64,
    /// (signature, first_exec) per discovered bug.
    discovery: Vec<(String, u64)>,
    /// The optional `pruning` counter block.
    pruning: Option<WorkPruning>,
}

/// Parses a worker metrics snapshot. A missing file is lenient (`Ok(None)`
/// — the worker may have died before its first snapshot), but a file that
/// *exists* with a wrong or absent schema is an error: a snapshot from a
/// mismatched worker build must not be silently treated as absence.
fn read_worker_metrics(path: &Path) -> Result<Option<WorkerMetrics>, String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(None);
    };
    let err = |e: String| format!("{}: {e}", path.display());
    let doc = JsonValue::parse(&text).map_err(|e| err(e.to_string()))?;
    nodefz_obs::expect_schema(&doc, "nodefz-metrics-v1").map_err(|e| err(e.to_string()))?;
    let parse = |field: &'static str| err(format!("bad or missing '{field}'"));
    let runs = doc
        .get("runs")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| parse("runs"))?;
    let discovery = doc
        .get("discovery")
        .and_then(|d| d.as_array())
        .map(|arr| {
            arr.iter()
                .filter_map(|d| {
                    Some((
                        d.get("signature")?.as_str()?.to_string(),
                        d.get("first_exec")?.as_u64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    let pruning = doc.get("pruning").and_then(|p| {
        Some(WorkPruning {
            runs: p.get("runs")?.as_u64()?,
            distinct: p.get("distinct")?.as_u64()?,
            redundant: p.get("redundant")?.as_u64()?,
            skipped: p.get("skipped")?.as_u64()?,
            forked: p.get("forked")?.as_u64()?,
        })
    });
    Ok(Some(WorkerMetrics {
        runs,
        discovery,
        pruning,
    }))
}

/// Runs one round's work items with at most `shards` live workers,
/// returning (item, outcome) pairs sorted by global index.
fn run_items(
    cfg: &OrchConfig,
    arms: &[ArmState],
    items: Vec<WorkItem>,
    journal: &mut Journal,
    progress: &mut dyn FnMut(String),
) -> Vec<(WorkItem, Outcome)> {
    let mut pending: VecDeque<WorkItem> = items.into();
    let mut running: Vec<worker::Handle> = Vec::new();
    let mut done: Vec<(WorkItem, Outcome)> = Vec::new();
    while !pending.is_empty() || !running.is_empty() {
        while running.len() < cfg.shards {
            let Some(item) = pending.pop_front() else {
                break;
            };
            let spec = &arms[item.arm].spec;
            match worker::spawn(&cfg.worker_bin, spec, &item, cfg.replay_checks, cfg.prune) {
                Ok(handle) => {
                    journal.push(JournalEvent::Worker {
                        index: item.index as u64,
                        arm: spec.label(),
                        state: WorkerState::Spawned,
                        reason: None,
                    });
                    running.push(handle);
                }
                Err(e) => {
                    progress(format!("  worker {} failed to start: {e}", spec.label()));
                    journal.push(JournalEvent::Worker {
                        index: item.index as u64,
                        arm: spec.label(),
                        state: WorkerState::Reaped,
                        reason: Some("spawn-failed".into()),
                    });
                    done.push((item, Outcome::SpawnFailed(e)));
                }
            }
        }
        let mut progressed = false;
        let mut i = 0;
        while i < running.len() {
            if let Some(outcome) = running[i].poll(cfg.worker_deadline) {
                let handle = running.swap_remove(i);
                if !outcome.is_ok() {
                    progress(format!(
                        "  worker {} ({}) {}",
                        handle.item.index,
                        arms[handle.item.arm].spec.label(),
                        outcome.label(),
                    ));
                }
                journal.push(JournalEvent::Worker {
                    index: handle.item.index as u64,
                    arm: arms[handle.item.arm].spec.label(),
                    state: WorkerState::Reaped,
                    reason: Some(outcome.label()),
                });
                done.push((handle.item, outcome));
                progressed = true;
            } else {
                i += 1;
            }
        }
        if !progressed && !running.is_empty() {
            std::thread::sleep(Duration::from_millis(15));
        }
    }
    done.sort_by_key(|(item, _)| item.index);
    done
}

/// Runs a full orchestrated campaign. `progress` receives console lines.
///
/// # Errors
///
/// On invalid configuration or an I/O failure in the orchestrator itself
/// (worker failures quarantine arms instead of erroring).
pub fn orchestrate(
    cfg: &OrchConfig,
    mut progress: impl FnMut(String),
) -> Result<OrchReport, String> {
    cfg.validate()?;
    let arms: Vec<ArmSpec> = arm_space(&cfg.apps);
    if arms.is_empty() {
        return Err("arm space is empty".into());
    }
    let slices = cfg.slices_per_round.unwrap_or(arms.len()).max(1);
    let mut scheduler = Scheduler::new(cfg.scheduler, arms, cfg.base_seed);
    let mut merged = MergedCorpus::new();
    let mut work: Vec<WorkRecord> = Vec::new();
    let mut discovery: Vec<OrchDiscovery> = Vec::new();
    let mut total_runs: u64 = 0;
    let mut next_index: usize = 0;
    let mut rounds_done: u32 = 0;

    std::fs::create_dir_all(&cfg.workdir)
        .map_err(|e| format!("workdir {}: {e}", cfg.workdir.display()))?;

    // Orchestrator flight recorder: arm picks with the posterior that
    // made them, worker lifecycle, merged discoveries. Written atomically
    // alongside the rollup so `campaign report` can reconstruct where the
    // budget went even after a crash.
    let mut journal = Journal::new(JOURNAL_CAP);
    let journal_path = cfg.workdir.join("journal.jsonl");

    for round in 0..cfg.rounds {
        // Coverage round touches every arm once; later rounds ask the
        // scheduler per slice.
        let picks: Vec<usize> = if round == 0 {
            let all = scheduler.active();
            all.iter().for_each(|&i| scheduler.pull(i));
            all
        } else {
            (0..slices).filter_map(|_| scheduler.pick()).collect()
        };
        if picks.is_empty() {
            progress(format!("round {round}: every arm quarantined, stopping"));
            break;
        }
        let items: Vec<WorkItem> = picks
            .into_iter()
            .map(|arm| {
                let state = &scheduler.arms()[arm];
                let label = state.spec.label();
                journal.push(JournalEvent::ArmPull {
                    exec: total_runs,
                    arm: label.clone(),
                    pulls: state.pulls,
                    mean_reward: state.successes / (state.successes + state.failures).max(1.0),
                    ucb: None,
                    successes: Some(state.successes),
                    failures: Some(state.failures),
                });
                let seed = work_seed(cfg.base_seed, &label, state.pulls - 1);
                let index = next_index;
                next_index += 1;
                WorkItem {
                    index,
                    round,
                    arm,
                    seed,
                    budget: cfg.slice_budget,
                    dir: cfg.workdir.join(format!(
                        "r{round}-i{index}-{}",
                        label.replace('/', "-").to_lowercase()
                    )),
                    sabotage: cfg.induce_crash == Some(index),
                }
            })
            .collect();
        progress(format!(
            "round {round}: {} slice(s) x {} runs on {} shard(s)",
            items.len(),
            cfg.slice_budget,
            cfg.shards,
        ));

        for (item, outcome) in run_items(cfg, scheduler.arms(), items, &mut journal, &mut progress)
        {
            let (new_sigs, skipped) = merged
                .fold_shard(&item.corpus_dir())
                .map_err(|e| format!("merge shard {}: {e}", item.dir.display()))?;
            let metrics = read_worker_metrics(&item.metrics_path())?;
            let pruning = metrics.as_ref().and_then(|m| m.pruning);
            let runs = metrics
                .as_ref()
                .map(|m| m.runs)
                .unwrap_or(if outcome.is_ok() { item.budget } else { 0 });
            for sig in &new_sigs {
                let name = sig.to_string();
                let first_exec = metrics
                    .as_ref()
                    .and_then(|m| {
                        m.discovery
                            .iter()
                            .find(|(s, _)| *s == name)
                            .map(|(_, e)| *e)
                    })
                    .unwrap_or(item.budget);
                journal.push(JournalEvent::Discovery {
                    exec: total_runs + first_exec,
                    app: name.split(':').next().unwrap_or(&name).to_string(),
                    site: name.clone(),
                });
                discovery.push(OrchDiscovery {
                    signature: name,
                    exec: total_runs + first_exec,
                });
            }
            total_runs += runs;
            scheduler.reward(item.arm, new_sigs.len() as u64, runs);
            if !outcome.is_ok() {
                scheduler.quarantine(item.arm, &outcome.label());
                journal.push(JournalEvent::Worker {
                    index: item.index as u64,
                    arm: scheduler.arms()[item.arm].spec.label(),
                    state: WorkerState::Quarantined,
                    reason: Some(outcome.label()),
                });
                progress(format!(
                    "  quarantined {} after {} ({} entr{} salvaged)",
                    scheduler.arms()[item.arm].spec.label(),
                    outcome.label(),
                    new_sigs.len(),
                    if new_sigs.len() == 1 { "y" } else { "ies" },
                ));
            }
            work.push(WorkRecord {
                index: item.index,
                round,
                arm: scheduler.arms()[item.arm].spec.label(),
                seed: item.seed,
                outcome: outcome.label(),
                runs,
                new_bugs: new_sigs.len() as u64,
                salvage_skipped: skipped.len() as u64,
                pruning,
            });
        }
        scheduler.end_round();
        rounds_done = round + 1;
        progress(format!(
            "round {round}: {} unique bug(s) merged, {} runs total",
            merged.unique_bugs(),
            total_runs,
        ));
        if let Some(out) = &cfg.orch_out {
            let snapshot = snapshot_report(
                cfg,
                &scheduler,
                &merged,
                &work,
                &discovery,
                total_runs,
                rounds_done,
                false,
            );
            nodefz_obs::write_atomic(out, &snapshot.to_json())
                .map_err(|e| format!("rollup {}: {e}", out.display()))?;
        }
        journal
            .write(&journal_path)
            .map_err(|e| format!("journal {}: {e}", journal_path.display()))?;
    }

    let merged_dir = cfg.merged_corpus_dir();
    merged
        .write_to(&merged_dir)
        .map_err(|e| format!("merged corpus {}: {e}", merged_dir.display()))?;
    let finished = rounds_done == cfg.rounds;
    let report = snapshot_report(
        cfg,
        &scheduler,
        &merged,
        &work,
        &discovery,
        total_runs,
        rounds_done,
        finished,
    );
    if let Some(out) = &cfg.orch_out {
        nodefz_obs::write_atomic(out, &report.to_json())
            .map_err(|e| format!("rollup {}: {e}", out.display()))?;
    }
    journal
        .write(&journal_path)
        .map_err(|e| format!("journal {}: {e}", journal_path.display()))?;
    Ok(report)
}

#[allow(clippy::too_many_arguments)]
fn snapshot_report(
    cfg: &OrchConfig,
    scheduler: &Scheduler,
    merged: &MergedCorpus,
    work: &[WorkRecord],
    discovery: &[OrchDiscovery],
    total_runs: u64,
    rounds_done: u32,
    finished: bool,
) -> OrchReport {
    OrchReport {
        scheduler: cfg.scheduler,
        shards: cfg.shards,
        rounds_done,
        rounds: cfg.rounds,
        slice_budget: cfg.slice_budget,
        total_runs,
        arms: scheduler.arms().to_vec(),
        work: work.to_vec(),
        discovery: discovery.to_vec(),
        merged_entries: merged.unique_bugs(),
        merged_dir: cfg.merged_corpus_dir(),
        finished,
    }
}

/// Runs the same orchestration under both schedulers and reports
/// execs-to-full-discovery per policy — the `BENCH_orchestrate.json`
/// comparison.
#[derive(Clone, Debug)]
pub struct OrchBenchReport {
    /// The Thompson-sampling run.
    pub thompson: OrchReport,
    /// The UCB run.
    pub ucb: OrchReport,
}

impl OrchBenchReport {
    /// Serializes the comparison as `nodefz-orchbench-v1`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "nodefz-orchbench-v1");
        w.field_u64("shards", self.thompson.shards as u64);
        w.field_u64("rounds", u64::from(self.thompson.rounds));
        w.field_u64("slice_budget", self.thompson.slice_budget);
        w.key("schedulers");
        w.begin_array();
        for report in [&self.thompson, &self.ucb] {
            w.begin_object();
            w.field_str("scheduler", report.scheduler.label());
            w.field_u64("unique_bugs", report.unique_bugs() as u64);
            w.field_u64("total_runs", report.total_runs);
            w.key("execs_to_full_discovery");
            match report.execs_to_full_discovery() {
                Some(execs) => w.u64(execs),
                None => w.null(),
            }
            w.key("discovery");
            w.begin_array();
            for d in &report.discovery {
                w.begin_object();
                w.field_str("signature", &d.signature);
                w.field_u64("exec", d.exec);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

/// Runs the Thompson-vs-UCB scheduler comparison in sibling work dirs.
///
/// # Errors
///
/// When either orchestration fails.
pub fn bench_orchestrate(
    cfg: &OrchConfig,
    mut progress: impl FnMut(String),
) -> Result<OrchBenchReport, String> {
    let mut run = |kind: SchedulerKind| -> Result<OrchReport, String> {
        let sub = OrchConfig {
            scheduler: kind,
            workdir: cfg.workdir.join(format!("bench-{}", kind.label())),
            merged_corpus: None,
            orch_out: None,
            induce_crash: None,
            ..cfg.clone()
        };
        progress(format!("bench: {} scheduler", kind.label()));
        orchestrate(&sub, &mut progress)
    };
    Ok(OrchBenchReport {
        thompson: run(SchedulerKind::Thompson)?,
        ucb: run(SchedulerKind::Ucb)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerKind;
    use nodefz_campaign::ArmMode;

    #[test]
    fn work_seeds_depend_on_arm_and_pull_only() {
        let a = work_seed(1, "KUE/standard/fuzz", 0);
        assert_eq!(a, work_seed(1, "KUE/standard/fuzz", 0));
        assert_ne!(a, work_seed(1, "KUE/standard/fuzz", 1));
        assert_ne!(a, work_seed(1, "KUE/aggressive/fuzz", 0));
        assert_ne!(a, work_seed(2, "KUE/standard/fuzz", 0));
    }

    #[test]
    fn rollup_json_parses_and_carries_the_schema() {
        let report = OrchReport {
            scheduler: SchedulerKind::Thompson,
            shards: 2,
            rounds_done: 1,
            rounds: 3,
            slice_budget: 40,
            total_runs: 80,
            arms: vec![ArmState {
                spec: ArmSpec {
                    app: "KUE".into(),
                    preset: "standard".into(),
                    mode: ArmMode::Fuzz,
                },
                successes: 1.0,
                failures: 0.0,
                pulls: 2,
                new_bugs: 1,
                runs: 80,
                quarantined: Some("crashed".into()),
            }],
            work: vec![WorkRecord {
                index: 0,
                round: 0,
                arm: "KUE/standard/fuzz".into(),
                seed: 99,
                outcome: "ok".into(),
                runs: 40,
                new_bugs: 1,
                salvage_skipped: 0,
                pruning: Some(WorkPruning {
                    runs: 40,
                    distinct: 4,
                    redundant: 36,
                    skipped: 120,
                    forked: 30,
                }),
            }],
            discovery: vec![OrchDiscovery {
                signature: "KUE:00deadbeef000000".into(),
                exec: 17,
            }],
            merged_entries: 1,
            merged_dir: PathBuf::from("/tmp/corpus"),
            finished: false,
        };
        let doc = JsonValue::parse(&report.to_json()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("nodefz-orch-v1")
        );
        assert_eq!(doc.get("unique_bugs").and_then(|v| v.as_u64()), Some(1));
        let arm = &doc.get("arms").and_then(|a| a.as_array()).unwrap()[0];
        assert_eq!(
            arm.get("quarantine_reason").and_then(|s| s.as_str()),
            Some("crashed")
        );
        assert!(
            arm.get("sa_candidates").and_then(|v| v.as_u64()).unwrap() > 0,
            "KUE's static model must yield race candidates in the rollup"
        );
        assert_eq!(report.execs_to_full_discovery(), Some(17));
        assert_eq!(report.quarantined().len(), 1);

        let totals = report.pruning_totals().unwrap();
        assert_eq!(totals.effective(), 124);
        let pruning = doc.get("pruning").unwrap();
        assert_eq!(pruning.get("skipped").and_then(|v| v.as_u64()), Some(120));
        assert_eq!(pruning.get("effective").and_then(|v| v.as_u64()), Some(124));
        assert_eq!(
            arm.get("pruning")
                .and_then(|p| p.get("distinct"))
                .and_then(|v| v.as_u64()),
            Some(4)
        );
        let work = &doc.get("work").and_then(|w| w.as_array()).unwrap()[0];
        assert_eq!(
            work.get("pruning")
                .and_then(|p| p.get("forked"))
                .and_then(|v| v.as_u64()),
            Some(30)
        );
    }

    #[test]
    fn rollup_omits_pruning_when_no_worker_pruned() {
        let report = OrchReport {
            scheduler: SchedulerKind::Thompson,
            shards: 1,
            rounds_done: 1,
            rounds: 1,
            slice_budget: 10,
            total_runs: 10,
            arms: vec![],
            work: vec![WorkRecord {
                index: 0,
                round: 0,
                arm: "KUE/standard/fuzz".into(),
                seed: 1,
                outcome: "ok".into(),
                runs: 10,
                new_bugs: 0,
                salvage_skipped: 0,
                pruning: None,
            }],
            discovery: vec![],
            merged_entries: 0,
            merged_dir: PathBuf::from("x"),
            finished: true,
        };
        assert!(report.pruning_totals().is_none());
        let doc = JsonValue::parse(&report.to_json()).unwrap();
        assert!(doc.get("pruning").is_none());
    }

    #[test]
    fn bench_json_reports_both_schedulers() {
        let base = OrchReport {
            scheduler: SchedulerKind::Thompson,
            shards: 1,
            rounds_done: 1,
            rounds: 1,
            slice_budget: 10,
            total_runs: 10,
            arms: vec![],
            work: vec![],
            discovery: vec![],
            merged_entries: 0,
            merged_dir: PathBuf::from("x"),
            finished: true,
        };
        let bench = OrchBenchReport {
            thompson: base.clone(),
            ucb: OrchReport {
                scheduler: SchedulerKind::Ucb,
                ..base
            },
        };
        let doc = JsonValue::parse(&bench.to_json()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("nodefz-orchbench-v1")
        );
        let scheds = doc.get("schedulers").and_then(|s| s.as_array()).unwrap();
        assert_eq!(scheds.len(), 2);
        assert!(scheds[0].get("execs_to_full_discovery").unwrap().is_null());
    }

    #[test]
    fn config_validation_names_the_bad_field() {
        let mut cfg = OrchConfig {
            apps: vec!["KUE".into()],
            worker_bin: PathBuf::from("/bin/true"),
            ..OrchConfig::default()
        };
        cfg.validate().unwrap();
        cfg.shards = 0;
        assert!(cfg.validate().unwrap_err().contains("shards"));
        cfg.shards = 2;
        cfg.apps.clear();
        assert!(cfg.validate().unwrap_err().contains("app"));
    }
}
