//! # nodefz-kv — simulated key-value back-end
//!
//! A Redis/Mongo-like store as seen from a Node.js process: an external,
//! single-threaded server reached over a small connection pool. Every
//! operation is asynchronous; its reply returns after a jittered round trip,
//! so the *completion order of independent operations differs from their
//! submission order* — the exact nondeterminism behind the database races in
//! the paper's study (GHO's duplicate-insert, KUE's failed/delayed state,
//! MGS's premature populate).
//!
//! Guarantees (and non-guarantees), mirroring real deployments:
//!
//! * The server applies operations atomically, one at a time, in arrival
//!   order (a single-threaded Redis).
//! * Replies on one pooled connection return in request order; replies
//!   *across* connections are unordered.
//! * Keys may carry a TTL (`setnx_ttl`), supporting Redis-style locks.
//!
//! ## Example
//!
//! ```
//! use nodefz_kv::Kv;
//! use nodefz_rt::{EventLoop, LoopConfig};
//!
//! let mut el = EventLoop::new(LoopConfig::seeded(9));
//! let kv = el.enter(|cx| Kv::connect(cx, 2).unwrap());
//! let k = kv.clone();
//! el.enter(move |cx| {
//!     let k2 = k.clone();
//!     k.set(cx, "user:1", "alice", move |cx, ()| {
//!         k2.get(cx, "user:1", |_cx, v| assert_eq!(v.as_deref(), Some("alice")));
//!     });
//! });
//! el.run();
//! assert_eq!(kv.get_sync("user:1").as_deref(), Some("alice"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lock;

pub use lock::{KvLock, LockConfig, LockResult};

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use nodefz_rt::{Ctx, Errno, Fd, FdKind, Rng, VDur, VTime};

/// Round-trip timing model for the store.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KvTiming {
    /// One-way network latency.
    pub latency: VDur,
    /// Latency jitter fraction.
    pub latency_jitter: f64,
    /// Server per-operation processing time.
    pub proc: VDur,
    /// Processing jitter fraction.
    pub proc_jitter: f64,
}

impl Default for KvTiming {
    fn default() -> KvTiming {
        KvTiming {
            latency: VDur::millis(1),
            latency_jitter: 0.8,
            proc: VDur::micros(200),
            proc_jitter: 0.8,
        }
    }
}

#[derive(Clone, Debug)]
enum Value {
    Str(String),
    List(VecDeque<String>),
}

#[derive(Clone, Debug)]
struct Entry {
    value: Value,
    expires: Option<VTime>,
}

/// A reply from the store.
#[derive(Clone, Debug, PartialEq)]
enum Reply {
    Nil,
    Str(String),
    Bool(bool),
    Int(i64),
    Rows(Vec<(String, String)>),
    Unit,
}

enum Op {
    Get(String),
    Set(String, String),
    SetNx(String, String, Option<VDur>),
    Del(String),
    Incr(String),
    LPush(String, String),
    RPop(String),
    Find(String),
}

type ReplyCb = Box<dyn FnOnce(&mut Ctx<'_>, Reply)>;

struct ConnSlot {
    fd: Fd,
    /// Replies ready for dispatch, FIFO.
    done: VecDeque<(Reply, ReplyCb)>,
    /// FIFO clamp for reply arrival times.
    last_reply: VTime,
}

struct KvState {
    data: BTreeMap<String, Entry>,
    conns: Vec<ConnSlot>,
    next_conn: usize,
    timing: KvTiming,
    rng: Option<Rng>,
    /// When the single-threaded server frees up.
    server_free_at: VTime,
    requests: u64,
}

/// Client handle to the simulated store. Cheap to clone; clones share the
/// pool and data.
#[derive(Clone)]
pub struct Kv {
    inner: Rc<RefCell<KvState>>,
}

impl Kv {
    /// Connects a pool of `pool_size` connections to a fresh store.
    ///
    /// # Errors
    ///
    /// `EMFILE` when descriptors are exhausted; `EINVAL` for an empty pool.
    pub fn connect(cx: &mut Ctx<'_>, pool_size: usize) -> Result<Kv, Errno> {
        Kv::connect_with(cx, pool_size, KvTiming::default())
    }

    /// Connects with a custom timing model.
    ///
    /// # Errors
    ///
    /// `EMFILE` when descriptors are exhausted; `EINVAL` for an empty pool.
    pub fn connect_with(cx: &mut Ctx<'_>, pool_size: usize, timing: KvTiming) -> Result<Kv, Errno> {
        if pool_size == 0 {
            return Err(Errno::Einval);
        }
        let kv = Kv {
            inner: Rc::new(RefCell::new(KvState {
                data: BTreeMap::new(),
                conns: Vec::new(),
                next_conn: 0,
                timing,
                rng: None,
                server_free_at: VTime::ZERO,
                requests: 0,
            })),
        };
        for _ in 0..pool_size {
            let fd = cx.alloc_fd(FdKind::KvConn)?;
            // Idle pooled connections do not keep the loop alive (the
            // driver would time them out); pending replies do, via the
            // environment queue.
            cx.set_fd_refd(fd, false)?;
            let kvc = kv.clone();
            cx.register_watcher(fd, move |cx, fd| kvc.dispatch(cx, fd))?;
            kv.inner.borrow_mut().conns.push(ConnSlot {
                fd,
                done: VecDeque::new(),
                last_reply: VTime::ZERO,
            });
        }
        Ok(kv)
    }

    fn dispatch(&self, cx: &mut Ctx<'_>, fd: Fd) {
        let next = {
            let mut st = self.inner.borrow_mut();
            let Some(conn) = st.conns.iter_mut().find(|c| c.fd == fd) else {
                return;
            };
            conn.done.pop_front()
        };
        if let Some((reply, cb)) = next {
            cb(cx, reply);
        }
    }

    fn submit(&self, cx: &mut Ctx<'_>, op: Op, cb: ReplyCb) {
        let (slot, arrive_at, reply_base) = {
            let mut st = self.inner.borrow_mut();
            if st.rng.is_none() {
                st.rng = Some(cx.env_rng().fork());
            }
            st.requests += 1;
            let timing = st.timing;
            let slot = st.next_conn % st.conns.len();
            st.next_conn = st.next_conn.wrapping_add(1);
            let rng = st.rng.as_mut().expect("just initialized");
            let lat_out = rng.jitter(timing.latency, timing.latency_jitter);
            let proc = rng.jitter(timing.proc, timing.proc_jitter);
            let lat_back = rng.jitter(timing.latency, timing.latency_jitter);
            // Single-threaded server: requests queue behind each other.
            let arrive = cx.now() + lat_out;
            let start = arrive.max(st.server_free_at);
            let done = start + proc;
            st.server_free_at = done;
            (slot, done, done + lat_back)
        };
        let kv = self.clone();
        // The operation applies atomically on the server at `arrive_at`.
        cx.schedule_env_at(arrive_at, move |cx| {
            let reply = kv.apply(op, cx.now());
            let (fd, reply_at) = {
                let mut st = kv.inner.borrow_mut();
                let conn = &mut st.conns[slot];
                let at = reply_base.max(conn.last_reply + VDur::nanos(1));
                conn.last_reply = at;
                conn.done.push_back((reply, cb));
                (conn.fd, at)
            };
            cx.schedule_env_at(reply_at, move |cx| {
                let _ = cx.mark_ready(fd);
            });
        });
    }

    fn apply(&self, op: Op, now: VTime) -> Reply {
        let mut st = self.inner.borrow_mut();
        // Lazy TTL expiry, as in Redis.
        let expired: Vec<String> = st
            .data
            .iter()
            .filter(|(_, e)| e.expires.is_some_and(|t| t <= now))
            .map(|(k, _)| k.clone())
            .collect();
        for k in expired {
            st.data.remove(&k);
        }
        match op {
            Op::Get(k) => match st.data.get(&k) {
                Some(Entry {
                    value: Value::Str(s),
                    ..
                }) => Reply::Str(s.clone()),
                _ => Reply::Nil,
            },
            Op::Set(k, v) => {
                st.data.insert(
                    k,
                    Entry {
                        value: Value::Str(v),
                        expires: None,
                    },
                );
                Reply::Unit
            }
            Op::SetNx(k, v, ttl) => {
                if let std::collections::btree_map::Entry::Vacant(e) = st.data.entry(k) {
                    e.insert(Entry {
                        value: Value::Str(v),
                        expires: ttl.map(|d| now + d),
                    });
                    Reply::Bool(true)
                } else {
                    Reply::Bool(false)
                }
            }
            Op::Del(k) => Reply::Bool(st.data.remove(&k).is_some()),
            Op::Incr(k) => {
                let next = match st.data.get(&k) {
                    Some(Entry {
                        value: Value::Str(s),
                        ..
                    }) => s.parse::<i64>().unwrap_or(0) + 1,
                    _ => 1,
                };
                st.data.insert(
                    k,
                    Entry {
                        value: Value::Str(next.to_string()),
                        expires: None,
                    },
                );
                Reply::Int(next)
            }
            Op::LPush(k, v) => {
                let entry = st.data.entry(k).or_insert_with(|| Entry {
                    value: Value::List(VecDeque::new()),
                    expires: None,
                });
                match &mut entry.value {
                    Value::List(list) => {
                        list.push_front(v);
                        Reply::Int(list.len() as i64)
                    }
                    Value::Str(_) => Reply::Nil,
                }
            }
            Op::RPop(k) => match st.data.get_mut(&k) {
                Some(Entry {
                    value: Value::List(list),
                    ..
                }) => list.pop_back().map_or(Reply::Nil, Reply::Str),
                _ => Reply::Nil,
            },
            Op::Find(prefix) => {
                let rows: Vec<(String, String)> = st
                    .data
                    .range(prefix.clone()..)
                    .take_while(|(k, _)| k.starts_with(&prefix))
                    .filter_map(|(k, e)| match &e.value {
                        Value::Str(s) => Some((k.clone(), s.clone())),
                        Value::List(_) => None,
                    })
                    .collect();
                Reply::Rows(rows)
            }
        }
    }

    // ---- Typed operations ----------------------------------------------------

    /// `GET key` — fetches a string value.
    pub fn get(
        &self,
        cx: &mut Ctx<'_>,
        key: &str,
        cb: impl FnOnce(&mut Ctx<'_>, Option<String>) + 'static,
    ) {
        self.submit(
            cx,
            Op::Get(key.to_string()),
            Box::new(move |cx, r| {
                cb(
                    cx,
                    match r {
                        Reply::Str(s) => Some(s),
                        _ => None,
                    },
                )
            }),
        );
    }

    /// `SET key value`.
    pub fn set(
        &self,
        cx: &mut Ctx<'_>,
        key: &str,
        value: &str,
        cb: impl FnOnce(&mut Ctx<'_>, ()) + 'static,
    ) {
        self.submit(
            cx,
            Op::Set(key.to_string(), value.to_string()),
            Box::new(move |cx, _| cb(cx, ())),
        );
    }

    /// `SETNX key value` — returns whether the key was created.
    pub fn setnx(
        &self,
        cx: &mut Ctx<'_>,
        key: &str,
        value: &str,
        cb: impl FnOnce(&mut Ctx<'_>, bool) + 'static,
    ) {
        self.submit(
            cx,
            Op::SetNx(key.to_string(), value.to_string(), None),
            Box::new(move |cx, r| cb(cx, r == Reply::Bool(true))),
        );
    }

    /// `SET key value NX PX ttl` — a Redis-style lock acquire.
    pub fn setnx_ttl(
        &self,
        cx: &mut Ctx<'_>,
        key: &str,
        value: &str,
        ttl: VDur,
        cb: impl FnOnce(&mut Ctx<'_>, bool) + 'static,
    ) {
        self.submit(
            cx,
            Op::SetNx(key.to_string(), value.to_string(), Some(ttl)),
            Box::new(move |cx, r| cb(cx, r == Reply::Bool(true))),
        );
    }

    /// `DEL key` — returns whether the key existed.
    pub fn del(&self, cx: &mut Ctx<'_>, key: &str, cb: impl FnOnce(&mut Ctx<'_>, bool) + 'static) {
        self.submit(
            cx,
            Op::Del(key.to_string()),
            Box::new(move |cx, r| cb(cx, r == Reply::Bool(true))),
        );
    }

    /// `INCR key` — returns the incremented value.
    pub fn incr(&self, cx: &mut Ctx<'_>, key: &str, cb: impl FnOnce(&mut Ctx<'_>, i64) + 'static) {
        self.submit(
            cx,
            Op::Incr(key.to_string()),
            Box::new(move |cx, r| {
                cb(
                    cx,
                    match r {
                        Reply::Int(i) => i,
                        _ => 0,
                    },
                )
            }),
        );
    }

    /// `LPUSH key value` — returns the new list length.
    pub fn lpush(
        &self,
        cx: &mut Ctx<'_>,
        key: &str,
        value: &str,
        cb: impl FnOnce(&mut Ctx<'_>, i64) + 'static,
    ) {
        self.submit(
            cx,
            Op::LPush(key.to_string(), value.to_string()),
            Box::new(move |cx, r| {
                cb(
                    cx,
                    match r {
                        Reply::Int(i) => i,
                        _ => -1,
                    },
                )
            }),
        );
    }

    /// `RPOP key` — pops the oldest list element, if any.
    pub fn rpop(
        &self,
        cx: &mut Ctx<'_>,
        key: &str,
        cb: impl FnOnce(&mut Ctx<'_>, Option<String>) + 'static,
    ) {
        self.submit(
            cx,
            Op::RPop(key.to_string()),
            Box::new(move |cx, r| {
                cb(
                    cx,
                    match r {
                        Reply::Str(s) => Some(s),
                        _ => None,
                    },
                )
            }),
        );
    }

    /// A Mongo-style `find`: every string key with the given prefix.
    pub fn find(
        &self,
        cx: &mut Ctx<'_>,
        prefix: &str,
        cb: impl FnOnce(&mut Ctx<'_>, Vec<(String, String)>) + 'static,
    ) {
        self.submit(
            cx,
            Op::Find(prefix.to_string()),
            Box::new(move |cx, r| {
                cb(
                    cx,
                    match r {
                        Reply::Rows(rows) => rows,
                        _ => Vec::new(),
                    },
                )
            }),
        );
    }

    // ---- Synchronous inspection (oracles and setup) --------------------------

    /// Reads a string value right now (oracle helper).
    pub fn get_sync(&self, key: &str) -> Option<String> {
        match self.inner.borrow().data.get(key) {
            Some(Entry {
                value: Value::Str(s),
                ..
            }) => Some(s.clone()),
            _ => None,
        }
    }

    /// Writes a string value right now (setup helper).
    pub fn set_sync(&self, key: &str, value: &str) {
        self.inner.borrow_mut().data.insert(
            key.to_string(),
            Entry {
                value: Value::Str(value.to_string()),
                expires: None,
            },
        );
    }

    /// Number of string keys with the given prefix (oracle helper).
    pub fn count_prefix_sync(&self, prefix: &str) -> usize {
        self.inner
            .borrow()
            .data
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .count()
    }

    /// Current length of a list key (oracle helper).
    pub fn list_len_sync(&self, key: &str) -> usize {
        match self.inner.borrow().data.get(key) {
            Some(Entry {
                value: Value::List(l),
                ..
            }) => l.len(),
            _ => 0,
        }
    }

    /// Total requests submitted (diagnostics).
    pub fn requests(&self) -> u64 {
        self.inner.borrow().requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::{EventLoop, LoopConfig};

    fn run_kv(seed: u64, pool: usize, setup: impl FnOnce(&mut Ctx<'_>, Kv)) -> Kv {
        let mut el = EventLoop::new(LoopConfig::seeded(seed));
        let kv = el.enter(|cx| Kv::connect(cx, pool).unwrap());
        let k = kv.clone();
        el.enter(move |cx| setup(cx, k));
        el.run();
        kv
    }

    #[test]
    fn set_get_roundtrip() {
        let kv = run_kv(1, 2, |cx, kv| {
            let kv2 = kv.clone();
            kv.set(cx, "a", "1", move |cx, ()| {
                kv2.get(cx, "a", |cx, v| {
                    assert_eq!(v.as_deref(), Some("1"));
                    cx.report_error("got", "");
                });
            });
        });
        assert_eq!(kv.get_sync("a").as_deref(), Some("1"));
    }

    #[test]
    fn get_missing_is_none() {
        run_kv(2, 1, |cx, kv| {
            kv.get(cx, "ghost", |_cx, v| assert!(v.is_none()));
        });
    }

    #[test]
    fn setnx_only_first_wins() {
        let kv = run_kv(3, 1, |cx, kv| {
            let kv2 = kv.clone();
            kv.setnx(cx, "lock", "me", move |cx, won| {
                assert!(won);
                kv2.setnx(cx, "lock", "you", |_cx, won| assert!(!won));
            });
        });
        assert_eq!(kv.get_sync("lock").as_deref(), Some("me"));
    }

    #[test]
    fn ttl_expires_keys() {
        let kv = run_kv(4, 1, |cx, kv| {
            let kv2 = kv.clone();
            kv.setnx_ttl(cx, "lock", "me", VDur::millis(10), move |cx, won| {
                assert!(won);
                let kv3 = kv2.clone();
                cx.set_timeout(VDur::millis(50), move |cx| {
                    // The TTL elapsed; a new acquire succeeds.
                    kv3.setnx(cx, "lock", "next", |_cx, won| assert!(won));
                });
            });
        });
        assert_eq!(kv.get_sync("lock").as_deref(), Some("next"));
    }

    #[test]
    fn del_and_incr() {
        run_kv(5, 2, |cx, kv| {
            let kv2 = kv.clone();
            kv.incr(cx, "n", move |cx, v| {
                assert_eq!(v, 1);
                let kv3 = kv2.clone();
                kv2.incr(cx, "n", move |cx, v| {
                    assert_eq!(v, 2);
                    let kv4 = kv3.clone();
                    kv3.del(cx, "n", move |cx, existed| {
                        assert!(existed);
                        kv4.del(cx, "n", |_cx, existed| assert!(!existed));
                    });
                });
            });
        });
    }

    #[test]
    fn list_push_pop_fifo() {
        let kv = run_kv(6, 1, |cx, kv| {
            let kv2 = kv.clone();
            kv.lpush(cx, "q", "first", move |cx, len| {
                assert_eq!(len, 1);
                let kv3 = kv2.clone();
                kv2.lpush(cx, "q", "second", move |cx, len| {
                    assert_eq!(len, 2);
                    kv3.rpop(cx, "q", |_cx, v| {
                        assert_eq!(v.as_deref(), Some("first"));
                    });
                });
            });
        });
        assert_eq!(kv.list_len_sync("q"), 1);
    }

    #[test]
    fn find_returns_prefix_rows() {
        run_kv(7, 1, |cx, kv| {
            kv.set_sync("user:1", "a");
            kv.set_sync("user:2", "b");
            kv.set_sync("zzz", "c");
            kv.find(cx, "user:", |_cx, rows| {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].0, "user:1");
                assert_eq!(rows[1].0, "user:2");
            });
        });
    }

    #[test]
    fn replies_on_one_conn_are_fifo() {
        // Pool of 1: completion order must equal submission order.
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = order.clone();
        run_kv(8, 1, move |cx, kv| {
            for i in 0..10 {
                let o = o.clone();
                kv.set(cx, &format!("k{i}"), "v", move |_cx, ()| {
                    o.borrow_mut().push(i);
                });
            }
        });
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_replies_can_reorder() {
        // Pool of 4: across seeds, completion order differs from
        // submission order at least once.
        let mut reordered = false;
        for seed in 0..20 {
            let order = Rc::new(RefCell::new(Vec::new()));
            let o = order.clone();
            run_kv(100 + seed, 4, move |cx, kv| {
                for i in 0..8 {
                    let o = o.clone();
                    kv.set(cx, &format!("k{i}"), "v", move |_cx, ()| {
                        o.borrow_mut().push(i);
                    });
                }
            });
            if *order.borrow() != (0..8).collect::<Vec<_>>() {
                reordered = true;
                break;
            }
        }
        assert!(reordered, "pool should reorder completions across seeds");
    }

    #[test]
    fn empty_pool_rejected() {
        let mut el = EventLoop::new(LoopConfig::seeded(9));
        el.enter(|cx| {
            assert_eq!(Kv::connect(cx, 0).err(), Some(Errno::Einval));
        });
    }

    #[test]
    fn counters_track_requests() {
        let kv = run_kv(10, 2, |cx, kv| {
            kv.set(cx, "a", "1", |_cx, ()| {});
            kv.get(cx, "a", |_cx, _| {});
        });
        assert_eq!(kv.requests(), 2);
        assert_eq!(kv.count_prefix_sync("a"), 1);
        assert_eq!(kv.count_prefix_sync("nope"), 0);
    }
}
