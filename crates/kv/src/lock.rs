//! A Redis-style distributed lock over the key-value store.
//!
//! The kue study bugs (KUE #483, the novel #967 deadlock) revolve around
//! exactly this pattern: `SET key owner NX PX ttl` to acquire, polling with
//! a deadline, `DEL` (owner-checked) to release. This helper packages the
//! pattern so applications do not re-implement the racy parts.

use nodefz_rt::{Ctx, VDur};

use crate::Kv;

type LockCb = Box<dyn FnOnce(&mut Ctx<'_>, LockResult)>;

/// Outcome of a lock acquisition attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockResult {
    /// The lock was acquired.
    Acquired,
    /// The deadline elapsed with the lock still held by someone else.
    TimedOut {
        /// How many acquisition attempts were made.
        attempts: u32,
    },
}

/// Configuration for [`KvLock`].
#[derive(Clone, Copy, Debug)]
pub struct LockConfig {
    /// TTL stamped on the lock key (crash safety).
    pub ttl: VDur,
    /// Delay between acquisition attempts.
    pub retry_every: VDur,
    /// Maximum number of attempts before giving up.
    pub max_attempts: u32,
}

impl Default for LockConfig {
    fn default() -> LockConfig {
        LockConfig {
            ttl: VDur::secs(30),
            retry_every: VDur::millis(2),
            max_attempts: 5,
        }
    }
}

/// A named lock bound to a store and an owner identity.
#[derive(Clone)]
pub struct KvLock {
    kv: Kv,
    key: String,
    owner: String,
    config: LockConfig,
}

impl KvLock {
    /// Creates a lock handle (acquires nothing yet).
    pub fn new(kv: &Kv, key: &str, owner: &str, config: LockConfig) -> KvLock {
        KvLock {
            kv: kv.clone(),
            key: key.to_string(),
            owner: owner.to_string(),
            config,
        }
    }

    /// Attempts to acquire the lock, retrying until the attempt budget is
    /// exhausted; `cb` receives the outcome.
    pub fn acquire(&self, cx: &mut Ctx<'_>, cb: impl FnOnce(&mut Ctx<'_>, LockResult) + 'static) {
        self.try_once(cx, 1, Box::new(cb));
    }

    fn try_once(&self, cx: &mut Ctx<'_>, attempt: u32, cb: LockCb) {
        let this = self.clone();
        self.kv.setnx_ttl(
            cx,
            &self.key,
            &self.owner,
            self.config.ttl,
            move |cx, won| {
                if won {
                    cb(cx, LockResult::Acquired);
                } else if attempt >= this.config.max_attempts {
                    cb(cx, LockResult::TimedOut { attempts: attempt });
                } else {
                    let this2 = this.clone();
                    cx.set_timeout(this.config.retry_every, move |cx| {
                        this2.try_once(cx, attempt + 1, cb);
                    });
                }
            },
        );
    }

    /// Releases the lock if this owner still holds it; `cb` receives
    /// whether a release actually happened.
    ///
    /// The owner check makes release safe after a TTL expiry handed the
    /// lock to someone else — deleting blindly would break their critical
    /// section.
    pub fn release(&self, cx: &mut Ctx<'_>, cb: impl FnOnce(&mut Ctx<'_>, bool) + 'static) {
        let kv = self.kv.clone();
        let key = self.key.clone();
        let owner = self.owner.clone();
        self.kv.get(cx, &self.key, move |cx, holder| {
            if holder.as_deref() == Some(owner.as_str()) {
                kv.del(cx, &key, move |cx, existed| cb(cx, existed));
            } else {
                cb(cx, false);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    use nodefz_rt::{EventLoop, LoopConfig};

    fn harness(seed: u64) -> (EventLoop, Kv) {
        let mut el = EventLoop::new(LoopConfig::seeded(seed));
        let kv = el.enter(|cx| Kv::connect(cx, 2).expect("pool"));
        (el, kv)
    }

    #[test]
    fn acquire_free_lock_first_try() {
        let (mut el, kv) = harness(1);
        let outcome = Rc::new(RefCell::new(None));
        let o = outcome.clone();
        let lock = KvLock::new(&kv, "lock:q", "w1", LockConfig::default());
        el.enter(move |cx| {
            lock.acquire(cx, move |_cx, r| *o.borrow_mut() = Some(r));
        });
        el.run();
        assert_eq!(*outcome.borrow(), Some(LockResult::Acquired));
        assert_eq!(kv.get_sync("lock:q").as_deref(), Some("w1"));
    }

    #[test]
    fn contended_lock_times_out_with_attempt_count() {
        let (mut el, kv) = harness(2);
        kv.set_sync("lock:q", "someone-else");
        let outcome = Rc::new(RefCell::new(None));
        let o = outcome.clone();
        let lock = KvLock::new(
            &kv,
            "lock:q",
            "w2",
            LockConfig {
                max_attempts: 3,
                ..LockConfig::default()
            },
        );
        el.enter(move |cx| {
            lock.acquire(cx, move |_cx, r| *o.borrow_mut() = Some(r));
        });
        el.run();
        assert_eq!(
            *outcome.borrow(),
            Some(LockResult::TimedOut { attempts: 3 })
        );
    }

    #[test]
    fn retry_succeeds_once_the_holder_releases() {
        let (mut el, kv) = harness(3);
        let outcome = Rc::new(RefCell::new(None));
        let o = outcome.clone();
        let holder = KvLock::new(&kv, "lock:q", "w1", LockConfig::default());
        let waiter = KvLock::new(
            &kv,
            "lock:q",
            "w2",
            LockConfig {
                retry_every: VDur::millis(2),
                max_attempts: 10,
                ..LockConfig::default()
            },
        );
        el.enter(move |cx| {
            let holder2 = holder.clone();
            holder.acquire(cx, move |cx, r| {
                assert_eq!(r, LockResult::Acquired);
                // Release after a while.
                cx.set_timeout(VDur::millis(6), move |cx| {
                    holder2.release(cx, |_cx, released| assert!(released));
                });
            });
            waiter.acquire(cx, move |_cx, r| *o.borrow_mut() = Some(r));
        });
        el.run();
        assert_eq!(*outcome.borrow(), Some(LockResult::Acquired));
        assert_eq!(kv.get_sync("lock:q").as_deref(), Some("w2"));
    }

    #[test]
    fn release_is_owner_checked() {
        let (mut el, kv) = harness(4);
        kv.set_sync("lock:q", "rightful-owner");
        let lock = KvLock::new(&kv, "lock:q", "impostor", LockConfig::default());
        el.enter(move |cx| {
            lock.release(cx, |_cx, released| assert!(!released));
        });
        el.run();
        assert_eq!(kv.get_sync("lock:q").as_deref(), Some("rightful-owner"));
    }

    #[test]
    fn ttl_expiry_frees_a_leaked_lock() {
        let (mut el, kv) = harness(5);
        let outcome = Rc::new(RefCell::new(None));
        let o = outcome.clone();
        let leaker = KvLock::new(
            &kv,
            "lock:q",
            "leaker",
            LockConfig {
                ttl: VDur::millis(5),
                ..LockConfig::default()
            },
        );
        let waiter = KvLock::new(
            &kv,
            "lock:q",
            "waiter",
            LockConfig {
                retry_every: VDur::millis(3),
                max_attempts: 10,
                ..LockConfig::default()
            },
        );
        el.enter(move |cx| {
            leaker.acquire(cx, |_cx, r| assert_eq!(r, LockResult::Acquired));
            // The leaker never releases; the waiter wins via TTL expiry.
            waiter.acquire(cx, move |_cx, r| *o.borrow_mut() = Some(r));
        });
        el.run();
        assert_eq!(*outcome.borrow(), Some(LockResult::Acquired));
    }
}
