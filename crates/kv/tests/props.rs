//! Model-based property tests: sequential operation chains on a
//! single-connection pool must agree with a trivially-correct map model
//! (single-connection replies are FIFO, so the application order is the
//! submission order).

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_check::{forall, Gen};

use nodefz_kv::Kv;
use nodefz_rt::{Ctx, EventLoop, LoopConfig};

#[derive(Clone, Debug)]
enum Op {
    Get(String),
    Set(String, String),
    SetNx(String, String),
    Del(String),
    Incr(String),
    LPush(String, String),
    RPop(String),
}

fn gen_key(g: &mut Gen) -> String {
    g.pick(&["a", "b", "c", "list"]).to_string()
}

fn gen_op(g: &mut Gen) -> Op {
    match g.below(7) {
        0 => Op::Get(gen_key(g)),
        1 => Op::Set(gen_key(g), g.lowercase(1, 5)),
        2 => Op::SetNx(gen_key(g), g.lowercase(1, 5)),
        3 => Op::Del(gen_key(g)),
        4 => Op::Incr(gen_key(g)),
        5 => Op::LPush(gen_key(g), g.lowercase(1, 5)),
        _ => Op::RPop(gen_key(g)),
    }
}

#[derive(Default)]
struct Model {
    strings: std::collections::BTreeMap<String, String>,
    lists: std::collections::BTreeMap<String, std::collections::VecDeque<String>>,
}

impl Model {
    fn apply(&mut self, op: &Op) -> String {
        match op {
            Op::Get(k) => format!("{:?}", self.strings.get(k)),
            Op::Set(k, v) => {
                self.lists.remove(k);
                self.strings.insert(k.clone(), v.clone());
                "()".into()
            }
            Op::SetNx(k, v) => {
                let taken = self.strings.contains_key(k) || self.lists.contains_key(k);
                if !taken {
                    self.strings.insert(k.clone(), v.clone());
                }
                format!("{}", !taken)
            }
            Op::Del(k) => {
                let existed = self.strings.remove(k).is_some() | self.lists.remove(k).is_some();
                format!("{existed}")
            }
            Op::Incr(k) => {
                let next = self
                    .strings
                    .get(k)
                    .and_then(|s| s.parse::<i64>().ok())
                    .unwrap_or(0)
                    + 1;
                self.lists.remove(k);
                self.strings.insert(k.clone(), next.to_string());
                format!("{next}")
            }
            Op::LPush(k, v) => {
                if self.strings.contains_key(k) {
                    // Type clash mirrors the sim's Nil reply.
                    return "-1".into();
                }
                let list = self.lists.entry(k.clone()).or_default();
                list.push_front(v.clone());
                format!("{}", list.len())
            }
            Op::RPop(k) => match self.lists.get_mut(k) {
                Some(list) => format!("{:?}", list.pop_back()),
                None => "None".into(),
            },
        }
    }
}

fn run_sim(ops: Vec<Op>, seed: u64) -> Vec<String> {
    let mut el = EventLoop::new(LoopConfig::seeded(seed));
    let kv = el.enter(|cx| Kv::connect(cx, 1).expect("pool"));
    let results: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));

    fn step(cx: &mut Ctx<'_>, kv: Kv, mut ops: Vec<Op>, out: Rc<RefCell<Vec<String>>>) {
        if ops.is_empty() {
            return;
        }
        let op = ops.remove(0);
        macro_rules! cont {
            ($fmt:expr) => {{
                let kv2 = kv.clone();
                let out2 = out.clone();
                move |cx: &mut Ctx<'_>, value| {
                    out2.borrow_mut().push($fmt(value));
                    step(cx, kv2, ops, out2.clone());
                }
            }};
        }
        match op {
            Op::Get(k) => kv.get(cx, &k, cont!(|v: Option<String>| format!("{v:?}"))),
            Op::Set(k, v) => kv.set(cx, &k, &v, cont!(|_: ()| "()".to_string())),
            Op::SetNx(k, v) => kv.setnx(cx, &k, &v, cont!(|b: bool| format!("{b}"))),
            Op::Del(k) => kv.del(cx, &k, cont!(|b: bool| format!("{b}"))),
            Op::Incr(k) => kv.incr(cx, &k, cont!(|n: i64| format!("{n}"))),
            Op::LPush(k, v) => kv.lpush(cx, &k, &v, cont!(|n: i64| format!("{n}"))),
            Op::RPop(k) => kv.rpop(cx, &k, cont!(|v: Option<String>| format!("{v:?}"))),
        }
    }

    let k = kv.clone();
    let out = results.clone();
    el.enter(move |cx| step(cx, k, ops, out));
    el.run();
    Rc::try_unwrap(results).expect("loop done").into_inner()
}

#[test]
fn kv_agrees_with_the_model() {
    forall("kv_agrees_with_the_model", 48, |g| {
        let ops = g.vec_with(1, 20, gen_op);
        let seed = g.u64();
        let sim = run_sim(ops.clone(), seed);
        let mut model = Model::default();
        let expected: Vec<String> = ops.iter().map(|op| model.apply(op)).collect();
        assert_eq!(sim, expected, "ops: {ops:?}");
    });
}
