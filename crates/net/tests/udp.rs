//! Tests for datagram (UDP-style) sockets: unordered, lossy, fuzzable.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_net::{SimNet, UdpSender};
use nodefz_rt::{Errno, EventLoop, LoopConfig, Termination, VDur};

#[test]
fn datagrams_are_delivered() {
    let mut el = EventLoop::new(LoopConfig::seeded(1));
    let net = SimNet::new();
    let got = Rc::new(RefCell::new(Vec::new()));
    let n = net.clone();
    let g = got.clone();
    el.enter(move |cx| {
        let socket = n
            .bind_udp(cx, 5000, move |_cx, from, msg| {
                g.borrow_mut().push((from, msg.clone()));
            })
            .unwrap();
        let sender = UdpSender::new(&n, 9001);
        sender.send_after(cx, VDur::millis(1), 5000, b"ping".to_vec());
        let n2 = n.clone();
        cx.set_timeout(VDur::millis(20), move |cx| {
            socket.close(cx);
            let _ = n2;
        });
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
    assert_eq!(*got.borrow(), vec![(9001u16, b"ping".to_vec())]);
}

#[test]
fn double_bind_is_eaddrinuse() {
    let mut el = EventLoop::new(LoopConfig::seeded(2));
    let net = SimNet::new();
    el.enter(|cx| {
        let s = net.bind_udp(cx, 5000, |_, _, _| {}).unwrap();
        assert!(matches!(
            net.bind_udp(cx, 5000, |_, _, _| {}).err(),
            Some(Errno::Eaddrinuse)
        ));
        s.close(cx);
        // Rebinding after close works.
        let s2 = net.bind_udp(cx, 5000, |_, _, _| {}).unwrap();
        s2.close(cx);
    });
}

#[test]
fn replies_reach_the_sender_mailbox() {
    let mut el = EventLoop::new(LoopConfig::seeded(3));
    let net = SimNet::new();
    let n = net.clone();
    let sender_out = el.enter(move |cx| {
        let reply_net = n.clone();
        let socket = n
            .bind_udp(cx, 53, move |cx, from, msg| {
                // Echo service.
                let mut reply = b"re:".to_vec();
                reply.extend_from_slice(msg);
                reply_net.send_udp(cx, 53, from, reply);
            })
            .unwrap();
        let sender = UdpSender::new(&n, 7777);
        sender.send_after(cx, VDur::millis(1), 53, b"query".to_vec());
        cx.set_timeout(VDur::millis(25), move |cx| socket.close(cx));
        sender
    });
    el.run();
    assert_eq!(sender_out.received(), vec![b"re:query".to_vec()]);
}

#[test]
fn datagrams_reorder_even_under_vanilla() {
    // Two datagrams sent 50us apart: across env seeds, arrival order flips
    // — the §4.2.1 UDP nondeterminism, present even without the fuzzer.
    let mut orders = std::collections::HashSet::new();
    for seed in 0..30 {
        let mut el = EventLoop::new(LoopConfig::seeded(seed));
        let net = SimNet::new();
        let got = Rc::new(RefCell::new(Vec::new()));
        let n = net.clone();
        let g = got.clone();
        el.enter(move |cx| {
            let socket = n
                .bind_udp(cx, 5000, move |_cx, _from, msg| {
                    g.borrow_mut().push(msg[0]);
                })
                .unwrap();
            let sender = UdpSender::new(&n, 9001);
            sender.send_after(cx, VDur::micros(1_000), 5000, vec![b'A']);
            sender.send_after(cx, VDur::micros(1_050), 5000, vec![b'B']);
            cx.set_timeout(VDur::millis(20), move |cx| socket.close(cx));
        });
        el.run();
        orders.insert(got.borrow().clone());
    }
    assert!(
        orders.contains(&vec![b'A', b'B']) && orders.contains(&vec![b'B', b'A']),
        "both datagram orders should appear across seeds: {orders:?}"
    );
}

#[test]
fn loss_probability_drops_datagrams() {
    let mut el = EventLoop::new(LoopConfig::seeded(5));
    let net = SimNet::new();
    net.set_udp_loss(0.5);
    let got = Rc::new(RefCell::new(0u32));
    let n = net.clone();
    let g = got.clone();
    el.enter(move |cx| {
        let socket = n
            .bind_udp(cx, 5000, move |_cx, _from, _msg| *g.borrow_mut() += 1)
            .unwrap();
        let sender = UdpSender::new(&n, 9001);
        for i in 0..100u64 {
            sender.send_after(cx, VDur::micros(i * 120), 5000, b"x".to_vec());
        }
        cx.set_timeout(VDur::millis(40), move |cx| socket.close(cx));
    });
    el.run();
    let delivered = *got.borrow();
    assert!(
        (20..=80).contains(&delivered),
        "with 50% loss, ~half of 100 datagrams arrive; got {delivered}"
    );
}

#[test]
fn datagram_to_unbound_port_goes_to_peer_mailbox_not_error() {
    let mut el = EventLoop::new(LoopConfig::seeded(6));
    let net = SimNet::new();
    let n = net.clone();
    el.enter(move |cx| {
        let sender = UdpSender::new(&n, 9001);
        sender.send_after(cx, VDur::millis(1), 6000, b"void".to_vec());
        cx.set_timeout(VDur::millis(10), |_| {});
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
    assert_eq!(net.udp_peer_received(6000), vec![b"void".to_vec()]);
}

#[test]
fn udp_events_are_fuzzable() {
    // Under the fuzzer, all non-lost datagrams still arrive exactly once.
    use nodefz::Mode;
    for seed in 0..10 {
        let mut el = Mode::Fuzz.build_loop(LoopConfig::seeded(seed), seed);
        let net = SimNet::new();
        let got = Rc::new(RefCell::new(0u32));
        let n = net.clone();
        let g = got.clone();
        el.enter(move |cx| {
            let socket = n
                .bind_udp(cx, 5000, move |_cx, _from, _msg| *g.borrow_mut() += 1)
                .unwrap();
            let sender = UdpSender::new(&n, 9001);
            for i in 0..10u64 {
                sender.send_after(cx, VDur::micros(i * 400), 5000, vec![i as u8]);
            }
            cx.set_timeout(VDur::millis(20), move |cx| socket.close(cx));
        });
        el.run();
        assert_eq!(*got.borrow(), 10, "seed {seed}");
    }
}
