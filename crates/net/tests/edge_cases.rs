//! Edge-case tests for the network substrate: DNS, teardown corners,
//! descriptor exhaustion, and heavy concurrency.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_net::{Client, SimNet};
use nodefz_rt::{Errno, EventLoop, LoopConfig, Termination, VDur};

#[test]
fn dns_lookup_resolves_known_hosts() {
    let mut el = EventLoop::new(LoopConfig::seeded(1));
    let net = SimNet::new();
    net.add_host("db.internal", "10.0.0.7");
    let got = Rc::new(RefCell::new(None));
    let n = net.clone();
    let g = got.clone();
    el.enter(move |cx| {
        n.lookup(cx, "db.internal", move |_cx, r| {
            *g.borrow_mut() = Some(r);
        });
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
    assert_eq!(got.borrow().clone().unwrap(), Ok("10.0.0.7".to_string()));
    // The lookup ran on the worker pool, as in Node.js.
    assert_eq!(report.pool.completed, 1);
}

#[test]
fn dns_lookup_unknown_is_nxdomain() {
    let mut el = EventLoop::new(LoopConfig::seeded(2));
    let net = SimNet::new();
    let n = net.clone();
    el.enter(move |cx| {
        n.lookup(cx, "nope.invalid", |cx, r| {
            assert_eq!(r, Err(Errno::Enoent));
            cx.report_error("nxdomain", "");
        });
    });
    assert!(el.run().has_error("nxdomain"));
}

#[test]
fn concurrent_lookups_all_complete() {
    let mut el = EventLoop::new(LoopConfig::seeded(3));
    let net = SimNet::new();
    for i in 0..8 {
        net.add_host(&format!("host{i}"), &format!("10.0.0.{i}"));
    }
    let hits = Rc::new(RefCell::new(0u32));
    let n = net.clone();
    let h = hits.clone();
    el.enter(move |cx| {
        for i in 0..8 {
            let h = h.clone();
            n.lookup(cx, &format!("host{i}"), move |_cx, r| {
                r.unwrap();
                *h.borrow_mut() += 1;
            });
        }
    });
    el.run();
    assert_eq!(*hits.borrow(), 8);
}

#[test]
fn close_before_connect_completes() {
    // A client that closes immediately after connecting: the server sees
    // accept then EOF; nothing crashes; everything quiesces.
    let mut el = EventLoop::new(LoopConfig::seeded(4));
    let net = SimNet::new();
    let accepts = Rc::new(RefCell::new(0u32));
    let closes = Rc::new(RefCell::new(0u32));
    let n = net.clone();
    let a = accepts.clone();
    let c = closes.clone();
    el.enter(move |cx| {
        n.listen(cx, 80, move |_cx, conn| {
            *a.borrow_mut() += 1;
            let c = c.clone();
            conn.on_close(move |_cx, _conn| *c.borrow_mut() += 1);
        })
        .unwrap();
    });
    el.enter(|cx| {
        let client = Client::connect(cx, &net, 80);
        client.close_after(cx, VDur::ZERO);
        net.close_all_listeners_after(cx, VDur::millis(30));
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
    assert_eq!(*accepts.borrow(), 1);
    assert_eq!(*closes.borrow(), 1);
}

#[test]
fn double_close_from_client_is_harmless() {
    let mut el = EventLoop::new(LoopConfig::seeded(5));
    let net = SimNet::new();
    let n = net.clone();
    el.enter(move |cx| {
        n.listen(cx, 80, |_cx, _conn| {}).unwrap();
    });
    el.enter(|cx| {
        let client = Client::connect(cx, &net, 80);
        client.close_after(cx, VDur::millis(2));
        client.close_after(cx, VDur::millis(3));
        net.close_all_listeners_after(cx, VDur::millis(20));
    });
    assert_eq!(el.run().termination, Termination::Quiescent);
}

#[test]
fn send_after_close_is_dropped() {
    let mut el = EventLoop::new(LoopConfig::seeded(6));
    let net = SimNet::new();
    let data = Rc::new(RefCell::new(0u32));
    let n = net.clone();
    let d = data.clone();
    el.enter(move |cx| {
        n.listen(cx, 80, move |_cx, conn| {
            let d = d.clone();
            conn.on_data(move |_cx, _conn, _msg| *d.borrow_mut() += 1);
        })
        .unwrap();
    });
    el.enter(|cx| {
        let client = Client::connect(cx, &net, 80);
        client.send(cx, b"before".to_vec());
        client.close_after(cx, VDur::millis(2));
        // Sent after the EOF: the server connection is torn down by then.
        client.send_after(cx, VDur::millis(20), b"after".to_vec());
        net.close_all_listeners_after(cx, VDur::millis(40));
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
    assert_eq!(*data.borrow(), 1, "only the pre-close message is delivered");
}

#[test]
fn accept_fails_gracefully_at_the_fd_limit() {
    // Listener takes one fd; each accepted connection needs another. With
    // a limit of 1 beyond the listener, only one connection survives.
    let mut el = EventLoop::new(LoopConfig {
        fd_limit: 2,
        ..LoopConfig::seeded(7)
    });
    let net = SimNet::new();
    let accepts = Rc::new(RefCell::new(0u32));
    let n = net.clone();
    let a = accepts.clone();
    el.enter(move |cx| {
        n.listen(cx, 80, move |_cx, _conn| {
            *a.borrow_mut() += 1;
        })
        .unwrap();
    });
    el.enter(|cx| {
        for _ in 0..3 {
            let c = Client::connect(cx, &net, 80);
            c.close_after(cx, VDur::millis(25));
        }
        net.close_all_listeners_after(cx, VDur::millis(30));
    });
    let report = el.run();
    assert_eq!(
        *accepts.borrow(),
        1,
        "descriptor-starved accepts are dropped"
    );
    // The loop still terminates cleanly.
    assert!(matches!(
        report.termination,
        Termination::Quiescent | Termination::Hung
    ));
}

#[test]
fn many_clients_many_messages() {
    let mut el = EventLoop::new(LoopConfig::seeded(8));
    let net = SimNet::new();
    let n = net.clone();
    el.enter(move |cx| {
        n.listen(cx, 80, |_cx, conn| {
            conn.on_data(|cx, conn, msg| {
                let _ = conn.write(cx, msg.clone());
            });
        })
        .unwrap();
    });
    let clients = el.enter(|cx| {
        let mut clients = Vec::new();
        for c in 0..12u64 {
            let client = Client::connect_after(cx, &net, 80, VDur::micros(c * 73));
            for m in 0..10u8 {
                client.send_after(cx, VDur::micros(m as u64 * 310), vec![m]);
            }
            client.close_after(cx, VDur::millis(60));
            clients.push(client);
        }
        net.close_all_listeners_after(cx, VDur::millis(80));
        clients
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
    for (i, client) in clients.iter().enumerate() {
        assert_eq!(client.received().len(), 10, "client {i} lost replies");
    }
    assert_eq!(net.accepted(), 12);
}
