//! # nodefz-net — simulated network substrate
//!
//! A deterministic stand-in for the TCP stack a Node.js server sees:
//! listeners, accepted connections, and scripted clients whose traffic
//! arrives with jittered latency drawn from the environment RNG.
//!
//! The model preserves exactly the ordering guarantees the paper relies on
//! (§4.2.1): traffic on one connection is FIFO in each direction, while the
//! relative order of traffic across connections — and of connects,
//! disconnects and data against every other event — is nondeterministic and
//! therefore fuzzable.
//!
//! Client-side teardown flows through the event loop's *close phase* (the
//! "closing" stage the paper identifies as racy), so the fuzzer's close
//! deferral applies to socket disconnects just as in Node.fz.
//!
//! ## Example
//!
//! ```
//! use nodefz_net::{Client, SimNet};
//! use nodefz_rt::{EventLoop, LoopConfig, VDur};
//!
//! let mut el = EventLoop::new(LoopConfig::seeded(7));
//! let net = SimNet::new();
//! let n = net.clone();
//! el.enter(move |cx| {
//!     n.listen(cx, 80, |_cx, conn| {
//!         conn.on_data(|cx, conn, data| {
//!             let mut reply = b"echo:".to_vec();
//!             reply.extend_from_slice(data);
//!             conn.write(cx, reply).unwrap();
//!         });
//!     })
//!     .unwrap();
//! });
//! let client = el.enter(|cx| {
//!     let c = Client::connect(cx, &net, 80);
//!     c.send(cx, b"hi".to_vec());
//!     c.close_after(cx, VDur::millis(50));
//!     c
//! });
//! el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(60)));
//! el.run();
//! assert_eq!(client.received(), vec![b"echo:hi".to_vec()]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use nodefz_rt::{Ctx, Errno, Fd, FdKind, Rng, VDur, VTime};

/// A network message (opaque bytes).
pub type Msg = Vec<u8>;

/// Latency distribution for message delivery.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Nominal one-way latency.
    pub base: VDur,
    /// Jitter fraction (0.5 = ±50%).
    pub jitter: f64,
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel {
            base: VDur::millis(2),
            jitter: 0.75,
        }
    }
}

impl LatencyModel {
    /// Samples one delivery latency.
    fn sample(&self, rng: &mut Rng) -> VDur {
        rng.jitter(self.base, self.jitter)
    }
}

/// Identifier of a simulated connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(u64);

enum Delivery {
    Data(Msg),
    Eof,
}

type OnConn = Rc<RefCell<dyn FnMut(&mut Ctx<'_>, Connection)>>;
type OnData = Rc<RefCell<dyn FnMut(&mut Ctx<'_>, Connection, &Msg)>>;
type OnClose = Rc<RefCell<dyn FnMut(&mut Ctx<'_>, Connection)>>;
type OnReply = Rc<RefCell<dyn FnMut(&mut Ctx<'_>, &Msg)>>;

struct Listener {
    fd: Fd,
    on_conn: OnConn,
    pending: VecDeque<ConnId>,
}

#[derive(Default)]
struct ClientSide {
    received: Vec<(VTime, Msg)>,
    closed_at: Option<VTime>,
    refused: bool,
    on_reply: Option<OnReply>,
}

struct ConnState {
    port: u16,
    fd: Option<Fd>,
    inbox: VecDeque<Delivery>,
    on_data: Option<OnData>,
    on_close: Option<OnClose>,
    server_open: bool,
    close_queued: bool,
    /// FIFO clamps per direction.
    last_c2s: VTime,
    last_s2c: VTime,
    client: ClientSide,
}

type OnDatagram = Rc<RefCell<dyn FnMut(&mut Ctx<'_>, u16, &Msg)>>;

struct UdpBinding {
    fd: Fd,
    inbox: VecDeque<(u16, Msg)>,
    on_datagram: OnDatagram,
}

#[derive(Default)]
struct UdpPeer {
    received: Vec<(VTime, Msg)>,
}

struct NetState {
    listeners: HashMap<u16, Listener>,
    udp: HashMap<u16, UdpBinding>,
    udp_peers: HashMap<u16, UdpPeer>,
    /// Probability (0..1) that a datagram is dropped in flight.
    udp_loss: f64,
    conns: HashMap<ConnId, ConnState>,
    next_conn: u64,
    latency: LatencyModel,
    rng: Option<Rng>,
    accepted: u64,
    hosts: HashMap<String, String>,
}

/// The simulated network fabric. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct SimNet {
    inner: Rc<RefCell<NetState>>,
}

impl Default for SimNet {
    fn default() -> SimNet {
        SimNet::new()
    }
}

impl SimNet {
    /// Creates a network with the default latency model.
    pub fn new() -> SimNet {
        SimNet::with_latency(LatencyModel::default())
    }

    /// Creates a network with a custom latency model.
    pub fn with_latency(latency: LatencyModel) -> SimNet {
        SimNet {
            inner: Rc::new(RefCell::new(NetState {
                listeners: HashMap::new(),
                udp: HashMap::new(),
                udp_peers: HashMap::new(),
                udp_loss: 0.0,
                conns: HashMap::new(),
                next_conn: 0,
                latency,
                rng: None,
                accepted: 0,
                hosts: HashMap::new(),
            })),
        }
    }

    fn rng_sample(&self, cx: &mut Ctx<'_>) -> VDur {
        let mut st = self.inner.borrow_mut();
        if st.rng.is_none() {
            st.rng = Some(cx.env_rng().fork());
        }
        let latency = st.latency;
        latency.sample(st.rng.as_mut().expect("just initialized"))
    }

    /// Starts a server on `port`; `on_conn` runs for every accepted
    /// connection.
    ///
    /// # Errors
    ///
    /// `EADDRINUSE` if the port already has a listener; `EMFILE` at the
    /// descriptor limit.
    pub fn listen(
        &self,
        cx: &mut Ctx<'_>,
        port: u16,
        on_conn: impl FnMut(&mut Ctx<'_>, Connection) + 'static,
    ) -> Result<Server, Errno> {
        if self.inner.borrow().listeners.contains_key(&port) {
            return Err(Errno::Eaddrinuse);
        }
        let fd = cx.alloc_fd(FdKind::NetListener)?;
        let net = self.clone();
        cx.register_watcher(fd, move |cx, _fd| net.dispatch_accept(cx, port))?;
        self.inner.borrow_mut().listeners.insert(
            port,
            Listener {
                fd,
                on_conn: Rc::new(RefCell::new(on_conn)),
                pending: VecDeque::new(),
            },
        );
        Ok(Server {
            net: self.clone(),
            port,
        })
    }

    /// Total connections accepted so far (diagnostics).
    pub fn accepted(&self) -> u64 {
        self.inner.borrow().accepted
    }

    /// Sets the datagram loss probability (0.0–1.0).
    pub fn set_udp_loss(&self, loss: f64) {
        self.inner.borrow_mut().udp_loss = loss.clamp(0.0, 1.0);
    }

    /// Binds a UDP-style datagram socket on `port`.
    ///
    /// Unlike connections, datagrams have **no ordering guarantee at all**
    /// (§4.2.1 of the paper: "the traffic on UDP sockets … is not
    /// [well-ordered]") and may be silently lost.
    ///
    /// # Errors
    ///
    /// `EADDRINUSE` if the port already has a binding; `EMFILE` at the
    /// descriptor limit.
    pub fn bind_udp(
        &self,
        cx: &mut Ctx<'_>,
        port: u16,
        on_datagram: impl FnMut(&mut Ctx<'_>, u16, &Msg) + 'static,
    ) -> Result<UdpSocket, Errno> {
        if self.inner.borrow().udp.contains_key(&port) {
            return Err(Errno::Eaddrinuse);
        }
        let fd = cx.alloc_fd(FdKind::NetConn)?;
        let net = self.clone();
        cx.register_watcher(fd, move |cx, _fd| {
            let next = {
                let mut st = net.inner.borrow_mut();
                st.udp
                    .get_mut(&port)
                    .and_then(|b| b.inbox.pop_front().map(|d| (d, b.on_datagram.clone())))
            };
            if let Some(((from, msg), cb)) = next {
                (cb.borrow_mut())(cx, from, &msg);
            }
        })?;
        self.inner.borrow_mut().udp.insert(
            port,
            UdpBinding {
                fd,
                inbox: VecDeque::new(),
                on_datagram: Rc::new(RefCell::new(on_datagram)),
            },
        );
        Ok(UdpSocket {
            net: self.clone(),
            port,
        })
    }

    fn send_datagram(&self, cx: &mut Ctx<'_>, from: u16, to: u16, msg: Msg, delay: VDur) {
        // Loss and latency are decided at send time from the env RNG.
        let (lost, latency) = {
            let mut st = self.inner.borrow_mut();
            if st.rng.is_none() {
                st.rng = Some(cx.env_rng().fork());
            }
            let loss = st.udp_loss;
            let latency_model = st.latency;
            let rng = st.rng.as_mut().expect("just initialized");
            let lost = loss > 0.0 && rng.unit() < loss;
            (lost, latency_model.sample(rng))
        };
        if lost {
            return;
        }
        // NO per-peer FIFO clamp: datagrams reorder freely.
        let net = self.clone();
        cx.schedule_env(delay + latency, move |cx| {
            let delivered_to_server = {
                let mut st = net.inner.borrow_mut();
                match st.udp.get_mut(&to) {
                    Some(binding) => {
                        binding.inbox.push_back((from, msg.clone()));
                        Some(binding.fd)
                    }
                    None => None,
                }
            };
            match delivered_to_server {
                Some(fd) => {
                    let _ = cx.mark_ready(fd);
                }
                None => {
                    // No binding: deliver to an environment-side peer
                    // mailbox (a reply to a client).
                    let mut st = net.inner.borrow_mut();
                    st.udp_peers
                        .entry(to)
                        .or_default()
                        .received
                        .push((cx.now(), msg));
                }
            }
        });
    }

    /// Sends a datagram from the loop side (a bound socket's port) to `to`.
    pub fn send_udp(&self, cx: &mut Ctx<'_>, from: u16, to: u16, msg: Msg) {
        self.send_datagram(cx, from, to, msg, VDur::ZERO);
    }

    /// Datagrams an environment-side peer port has received (oracle
    /// helper).
    pub fn udp_peer_received(&self, port: u16) -> Vec<Msg> {
        self.inner
            .borrow()
            .udp_peers
            .get(&port)
            .map(|p| p.received.iter().map(|(_, m)| m.clone()).collect())
            .unwrap_or_default()
    }

    /// Registers a host in the simulated DNS zone.
    pub fn add_host(&self, name: &str, address: &str) {
        self.inner
            .borrow_mut()
            .hosts
            .insert(name.to_string(), address.to_string());
    }

    /// Resolves a host name asynchronously (`dns.lookup`).
    ///
    /// As in Node.js, the lookup runs on the worker pool (§2.2 of the
    /// paper: the libraries use the pool for "asynchronous file system I/O
    /// and DNS queries"), so its completion is a pool event the fuzzer can
    /// reorder. Unknown names resolve to `ENOENT` (NXDOMAIN analog).
    pub fn lookup(
        &self,
        cx: &mut Ctx<'_>,
        name: &str,
        cb: impl FnOnce(&mut Ctx<'_>, Result<String, Errno>) + 'static,
    ) {
        let net = self.clone();
        let name = name.to_string();
        let submit = cx.submit_work(
            VDur::micros(500),
            move |_w| {
                net.inner
                    .borrow()
                    .hosts
                    .get(&name)
                    .cloned()
                    .ok_or(Errno::Enoent)
            },
            move |cx, result| cb(cx, result),
        );
        if submit.is_err() {
            cx.report_error("EMFILE", "dns lookup could not allocate a task descriptor");
        }
    }

    /// Closes every listener after `delay` (test teardown helper).
    pub fn close_all_listeners_after(&self, cx: &mut Ctx<'_>, delay: VDur) {
        let net = self.clone();
        cx.set_timeout(delay, move |cx| {
            let ports: Vec<u16> = net.inner.borrow().listeners.keys().copied().collect();
            for port in ports {
                Server {
                    net: net.clone(),
                    port,
                }
                .close(cx);
            }
        });
    }

    fn dispatch_accept(&self, cx: &mut Ctx<'_>, port: u16) {
        let (id, on_conn) = {
            let mut st = self.inner.borrow_mut();
            let Some(listener) = st.listeners.get_mut(&port) else {
                return;
            };
            let Some(id) = listener.pending.pop_front() else {
                return;
            };
            st.accepted += 1;
            let on_conn = st
                .listeners
                .get(&port)
                .map(|l| l.on_conn.clone())
                .expect("listener just seen");
            (id, on_conn)
        };
        // Allocate the connection descriptor and install its watcher.
        let fd = match cx.alloc_fd(FdKind::NetConn) {
            Ok(fd) => fd,
            Err(_) => {
                // Out of descriptors: the connection is dropped.
                self.inner.borrow_mut().conns.remove(&id);
                return;
            }
        };
        let net = self.clone();
        if cx
            .register_watcher(fd, move |cx, _fd| net.dispatch_conn_event(cx, id))
            .is_err()
        {
            return;
        }
        let buffered = {
            let mut st = self.inner.borrow_mut();
            let Some(conn) = st.conns.get_mut(&id) else {
                return;
            };
            conn.fd = Some(fd);
            conn.inbox.len()
        };
        let conn = Connection {
            net: self.clone(),
            id,
        };
        (on_conn.borrow_mut())(cx, conn);
        // Anything that arrived before the accept is now observable.
        for _ in 0..buffered {
            let _ = cx.mark_ready(fd);
        }
    }

    fn dispatch_conn_event(&self, cx: &mut Ctx<'_>, id: ConnId) {
        let (delivery, on_data) = {
            let mut st = self.inner.borrow_mut();
            let Some(conn) = st.conns.get_mut(&id) else {
                return;
            };
            let Some(delivery) = conn.inbox.pop_front() else {
                return;
            };
            (delivery, conn.on_data.clone())
        };
        let handle = Connection {
            net: self.clone(),
            id,
        };
        match delivery {
            Delivery::Data(msg) => {
                if let Some(cb) = on_data {
                    (cb.borrow_mut())(cx, handle, &msg);
                }
            }
            Delivery::Eof => {
                // Peer teardown flows through the close phase (§4.3.2),
                // where the fuzzer may defer it.
                let queued = {
                    let mut st = self.inner.borrow_mut();
                    match st.conns.get_mut(&id) {
                        Some(c) if !c.close_queued => {
                            c.close_queued = true;
                            true
                        }
                        _ => false,
                    }
                };
                if queued {
                    let net = self.clone();
                    cx.enqueue_close(move |cx| net.finish_close(cx, id, true));
                }
            }
        }
    }

    fn finish_close(&self, cx: &mut Ctx<'_>, id: ConnId, notify_client: bool) {
        let (fd, on_close) = {
            let mut st = self.inner.borrow_mut();
            let Some(conn) = st.conns.get_mut(&id) else {
                return;
            };
            if !conn.server_open {
                return;
            }
            conn.server_open = false;
            (conn.fd.take(), conn.on_close.clone())
        };
        if let Some(fd) = fd {
            let _ = cx.close_fd(fd);
        }
        if let Some(cb) = on_close {
            let handle = Connection {
                net: self.clone(),
                id,
            };
            (cb.borrow_mut())(cx, handle);
        }
        if notify_client {
            let mut st = self.inner.borrow_mut();
            if let Some(conn) = st.conns.get_mut(&id) {
                if conn.client.closed_at.is_none() {
                    conn.client.closed_at = Some(cx.now());
                }
            }
        }
    }

    fn deliver_c2s(&self, cx: &mut Ctx<'_>, id: ConnId, delivery: Delivery) {
        let fd = {
            let mut st = self.inner.borrow_mut();
            let Some(conn) = st.conns.get_mut(&id) else {
                return;
            };
            if !conn.server_open {
                return;
            }
            conn.inbox.push_back(delivery);
            conn.fd
        };
        if let Some(fd) = fd {
            let _ = cx.mark_ready(fd);
        }
        // No fd yet: the connection has not been accepted; the accept path
        // replays buffered events.
    }
}

/// Handle to a listening server.
pub struct Server {
    net: SimNet,
    port: u16,
}

impl Server {
    /// The port this server listens on.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Stops accepting connections and releases the listener descriptor.
    pub fn close(&self, cx: &mut Ctx<'_>) {
        let listener = self.net.inner.borrow_mut().listeners.remove(&self.port);
        if let Some(listener) = listener {
            let _ = cx.close_fd(listener.fd);
        }
    }

    /// Stops the listener from keeping the loop alive (libuv `unref`).
    pub fn unref(&self, cx: &mut Ctx<'_>) {
        if let Some(listener) = self.net.inner.borrow().listeners.get(&self.port) {
            let _ = cx.set_fd_refd(listener.fd, false);
        }
    }
}

/// Server-side handle to an accepted connection. Cheap to clone.
#[derive(Clone)]
pub struct Connection {
    net: SimNet,
    id: ConnId,
}

impl Connection {
    /// The connection id (stable across handles).
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// Installs the data callback, invoked once per arriving message.
    pub fn on_data(&self, cb: impl FnMut(&mut Ctx<'_>, Connection, &Msg) + 'static) {
        if let Some(conn) = self.net.inner.borrow_mut().conns.get_mut(&self.id) {
            conn.on_data = Some(Rc::new(RefCell::new(cb)));
        }
    }

    /// Installs the close callback, invoked from the loop's close phase
    /// when the connection is torn down.
    pub fn on_close(&self, cb: impl FnMut(&mut Ctx<'_>, Connection) + 'static) {
        if let Some(conn) = self.net.inner.borrow_mut().conns.get_mut(&self.id) {
            conn.on_close = Some(Rc::new(RefCell::new(cb)));
        }
    }

    /// Whether the server side still considers the connection open.
    pub fn is_open(&self) -> bool {
        self.net
            .inner
            .borrow()
            .conns
            .get(&self.id)
            .is_some_and(|c| c.server_open)
    }

    /// Sends a message to the client.
    ///
    /// # Errors
    ///
    /// `ENOTCONN` if the connection is closed.
    pub fn write(&self, cx: &mut Ctx<'_>, msg: Msg) -> Result<(), Errno> {
        if !self.is_open() {
            return Err(Errno::Enotconn);
        }
        let latency = self.net.rng_sample(cx);
        let at = {
            let mut st = self.net.inner.borrow_mut();
            let conn = st.conns.get_mut(&self.id).ok_or(Errno::Enotconn)?;
            let at = (cx.now() + latency).max(conn.last_s2c + VDur::nanos(1));
            conn.last_s2c = at;
            at
        };
        let net = self.net.clone();
        let id = self.id;
        cx.schedule_env_at(at, move |cx| {
            let reply = {
                let mut st = net.inner.borrow_mut();
                let Some(conn) = st.conns.get_mut(&id) else {
                    return;
                };
                conn.client.received.push((cx.now(), msg.clone()));
                conn.client.on_reply.clone().map(|cb| (cb, msg))
            };
            if let Some((cb, msg)) = reply {
                (cb.borrow_mut())(cx, &msg);
            }
        });
        Ok(())
    }

    /// Closes the connection from the server side.
    ///
    /// The server's close callback runs in the close phase; the client
    /// observes the teardown at that point.
    pub fn end(&self, cx: &mut Ctx<'_>) {
        let queued = {
            let mut st = self.net.inner.borrow_mut();
            match st.conns.get_mut(&self.id) {
                Some(c) if c.server_open && !c.close_queued => {
                    c.close_queued = true;
                    true
                }
                _ => false,
            }
        };
        if !queued {
            return;
        }
        let net = self.net.clone();
        let id = self.id;
        cx.enqueue_close(move |cx| net.finish_close(cx, id, true));
    }
}

/// A scripted client: the workload-generation side of the simulation.
///
/// All of its actions (connect, send, close) travel through the environment
/// timeline with jittered latency and per-connection FIFO ordering.
#[derive(Clone)]
pub struct Client {
    net: SimNet,
    id: ConnId,
}

impl Client {
    /// Opens a connection to `port` now.
    pub fn connect(cx: &mut Ctx<'_>, net: &SimNet, port: u16) -> Client {
        Client::connect_after(cx, net, port, VDur::ZERO)
    }

    /// Opens a connection to `port` after `delay`.
    pub fn connect_after(cx: &mut Ctx<'_>, net: &SimNet, port: u16, delay: VDur) -> Client {
        let id = {
            let mut st = net.inner.borrow_mut();
            let id = ConnId(st.next_conn);
            st.next_conn += 1;
            st.conns.insert(
                id,
                ConnState {
                    port,
                    fd: None,
                    inbox: VecDeque::new(),
                    on_data: None,
                    on_close: None,
                    server_open: true,
                    close_queued: false,
                    last_c2s: VTime::ZERO,
                    last_s2c: VTime::ZERO,
                    client: ClientSide::default(),
                },
            );
            id
        };
        let latency = net.rng_sample(cx);
        let at = {
            let mut st = net.inner.borrow_mut();
            let conn = st.conns.get_mut(&id).expect("just inserted");
            let at = cx.now() + delay + latency;
            conn.last_c2s = at;
            at
        };
        let netc = net.clone();
        cx.schedule_env_at(at, move |cx| {
            let fd = {
                let mut st = netc.inner.borrow_mut();
                let port = st.conns.get(&id).map(|c| c.port);
                let Some(port) = port else { return };
                match st.listeners.get_mut(&port) {
                    Some(listener) => {
                        listener.pending.push_back(id);
                        Some(listener.fd)
                    }
                    None => {
                        if let Some(conn) = st.conns.get_mut(&id) {
                            conn.client.refused = true;
                            conn.server_open = false;
                        }
                        None
                    }
                }
            };
            if let Some(fd) = fd {
                let _ = cx.mark_ready(fd);
            }
        });
        Client {
            net: net.clone(),
            id,
        }
    }

    /// The underlying connection id.
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// Sends a message now.
    pub fn send(&self, cx: &mut Ctx<'_>, msg: Msg) {
        self.send_after(cx, VDur::ZERO, msg);
    }

    /// Sends a message after `delay`.
    pub fn send_after(&self, cx: &mut Ctx<'_>, delay: VDur, msg: Msg) {
        let latency = self.net.rng_sample(cx);
        let at = {
            let mut st = self.net.inner.borrow_mut();
            let Some(conn) = st.conns.get_mut(&self.id) else {
                return;
            };
            let at = (cx.now() + delay + latency).max(conn.last_c2s + VDur::nanos(1));
            conn.last_c2s = at;
            at
        };
        let net = self.net.clone();
        let id = self.id;
        cx.schedule_env_at(at, move |cx| {
            net.deliver_c2s(cx, id, Delivery::Data(msg));
        });
    }

    /// Closes the connection from the client side after `delay`.
    ///
    /// The server observes an EOF and its close callback runs in the close
    /// phase.
    pub fn close_after(&self, cx: &mut Ctx<'_>, delay: VDur) {
        let latency = self.net.rng_sample(cx);
        let at = {
            let mut st = self.net.inner.borrow_mut();
            let Some(conn) = st.conns.get_mut(&self.id) else {
                return;
            };
            let at = (cx.now() + delay + latency).max(conn.last_c2s + VDur::nanos(1));
            conn.last_c2s = at;
            at
        };
        let net = self.net.clone();
        let id = self.id;
        cx.schedule_env_at(at, move |cx| {
            net.deliver_c2s(cx, id, Delivery::Eof);
        });
    }

    /// Installs a client-side reply callback (environment-level scripting).
    pub fn on_reply(&self, cb: impl FnMut(&mut Ctx<'_>, &Msg) + 'static) {
        if let Some(conn) = self.net.inner.borrow_mut().conns.get_mut(&self.id) {
            conn.client.on_reply = Some(Rc::new(RefCell::new(cb)));
        }
    }

    /// Messages the client has received, in arrival order.
    pub fn received(&self) -> Vec<Msg> {
        self.net
            .inner
            .borrow()
            .conns
            .get(&self.id)
            .map(|c| c.client.received.iter().map(|(_, m)| m.clone()).collect())
            .unwrap_or_default()
    }

    /// Arrival-stamped messages the client has received.
    pub fn received_timed(&self) -> Vec<(VTime, Msg)> {
        self.net
            .inner
            .borrow()
            .conns
            .get(&self.id)
            .map(|c| c.client.received.clone())
            .unwrap_or_default()
    }

    /// Whether the connection attempt was refused.
    pub fn refused(&self) -> bool {
        self.net
            .inner
            .borrow()
            .conns
            .get(&self.id)
            .is_some_and(|c| c.client.refused)
    }

    /// When the client observed the teardown, if it has.
    pub fn closed_at(&self) -> Option<VTime> {
        self.net
            .inner
            .borrow()
            .conns
            .get(&self.id)
            .and_then(|c| c.client.closed_at)
    }
}

/// A bound datagram socket (server side).
pub struct UdpSocket {
    net: SimNet,
    port: u16,
}

impl UdpSocket {
    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Sends a datagram from this socket to `to` (another binding or an
    /// environment-side peer).
    pub fn send_to(&self, cx: &mut Ctx<'_>, to: u16, msg: Msg) {
        let port = self.port;
        self.net.send_datagram(cx, port, to, msg, VDur::ZERO);
    }

    /// Closes the socket, releasing its descriptor.
    pub fn close(&self, cx: &mut Ctx<'_>) {
        let binding = self.net.inner.borrow_mut().udp.remove(&self.port);
        if let Some(binding) = binding {
            let _ = cx.close_fd(binding.fd);
        }
    }
}

/// A scripted environment-side datagram sender.
#[derive(Clone)]
pub struct UdpSender {
    net: SimNet,
    port: u16,
}

impl UdpSender {
    /// Creates a sender whose datagrams carry `port` as their source.
    pub fn new(net: &SimNet, port: u16) -> UdpSender {
        UdpSender {
            net: net.clone(),
            port,
        }
    }

    /// The sender's source port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Sends a datagram to `to` after `delay`.
    pub fn send_after(&self, cx: &mut Ctx<'_>, delay: VDur, to: u16, msg: Msg) {
        self.net.send_datagram(cx, self.port, to, msg, delay);
    }

    /// Datagrams this sender's mailbox has received back.
    pub fn received(&self) -> Vec<Msg> {
        self.net.udp_peer_received(self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::{EventLoop, LoopConfig, Termination};

    fn echo_loop(seed: u64) -> (EventLoop, SimNet) {
        let mut el = EventLoop::new(LoopConfig::seeded(seed));
        let net = SimNet::new();
        let n = net.clone();
        el.enter(move |cx| {
            n.listen(cx, 80, |_cx, conn| {
                conn.on_data(|cx, conn, data| {
                    let mut reply = b"echo:".to_vec();
                    reply.extend_from_slice(data);
                    let _ = conn.write(cx, reply);
                });
            })
            .unwrap();
        });
        (el, net)
    }

    #[test]
    fn echo_round_trip() {
        let (mut el, net) = echo_loop(1);
        let client = el.enter(|cx| {
            let c = Client::connect(cx, &net, 80);
            c.send(cx, b"one".to_vec());
            c.send(cx, b"two".to_vec());
            c.close_after(cx, VDur::millis(80));
            c
        });
        el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(100)));
        let report = el.run();
        assert_eq!(report.termination, Termination::Quiescent);
        // Per-connection FIFO: replies arrive in order.
        assert_eq!(
            client.received(),
            vec![b"echo:one".to_vec(), b"echo:two".to_vec()]
        );
        assert_eq!(net.accepted(), 1);
    }

    #[test]
    fn per_connection_fifo_is_preserved() {
        let (mut el, net) = echo_loop(2);
        let client = el.enter(|cx| {
            let c = Client::connect(cx, &net, 80);
            for i in 0..20u8 {
                c.send(cx, vec![i]);
            }
            c.close_after(cx, VDur::millis(150));
            c
        });
        el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(200)));
        el.run();
        let got = client.received();
        assert_eq!(got.len(), 20);
        for (i, m) in got.iter().enumerate() {
            assert_eq!(m[5], i as u8, "reply {i} out of order");
        }
    }

    #[test]
    fn connect_to_closed_port_is_refused() {
        let mut el = EventLoop::new(LoopConfig::seeded(3));
        let net = SimNet::new();
        let client = el.enter(|cx| Client::connect(cx, &net, 9999));
        el.run();
        assert!(client.refused());
        assert!(client.received().is_empty());
    }

    #[test]
    fn duplicate_listen_is_eaddrinuse() {
        let mut el = EventLoop::new(LoopConfig::seeded(4));
        let net = SimNet::new();
        el.enter(|cx| {
            let s = net.listen(cx, 80, |_, _| {}).unwrap();
            assert_eq!(net.listen(cx, 80, |_, _| {}).err(), Some(Errno::Eaddrinuse));
            s.close(cx);
            // Port is free again.
            let s2 = net.listen(cx, 80, |_, _| {}).unwrap();
            s2.close(cx);
        });
    }

    #[test]
    fn client_close_triggers_server_close_callback() {
        let mut el = EventLoop::new(LoopConfig::seeded(5));
        let net = SimNet::new();
        let n = net.clone();
        el.enter(move |cx| {
            n.listen(cx, 80, |_cx, conn| {
                conn.on_close(|cx, _conn| cx.report_error("server-close", ""));
            })
            .unwrap();
        });
        let client = el.enter(|cx| {
            let c = Client::connect(cx, &net, 80);
            c.close_after(cx, VDur::millis(5));
            c
        });
        el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(50)));
        let report = el.run();
        assert!(report.has_error("server-close"));
        assert!(client.closed_at().is_some());
        assert_eq!(report.schedule.count(nodefz_rt::CbKind::Close), 1);
        assert_eq!(report.schedule.count(nodefz_rt::CbKind::NetAccept), 1);
    }

    #[test]
    fn server_end_notifies_client_and_rejects_writes() {
        let mut el = EventLoop::new(LoopConfig::seeded(6));
        let net = SimNet::new();
        let n = net.clone();
        el.enter(move |cx| {
            n.listen(cx, 80, |cx, conn| {
                conn.end(cx);
                // Double-end is a no-op.
                conn.end(cx);
            })
            .unwrap();
        });
        let client = el.enter(|cx| Client::connect(cx, &net, 80));
        el.enter(|cx| net.close_all_listeners_after(cx, VDur::millis(50)));
        el.run();
        assert!(client.closed_at().is_some());
    }

    #[test]
    fn write_after_close_is_enotconn() {
        let mut el = EventLoop::new(LoopConfig::seeded(7));
        let net = SimNet::new();
        let n = net.clone();
        el.enter(move |cx| {
            n.listen(cx, 80, |cx, conn| {
                conn.end(cx);
                // end() queues the close; once it completes, writes fail.
                let c2 = conn.clone();
                cx.set_timeout(VDur::millis(20), move |cx| {
                    assert_eq!(c2.write(cx, b"late".to_vec()), Err(Errno::Enotconn));
                    assert!(!c2.is_open());
                });
            })
            .unwrap();
        });
        el.enter(|cx| {
            let _ = Client::connect(cx, &net, 80);
            net.close_all_listeners_after(cx, VDur::millis(60));
        });
        el.run();
    }

    #[test]
    fn data_sent_before_accept_is_buffered() {
        // The client connects and sends in the same instant; data may reach
        // the server before the accept dispatches, and must not be lost.
        let mut el = EventLoop::new(LoopConfig::seeded(8));
        let net = SimNet::new();
        let n = net.clone();
        let got = Rc::new(RefCell::new(0u32));
        let g = got.clone();
        el.enter(move |cx| {
            n.listen(cx, 80, move |_cx, conn| {
                let g = g.clone();
                conn.on_data(move |_cx, _conn, _| *g.borrow_mut() += 1);
            })
            .unwrap();
        });
        el.enter(|cx| {
            let c = Client::connect(cx, &net, 80);
            c.send(cx, b"a".to_vec());
            c.send(cx, b"b".to_vec());
            c.send(cx, b"c".to_vec());
            c.close_after(cx, VDur::millis(80));
            net.close_all_listeners_after(cx, VDur::millis(100));
        });
        el.run();
        assert_eq!(*got.borrow(), 3);
    }

    #[test]
    fn on_reply_scripting_runs() {
        let (mut el, net) = echo_loop(9);
        let replies = Rc::new(RefCell::new(0u32));
        let r = replies.clone();
        el.enter(move |cx| {
            let c = Client::connect(cx, &net, 80);
            c.on_reply(move |_cx, _msg| *r.borrow_mut() += 1);
            c.send(cx, b"x".to_vec());
            c.close_after(cx, VDur::millis(40));
            net.close_all_listeners_after(cx, VDur::millis(50));
        });
        el.run();
        assert_eq!(*replies.borrow(), 1);
    }

    #[test]
    fn cross_connection_order_varies_with_env_seed() {
        // Two clients each send one message; across seeds, the arrival
        // order differs — the nondeterminism §4.2.1 describes.
        let mut first_arrivals = std::collections::HashSet::new();
        for seed in 0..20 {
            let mut el = EventLoop::new(LoopConfig::seeded(seed));
            let net = SimNet::new();
            let n = net.clone();
            let first = Rc::new(RefCell::new(None));
            let f = first.clone();
            el.enter(move |cx| {
                n.listen(cx, 80, move |_cx, conn| {
                    let f = f.clone();
                    conn.on_data(move |_cx, _conn, msg| {
                        f.borrow_mut().get_or_insert(msg.clone());
                    });
                })
                .unwrap();
            });
            el.enter(|cx| {
                for tag in [b"A", b"B"] {
                    let c = Client::connect(cx, &net, 80);
                    c.send(cx, tag.to_vec());
                    c.close_after(cx, VDur::millis(40));
                }
                net.close_all_listeners_after(cx, VDur::millis(50));
            });
            el.run();
            let observed = first.borrow().clone();
            if let Some(m) = observed {
                first_arrivals.insert(m);
            }
        }
        assert_eq!(
            first_arrivals.len(),
            2,
            "both orders should appear across seeds"
        );
    }

    #[test]
    fn unclosed_connection_reports_hang() {
        // A connection nobody ever closes keeps the loop alive with no
        // possible wakeup: the run ends as Hung (a "request hangs" impact).
        let (mut el, net) = echo_loop(11);
        el.enter(|cx| {
            let _ = Client::connect(cx, &net, 80);
            net.close_all_listeners_after(cx, VDur::millis(20));
        });
        let report = el.run();
        assert_eq!(report.termination, Termination::Hung);
    }

    #[test]
    fn unref_listener_lets_loop_quiesce() {
        let mut el = EventLoop::new(LoopConfig::seeded(10));
        let net = SimNet::new();
        el.enter(|cx| {
            let server = net.listen(cx, 80, |_, _| {}).unwrap();
            assert_eq!(server.port(), 80);
            server.unref(cx);
        });
        let report = el.run();
        assert_eq!(report.termination, Termination::Quiescent);
    }
}
