//! Property tests for the string interner: interning is a bijection
//! between distinct strings and dense ids, and normalization-interning
//! agrees with [`normalize_site`] exactly.

use std::collections::HashMap;

use nodefz_check::{forall, Gen};
use nodefz_trace::{normalize_site, SiteId, SiteInterner};

/// A random failure-site-shaped string: words, digit runs, quotes, and
/// messy whitespace — everything the normalizer special-cases.
fn site(g: &mut Gen) -> String {
    let mut out = String::new();
    for _ in 0..g.range_usize(0, 12) {
        match g.below(5) {
            0 => out.push_str(&g.lowercase(1, 6)),
            1 => out.push_str(&g.below(100_000).to_string()),
            2 => {
                out.push('"');
                out.push_str(&g.lowercase(0, 5));
                out.push('"');
            }
            3 => out.push_str("  \t"),
            _ => out.push_str("Mixed CASE"),
        }
        out.push(' ');
    }
    out
}

#[test]
fn id_to_string_to_id_round_trips() {
    forall("id_to_string_to_id_round_trips", 64, |g| {
        let mut t = SiteInterner::new();
        let strings: Vec<String> = g.vec_with(0, 40, site);
        let ids: Vec<SiteId> = strings.iter().map(|s| t.intern(s)).collect();
        for (s, &id) in strings.iter().zip(&ids) {
            // SiteId → string → SiteId is the identity.
            assert_eq!(t.intern(t.resolve(id).to_string().as_str()), id);
            assert_eq!(t.resolve(id), s);
            assert_eq!(t.lookup(s), Some(id));
        }
    });
}

#[test]
fn equal_strings_share_an_id_distinct_strings_do_not() {
    forall(
        "equal_strings_share_an_id_distinct_strings_do_not",
        64,
        |g| {
            let mut t = SiteInterner::new();
            let mut by_string: HashMap<String, SiteId> = HashMap::new();
            for s in g.vec_with(0, 60, site) {
                let id = t.intern(&s);
                match by_string.get(&s) {
                    Some(&prev) => assert_eq!(prev, id, "same string, new id: {s:?}"),
                    None => {
                        assert!(
                            by_string.values().all(|&other| other != id),
                            "distinct strings collided on {id:?}"
                        );
                        by_string.insert(s, id);
                    }
                }
            }
            assert_eq!(t.len(), by_string.len());
        },
    );
}

#[test]
fn intern_site_agrees_with_normalize_site() {
    forall("intern_site_agrees_with_normalize_site", 128, |g| {
        let mut t = SiteInterner::new();
        let raw = site(g);
        let id = t.intern_site(&raw);
        assert_eq!(t.resolve(id), normalize_site(&raw));
        // Interning the normalized form directly lands on the same id.
        assert_eq!(t.intern(&normalize_site(&raw)), id);
    });
}
