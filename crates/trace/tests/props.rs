//! Property-based tests of the Levenshtein metrics.

use proptest::prelude::*;

use nodefz_trace::{levenshtein, levenshtein_banded, normalized_levenshtein};

fn schedule() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet, like real type schedules.
    prop::collection::vec(
        prop::sample::select(vec![b'T', b'N', b'D', b'W', b'c', b'X']),
        0..80,
    )
}

proptest! {
    #[test]
    fn identity_is_zero(a in schedule()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(normalized_levenshtein(&a, &a), 0.0);
    }

    #[test]
    fn symmetry(a in schedule(), b in schedule()) {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn bounds(a in schedule(), b in schedule()) {
        let d = levenshtein(&a, &b);
        // Lower bound: length difference. Upper bound: longer length.
        prop_assert!(d >= a.len().abs_diff(b.len()));
        prop_assert!(d <= a.len().max(b.len()));
        let n = normalized_levenshtein(&a, &b);
        prop_assert!((0.0..=1.0).contains(&n));
    }

    #[test]
    fn triangle_inequality(a in schedule(), b in schedule(), c in schedule()) {
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc, "d(a,c)={ac} > d(a,b)+d(b,c)={}", ab + bc);
    }

    #[test]
    fn single_edit_costs_at_most_one(a in schedule(), idx: usize, byte in 0u8..4) {
        // Substitution.
        if !a.is_empty() {
            let mut b = a.clone();
            let i = idx % b.len();
            b[i] = byte + b'a';
            prop_assert!(levenshtein(&a, &b) <= 1);
        }
        // Insertion.
        let mut b = a.clone();
        b.insert(idx % (a.len() + 1), byte + b'a');
        prop_assert_eq!(levenshtein(&a, &b), 1);
        // Deletion.
        if !a.is_empty() {
            let mut b = a.clone();
            b.remove(idx % b.len());
            prop_assert_eq!(levenshtein(&a, &b), 1);
        }
    }

    #[test]
    fn k_edits_cost_at_most_k(a in schedule(), edits in prop::collection::vec((any::<usize>(), 0u8..4), 0..10)) {
        let mut b = a.clone();
        let k = edits.len();
        for (pos, byte) in edits {
            match byte % 3 {
                0 => b.insert(pos % (b.len() + 1), byte + b'a'),
                1 if !b.is_empty() => {
                    let i = pos % b.len();
                    b[i] = byte + b'a';
                }
                _ if !b.is_empty() => {
                    b.remove(pos % b.len());
                }
                _ => {}
            }
        }
        prop_assert!(levenshtein(&a, &b) <= k);
    }

    #[test]
    fn banded_agrees_with_exact(a in schedule(), b in schedule()) {
        let exact = levenshtein(&a, &b);
        // A band at least as large as the true distance must agree.
        prop_assert_eq!(levenshtein_banded(&a, &b, exact), Some(exact));
        prop_assert_eq!(levenshtein_banded(&a, &b, exact + 7), Some(exact));
        // A band strictly smaller must refuse.
        if exact > 0 {
            prop_assert_eq!(levenshtein_banded(&a, &b, exact - 1), None);
        }
    }
}
