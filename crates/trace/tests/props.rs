//! Property-based tests of the Levenshtein metrics, driven by the seeded
//! `nodefz-check` harness.

use nodefz_check::{forall, Gen};
use nodefz_trace::{levenshtein, levenshtein_banded, normalized_levenshtein};

/// A random schedule over the small alphabet real type schedules use.
fn schedule(g: &mut Gen) -> Vec<u8> {
    let alphabet = [b'T', b'N', b'D', b'W', b'c', b'X'];
    g.vec_with(0, 80, |g| *g.pick(&alphabet))
}

#[test]
fn identity_is_zero() {
    forall("identity_is_zero", 64, |g| {
        let a = schedule(g);
        assert_eq!(levenshtein(&a, &a), 0);
        assert_eq!(normalized_levenshtein(&a, &a), 0.0);
    });
}

#[test]
fn symmetry() {
    forall("symmetry", 64, |g| {
        let a = schedule(g);
        let b = schedule(g);
        assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    });
}

#[test]
fn bounds() {
    forall("bounds", 64, |g| {
        let a = schedule(g);
        let b = schedule(g);
        let d = levenshtein(&a, &b);
        // Lower bound: length difference. Upper bound: longer length.
        assert!(d >= a.len().abs_diff(b.len()));
        assert!(d <= a.len().max(b.len()));
        let n = normalized_levenshtein(&a, &b);
        assert!((0.0..=1.0).contains(&n));
    });
}

#[test]
fn triangle_inequality() {
    forall("triangle_inequality", 64, |g| {
        let a = schedule(g);
        let b = schedule(g);
        let c = schedule(g);
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        assert!(ac <= ab + bc, "d(a,c)={ac} > d(a,b)+d(b,c)={}", ab + bc);
    });
}

#[test]
fn single_edit_costs_at_most_one() {
    forall("single_edit_costs_at_most_one", 64, |g| {
        let a = schedule(g);
        let idx = g.u64() as usize;
        let byte = g.below(4) as u8;
        // Substitution.
        if !a.is_empty() {
            let mut b = a.clone();
            let i = idx % b.len();
            b[i] = byte + b'a';
            assert!(levenshtein(&a, &b) <= 1);
        }
        // Insertion.
        let mut b = a.clone();
        b.insert(idx % (a.len() + 1), byte + b'a');
        assert_eq!(levenshtein(&a, &b), 1);
        // Deletion.
        if !a.is_empty() {
            let mut b = a.clone();
            b.remove(idx % b.len());
            assert_eq!(levenshtein(&a, &b), 1);
        }
    });
}

#[test]
fn k_edits_cost_at_most_k() {
    forall("k_edits_cost_at_most_k", 64, |g| {
        let a = schedule(g);
        let edits = g.vec_with(0, 10, |g| (g.u64() as usize, g.below(4) as u8));
        let mut b = a.clone();
        let k = edits.len();
        for (pos, byte) in edits {
            match byte % 3 {
                0 => b.insert(pos % (b.len() + 1), byte + b'a'),
                1 if !b.is_empty() => {
                    let i = pos % b.len();
                    b[i] = byte + b'a';
                }
                _ if !b.is_empty() => {
                    b.remove(pos % b.len());
                }
                _ => {}
            }
        }
        assert!(levenshtein(&a, &b) <= k);
    });
}

#[test]
fn banded_agrees_with_exact() {
    forall("banded_agrees_with_exact", 64, |g| {
        let a = schedule(g);
        let b = schedule(g);
        let exact = levenshtein(&a, &b);
        // A band at least as large as the true distance must agree.
        assert_eq!(levenshtein_banded(&a, &b, exact), Some(exact));
        assert_eq!(levenshtein_banded(&a, &b, exact + 7), Some(exact));
        // A band strictly smaller must refuse.
        if exact > 0 {
            assert_eq!(levenshtein_banded(&a, &b, exact - 1), None);
        }
    });
}
