//! Failure signatures for deduplicating campaign findings.
//!
//! A fuzzing campaign surfaces the *same* underlying race many times, each
//! manifestation under a different seed and hence a different schedule. A
//! [`BugSignature`] collapses those into one report by keying on what is
//! stable across manifestations of one bug:
//!
//! * the application under test,
//! * the failure site (the oracle's evidence string, normalized so that
//!   run-specific values — counts, times, ids — do not split groups), and
//! * a coarse fingerprint of *which* callback types the failing run
//!   dispatched (the set, not the order — order varies per seed).

use std::fmt;

use nodefz_rt::{CbKind, TypeSchedule};

/// 64-bit FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Normalizes a failure-site string for grouping.
///
/// Lowercases, replaces every run of ASCII digits with `#` (so "lost 3 of
/// 12" and "lost 5 of 12" collapse), replaces double-quoted spans with
/// `"*"` (oracles quote run-specific values — paths, keys, states), and
/// collapses whitespace runs to one space. The result is stable across
/// seeds but still human-readable.
pub fn normalize_site(site: &str) -> String {
    let mut out = String::with_capacity(site.len());
    normalize_site_into(site, &mut out);
    out
}

/// [`normalize_site`] writing into a caller-owned buffer.
///
/// Single pass over the input; clears `out` first and never allocates
/// beyond growing `out` to the normalized length, so a reused buffer makes
/// repeated normalization allocation-free once its capacity plateaus.
pub fn normalize_site_into(site: &str, out: &mut String) {
    out.clear();
    let mut in_digits = false;
    let mut in_space = false;
    let mut in_quote = false;
    for ch in site.trim().chars() {
        if in_quote {
            if ch == '"' {
                in_quote = false;
                out.push_str("*\"");
            }
            continue;
        }
        if ch == '"' {
            if in_space && !out.is_empty() {
                out.push(' ');
            }
            in_space = false;
            in_digits = false;
            in_quote = true;
            out.push('"');
            continue;
        }
        if ch.is_ascii_digit() {
            if !in_digits {
                if in_space && !out.is_empty() {
                    out.push(' ');
                }
                out.push('#');
            }
            in_digits = true;
            in_space = false;
        } else if ch.is_whitespace() {
            in_digits = false;
            in_space = true;
        } else {
            if in_space && !out.is_empty() {
                out.push(' ');
            }
            in_space = false;
            in_digits = false;
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
        }
    }
}

/// A 17-bit fingerprint: one bit per [`CbKind`] that appears in the
/// schedule at least once.
pub fn kind_fingerprint(schedule: &TypeSchedule) -> u32 {
    let mut bits = 0u32;
    for (i, kind) in CbKind::all().iter().enumerate() {
        if schedule.count(*kind) > 0 {
            bits |= 1 << i;
        }
    }
    bits
}

/// The dedup key for one manifested failure.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BugSignature {
    /// The application the failure manifested in.
    pub app: String,
    /// The normalized failure site (see [`normalize_site`]).
    pub site: String,
    /// Which callback kinds the failing run dispatched
    /// (see [`kind_fingerprint`]).
    pub kinds: u32,
}

impl BugSignature {
    /// Builds the signature for a manifestation: `app` is the bug's
    /// abbreviation, `site` the oracle's raw evidence string, `schedule`
    /// the failing run's type schedule.
    pub fn new(app: &str, site: &str, schedule: &TypeSchedule) -> BugSignature {
        BugSignature {
            app: app.to_string(),
            site: normalize_site(site),
            kinds: kind_fingerprint(schedule),
        }
    }

    /// A compact stable digest of the signature, usable as a corpus file
    /// name component.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.app.len() + self.site.len() + 8);
        bytes.extend_from_slice(self.app.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(self.site.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&self.kinds.to_le_bytes());
        fnv1a(&bytes)
    }
}

impl fmt::Display for BugSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:016x}", self.app, self.digest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_collapses_run_specific_detail() {
        assert_eq!(
            normalize_site("Lost 3 of 12 jobs   after 4500us"),
            "lost # of # jobs after #us"
        );
        assert_eq!(normalize_site("  EDGE  "), "edge");
        assert_eq!(normalize_site(""), "");
    }

    #[test]
    fn quoted_values_collapse() {
        assert_eq!(
            normalize_site(r#"missing: ["build/cache/css"]"#),
            r#"missing: ["*"]"#
        );
        assert_eq!(
            normalize_site(r#"missing: ["build/cache/js"]"#),
            normalize_site(r#"missing: ["build/cache/css"]"#)
        );
        assert_eq!(
            normalize_site(r#"state Some("failed")"#),
            r#"state some("*")"#
        );
        // An unterminated quote swallows the tail but stays stable.
        assert_eq!(normalize_site(r#"oops "dangling"#), r#"oops ""#);
    }

    #[test]
    fn into_variant_matches_on_all_fixtures_and_reuses_capacity() {
        let fixtures = [
            "Lost 3 of 12 jobs   after 4500us",
            "  EDGE  ",
            "",
            r#"missing: ["build/cache/css"]"#,
            r#"missing: ["build/cache/js"]"#,
            r#"state Some("failed")"#,
            r#"oops "dangling"#,
            "Ünïcode 42 Mixed\tCASE",
        ];
        let mut buf = String::new();
        for site in fixtures {
            normalize_site_into(site, &mut buf);
            assert_eq!(buf, normalize_site(site), "fixture {site:?}");
        }
        // A reused buffer must not shrink: repeated normalization is
        // allocation-free once capacity plateaus.
        let cap = buf.capacity();
        normalize_site_into("x", &mut buf);
        assert_eq!(buf, "x");
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn same_bug_different_seeds_share_a_signature() {
        let mut s1 = TypeSchedule::new();
        let mut s2 = TypeSchedule::new();
        // Same kinds, different order and counts.
        for k in [CbKind::Timer, CbKind::PoolDone, CbKind::Timer] {
            s1.push(k);
        }
        for k in [CbKind::PoolDone, CbKind::Timer] {
            s2.push(k);
        }
        let a = BugSignature::new("KUE", "lost 2 of 10 jobs", &s1);
        let b = BugSignature::new("KUE", "lost 7 of 10 jobs", &s2);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_apps_or_sites_differ() {
        let s = TypeSchedule::new();
        let a = BugSignature::new("KUE", "lost jobs", &s);
        let b = BugSignature::new("MKD", "lost jobs", &s);
        let c = BugSignature::new("KUE", "double free", &s);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn fingerprint_is_presence_not_counts() {
        let mut a = TypeSchedule::new();
        let mut b = TypeSchedule::new();
        a.push(CbKind::NetRead);
        b.push(CbKind::NetRead);
        b.push(CbKind::NetRead);
        assert_eq!(kind_fingerprint(&a), kind_fingerprint(&b));
        b.push(CbKind::Close);
        assert_ne!(kind_fingerprint(&a), kind_fingerprint(&b));
        assert_eq!(kind_fingerprint(&TypeSchedule::new()), 0);
    }

    #[test]
    fn display_names_the_app() {
        let sig = BugSignature::new("GHO", "edge", &TypeSchedule::new());
        let shown = sig.to_string();
        assert!(shown.starts_with("GHO:"), "{shown}");
    }
}
