//! Schedule-diversity statistics across repeated runs.
//!
//! Figure 7 of the paper reports, per test suite, the mean pairwise
//! normalized Levenshtein distance over 10 executions (truncated to the
//! first 20 K callbacks). [`pairwise_normalized_ld`] computes exactly that;
//! [`DiversitySummary`] adds auxiliary diversity measures used by the
//! extended analyses.

use nodefz_rt::{CbKind, TypeSchedule};

use crate::levenshtein::normalized_levenshtein;

/// The truncation the paper applies before computing distances (§5.3).
pub const PAPER_TRUNCATION: usize = 20_000;

/// Mean pairwise normalized Levenshtein distance between type schedules,
/// after truncating each to `truncate` callbacks.
///
/// Returns 0.0 when fewer than two schedules are given.
///
/// # Examples
///
/// ```
/// use nodefz_rt::{CbKind, TypeSchedule};
/// use nodefz_trace::pairwise_normalized_ld;
///
/// let mut a = TypeSchedule::new();
/// a.push(CbKind::Timer);
/// let mut b = TypeSchedule::new();
/// b.push(CbKind::NetRead);
/// assert_eq!(pairwise_normalized_ld(&[a.clone(), a.clone()], 100), 0.0);
/// assert_eq!(pairwise_normalized_ld(&[a, b], 100), 1.0);
/// ```
pub fn pairwise_normalized_ld(schedules: &[TypeSchedule], truncate: usize) -> f64 {
    if schedules.len() < 2 {
        return 0.0;
    }
    let truncated: Vec<Vec<u8>> = schedules
        .iter()
        .map(|s| s.codes().iter().copied().take(truncate).collect())
        .collect();
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..truncated.len() {
        for j in i + 1..truncated.len() {
            total += normalized_levenshtein(&truncated[i], &truncated[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Summary diversity statistics for a set of runs of one program.
#[derive(Clone, Debug, PartialEq)]
pub struct DiversitySummary {
    /// Number of runs summarized.
    pub runs: usize,
    /// Mean pairwise normalized Levenshtein distance.
    pub mean_pairwise_ld: f64,
    /// Minimum pairwise normalized distance.
    pub min_pairwise_ld: f64,
    /// Maximum pairwise normalized distance.
    pub max_pairwise_ld: f64,
    /// Number of distinct schedules among the runs.
    pub distinct: usize,
    /// Mean schedule length.
    pub mean_len: f64,
    /// Shannon entropy (bits) of the pooled callback-kind distribution.
    pub kind_entropy: f64,
}

impl DiversitySummary {
    /// Computes diversity statistics, truncating schedules first.
    ///
    /// # Panics
    ///
    /// Panics if `schedules` is empty.
    pub fn compute(schedules: &[TypeSchedule], truncate: usize) -> DiversitySummary {
        assert!(!schedules.is_empty(), "need at least one schedule");
        let truncated: Vec<Vec<u8>> = schedules
            .iter()
            .map(|s| s.codes().iter().copied().take(truncate).collect())
            .collect();
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in 0..truncated.len() {
            for j in i + 1..truncated.len() {
                let d = normalized_levenshtein(&truncated[i], &truncated[j]);
                min = min.min(d);
                max = max.max(d);
                total += d;
                pairs += 1;
            }
        }
        let (mean, min) = if pairs == 0 {
            (0.0, 0.0)
        } else {
            (total / pairs as f64, min)
        };
        let mut uniq: Vec<&Vec<u8>> = truncated.iter().collect();
        uniq.sort();
        uniq.dedup();
        let mean_len =
            truncated.iter().map(|s| s.len()).sum::<usize>() as f64 / truncated.len() as f64;
        DiversitySummary {
            runs: schedules.len(),
            mean_pairwise_ld: mean,
            min_pairwise_ld: min,
            max_pairwise_ld: max,
            distinct: uniq.len(),
            mean_len,
            kind_entropy: pooled_kind_entropy(&truncated),
        }
    }
}

fn pooled_kind_entropy(schedules: &[Vec<u8>]) -> f64 {
    let mut counts = std::collections::HashMap::new();
    let mut total = 0u64;
    for s in schedules {
        for &b in s {
            *counts.entry(b).or_insert(0u64) += 1;
            total += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Histogram of callback kinds in a schedule, for reporting.
pub fn kind_histogram(schedule: &TypeSchedule) -> Vec<(CbKind, usize)> {
    CbKind::all()
        .iter()
        .copied()
        .map(|k| (k, schedule.count(k)))
        .filter(|(_, n)| *n > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(kinds: &[CbKind]) -> TypeSchedule {
        let mut s = TypeSchedule::new();
        for &k in kinds {
            s.push(k);
        }
        s
    }

    #[test]
    fn identical_schedules_have_zero_ld() {
        let s = sched(&[CbKind::Timer, CbKind::NetRead, CbKind::Close]);
        let v = vec![s.clone(), s.clone(), s];
        assert_eq!(pairwise_normalized_ld(&v, 100), 0.0);
        let d = DiversitySummary::compute(&v, 100);
        assert_eq!(d.distinct, 1);
        assert_eq!(d.mean_pairwise_ld, 0.0);
        assert_eq!(d.max_pairwise_ld, 0.0);
    }

    #[test]
    fn disjoint_schedules_have_ld_one() {
        let a = sched(&[CbKind::Timer; 4]);
        let b = sched(&[CbKind::NetRead; 4]);
        assert_eq!(pairwise_normalized_ld(&[a, b], 100), 1.0);
    }

    #[test]
    fn fewer_than_two_schedules() {
        assert_eq!(pairwise_normalized_ld(&[], 10), 0.0);
        assert_eq!(pairwise_normalized_ld(&[sched(&[CbKind::Timer])], 10), 0.0);
    }

    #[test]
    fn truncation_applies_before_distance() {
        // Schedules differ only after position 2: truncating to 2 hides it.
        let a = sched(&[CbKind::Timer, CbKind::Timer, CbKind::NetRead]);
        let b = sched(&[CbKind::Timer, CbKind::Timer, CbKind::Close]);
        assert!(pairwise_normalized_ld(&[a.clone(), b.clone()], 10) > 0.0);
        assert_eq!(pairwise_normalized_ld(&[a, b], 2), 0.0);
    }

    #[test]
    fn summary_counts_distinct() {
        let a = sched(&[CbKind::Timer]);
        let b = sched(&[CbKind::NetRead]);
        let d = DiversitySummary::compute(&[a.clone(), b.clone(), a.clone()], 10);
        assert_eq!(d.runs, 3);
        assert_eq!(d.distinct, 2);
        assert!(d.mean_pairwise_ld > 0.0);
        assert!((d.mean_len - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_run_summary() {
        let d = DiversitySummary::compute(&[sched(&[CbKind::Timer; 3])], 10);
        assert_eq!(d.runs, 1);
        assert_eq!(d.mean_pairwise_ld, 0.0);
        assert_eq!(d.distinct, 1);
    }

    #[test]
    #[should_panic(expected = "at least one schedule")]
    fn empty_summary_panics() {
        let _ = DiversitySummary::compute(&[], 10);
    }

    #[test]
    fn entropy_zero_for_uniform_kind() {
        let d = DiversitySummary::compute(&[sched(&[CbKind::Timer; 10])], 100);
        assert_eq!(d.kind_entropy, 0.0);
    }

    #[test]
    fn entropy_one_bit_for_even_two_kinds() {
        let mut kinds = vec![CbKind::Timer; 5];
        kinds.extend(vec![CbKind::NetRead; 5]);
        let d = DiversitySummary::compute(&[sched(&kinds)], 100);
        assert!((d.kind_entropy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_lists_present_kinds_only() {
        let s = sched(&[CbKind::Timer, CbKind::Timer, CbKind::Close]);
        let h = kind_histogram(&s);
        assert_eq!(h.len(), 2);
        assert!(h.contains(&(CbKind::Timer, 2)));
        assert!(h.contains(&(CbKind::Close, 1)));
    }
}
