//! A set of bug signatures, for merging findings across processes.
//!
//! The in-campaign [`Deduper`]-style tables key on interner-local
//! [`SigKey`]s, which are only meaningful inside one process. When an
//! orchestrator merges corpora produced by *separate* worker processes,
//! every shard arrives with its own string space — so the merge side
//! needs a set that re-interns on insert and can answer "is this
//! signature new to the union?" cheaply and deterministically.
//!
//! [`SigSet`] is that set: insertion interns the signature's strings into
//! the set's own table (two hash lookups after the first sighting) and
//! reports whether the signature was previously unseen. The insertion
//! order is recorded, so a cross-shard discovery sequence can be replayed
//! for reward accounting.
//!
//! [`Deduper`]: https://docs.rs/nodefz-campaign

use crate::intern::{SigKey, SiteInterner};
use crate::signature::BugSignature;

/// An insertion-ordered set of [`BugSignature`]s with its own interner.
#[derive(Clone, Debug, Default)]
pub struct SigSet {
    interner: SiteInterner,
    seen: std::collections::HashSet<SigKey>,
    order: Vec<BugSignature>,
}

impl SigSet {
    /// Creates an empty set.
    pub fn new() -> SigSet {
        SigSet::default()
    }

    /// Inserts a signature; returns `true` when it was previously unseen.
    pub fn insert(&mut self, sig: &BugSignature) -> bool {
        let key = SigKey::of(sig, &mut self.interner);
        let new = self.seen.insert(key);
        if new {
            self.order.push(sig.clone());
        }
        new
    }

    /// Whether the set already contains `sig` (interns its strings but
    /// never records the signature).
    pub fn contains(&mut self, sig: &BugSignature) -> bool {
        let key = SigKey::of(sig, &mut self.interner);
        self.seen.contains(&key)
    }

    /// Number of distinct signatures inserted.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The distinct signatures, in first-insertion order.
    pub fn in_order(&self) -> &[BugSignature] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(app: &str, site: &str, kinds: u32) -> BugSignature {
        BugSignature {
            app: app.into(),
            site: site.into(),
            kinds,
        }
    }

    #[test]
    fn first_insertion_is_new_repeats_are_not() {
        let mut s = SigSet::new();
        assert!(s.insert(&sig("KUE", "lost # jobs", 3)));
        assert!(!s.insert(&sig("KUE", "lost # jobs", 3)));
        assert!(s.insert(&sig("MKD", "lost # jobs", 3)), "app splits");
        assert!(s.insert(&sig("KUE", "lost # jobs", 7)), "kinds split");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn merging_two_shards_yields_the_union_in_insertion_order() {
        // Two shards found overlapping bugs; the union dedups and keeps
        // first-seen order — the cross-shard discovery sequence.
        let shard_a = [sig("KUE", "a", 1), sig("GHO", "b", 2)];
        let shard_b = [sig("GHO", "b", 2), sig("MKD", "c", 4)];
        let mut union = SigSet::new();
        let new_a: usize = shard_a.iter().filter(|s| union.insert(s)).count();
        let new_b: usize = shard_b.iter().filter(|s| union.insert(s)).count();
        assert_eq!((new_a, new_b), (2, 1));
        let apps: Vec<&str> = union.in_order().iter().map(|s| s.app.as_str()).collect();
        assert_eq!(apps, ["KUE", "GHO", "MKD"]);
    }

    #[test]
    fn contains_does_not_insert() {
        let mut s = SigSet::new();
        assert!(!s.contains(&sig("KUE", "x", 0)));
        assert!(s.is_empty());
        s.insert(&sig("KUE", "x", 0));
        assert!(s.contains(&sig("KUE", "x", 0)));
        assert_eq!(s.len(), 1);
    }
}
