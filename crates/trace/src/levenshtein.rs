//! Levenshtein distance over type schedules (§5.3 of the paper).
//!
//! The paper measures schedule-space exploration as the pairwise Levenshtein
//! distance between the *type schedules* of repeated runs, normalized by the
//! maximum possible distance and truncated to the first 20 K callbacks. We
//! provide the exact O(n·m) two-row computation plus a banded variant for
//! long schedules whose distance is known to be small.

/// Exact Levenshtein (edit) distance between two byte strings.
///
/// Uses the classic two-row dynamic program: O(n·m) time, O(min(n, m))
/// space.
///
/// # Examples
///
/// ```
/// use nodefz_trace::levenshtein;
///
/// assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
/// assert_eq!(levenshtein(b"", b"abc"), 3);
/// assert_eq!(levenshtein(b"same", b"same"), 0);
/// ```
pub fn levenshtein(a: &[u8], b: &[u8]) -> usize {
    // Ensure `b` is the shorter side so the rows are minimal.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<u32> = (0..=b.len() as u32).collect();
    let mut curr: Vec<u32> = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i as u32 + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + u32::from(ca != cb);
            let del = prev[j + 1] + 1;
            let ins = curr[j] + 1;
            curr[j + 1] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()] as usize
}

/// Banded Levenshtein distance: exact if the true distance is at most
/// `band`, otherwise returns `None`.
///
/// Runs in O(band · max(n, m)) time, useful for comparing long schedules
/// that are expected to be similar.
///
/// # Examples
///
/// ```
/// use nodefz_trace::levenshtein_banded;
///
/// assert_eq!(levenshtein_banded(b"kitten", b"sitting", 3), Some(3));
/// assert_eq!(levenshtein_banded(b"kitten", b"sitting", 2), None);
/// ```
pub fn levenshtein_banded(a: &[u8], b: &[u8], band: usize) -> Option<usize> {
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    let (n, m) = (a.len(), b.len());
    if n - m > band {
        return None;
    }
    if m == 0 {
        return Some(n);
    }
    const INF: u32 = u32::MAX / 2;
    // Row i covers columns j in [i.saturating_sub(band), min(m, i + band)].
    let width = 2 * band + 1;
    let mut prev = vec![INF; width + 2];
    let mut curr = vec![INF; width + 2];
    // Row 0: D[0][j] = j for j <= band.
    for (off, slot) in prev.iter_mut().take(width).enumerate() {
        // Column j = off - band at row 0 exists only when off >= band.
        if off >= band {
            let j = off - band;
            if j <= m {
                *slot = j as u32;
            }
        }
    }
    for i in 1..=n {
        for slot in curr.iter_mut() {
            *slot = INF;
        }
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(m);
        for j in lo..=hi {
            // Offset of column j in row i is j - i + band.
            let off = j + band - i;
            let up_off = off + 1; // Same column, previous row.
            let diag_off = off; // Column j-1, previous row.
            let mut best = INF;
            if j > 0 {
                let sub = prev[diag_off].saturating_add(u32::from(a[i - 1] != b[j - 1]));
                best = best.min(sub);
                if off > 0 {
                    best = best.min(curr[off - 1].saturating_add(1)); // Insert.
                }
            } else {
                best = best.min(i as u32); // D[i][0] = i.
            }
            if up_off < width {
                best = best.min(prev[up_off].saturating_add(1)); // Delete.
            }
            curr[off] = best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let off = m + band - n;
    let d = prev[off];
    if d as usize <= band {
        Some(d as usize)
    } else {
        None
    }
}

/// Levenshtein distance normalized by the maximum possible distance
/// (the length of the longer input). In `[0, 1]`.
///
/// The paper notes an LD of 1.0 would require the two schedules to have
/// nothing in common.
pub fn normalized_levenshtein(a: &[u8], b: &[u8]) -> f64 {
    let max = a.len().max(b.len());
    if max == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
        assert_eq!(levenshtein(b"flaw", b"lawn"), 2);
        assert_eq!(levenshtein(b"gumbo", b"gambol"), 2);
        assert_eq!(levenshtein(b"", b""), 0);
        assert_eq!(levenshtein(b"abc", b""), 3);
        assert_eq!(levenshtein(b"", b"abc"), 3);
    }

    #[test]
    fn symmetric() {
        let pairs: [(&[u8], &[u8]); 3] = [(b"abcdef", b"azced"), (b"xyz", b"xxyyzz"), (b"a", b"b")];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn identity_is_zero() {
        assert_eq!(levenshtein(b"schedule", b"schedule"), 0);
        assert_eq!(normalized_levenshtein(b"schedule", b"schedule"), 0.0);
    }

    #[test]
    fn single_edit_kinds() {
        assert_eq!(levenshtein(b"abc", b"axc"), 1); // Substitution.
        assert_eq!(levenshtein(b"abc", b"abxc"), 1); // Insertion.
        assert_eq!(levenshtein(b"abc", b"ac"), 1); // Deletion.
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_levenshtein(b"", b""), 0.0);
        assert_eq!(normalized_levenshtein(b"abc", b"xyz"), 1.0);
        let v = normalized_levenshtein(b"abcd", b"abxy");
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn banded_matches_exact_within_band() {
        let a = b"the quick brown fox jumps over the lazy dog";
        let b = b"the quick brown cat jumps over a lazy dog!";
        let exact = levenshtein(a, b);
        assert_eq!(levenshtein_banded(a, b, exact), Some(exact));
        assert_eq!(levenshtein_banded(a, b, exact + 5), Some(exact));
        assert_eq!(levenshtein_banded(a, b, exact - 1), None);
    }

    #[test]
    fn banded_empty_cases() {
        assert_eq!(levenshtein_banded(b"", b"", 0), Some(0));
        assert_eq!(levenshtein_banded(b"abc", b"", 3), Some(3));
        assert_eq!(levenshtein_banded(b"abc", b"", 2), None);
    }

    #[test]
    fn banded_length_gap_exceeds_band() {
        assert_eq!(levenshtein_banded(b"aaaaaaaa", b"a", 3), None);
    }

    #[test]
    fn banded_agrees_on_random_strings() {
        // Deterministic pseudo-random strings via a simple LCG.
        let mut x: u64 = 12345;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8 % 4 + b'a'
        };
        for _ in 0..50 {
            let a: Vec<u8> = (0..40).map(|_| next()).collect();
            let b: Vec<u8> = (0..42).map(|_| next()).collect();
            let exact = levenshtein(&a, &b);
            let banded = levenshtein_banded(&a, &b, 60).unwrap();
            assert_eq!(banded, exact);
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let a = b"timernetread";
        let b = b"netreadtimer";
        let c = b"poolddonetimer";
        let ab = levenshtein(a, b);
        let bc = levenshtein(b, c);
        let ac = levenshtein(a, c);
        assert!(ac <= ab + bc);
    }
}
