//! Human-oriented schedule diffing.
//!
//! When a replayed or re-seeded run does not behave like the original, the
//! first question is *where the schedules diverged*. [`schedule_diff`]
//! locates the first divergence between two type schedules and renders a
//! context window around it.

use nodefz_rt::TypeSchedule;

/// The relationship between two schedules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleDiff {
    /// Byte-for-byte identical.
    Identical,
    /// One is a strict prefix of the other.
    Prefix {
        /// Length of the shared prefix (= length of the shorter schedule).
        shared: usize,
    },
    /// The schedules diverge at an interior position.
    DivergesAt {
        /// Index of the first differing callback.
        index: usize,
        /// The callback code in the first schedule.
        left: u8,
        /// The callback code in the second schedule.
        right: u8,
    },
}

/// Compares two schedules.
pub fn schedule_diff(a: &TypeSchedule, b: &TypeSchedule) -> ScheduleDiff {
    let (ca, cb) = (a.codes(), b.codes());
    for (i, (&x, &y)) in ca.iter().zip(cb.iter()).enumerate() {
        if x != y {
            return ScheduleDiff::DivergesAt {
                index: i,
                left: x,
                right: y,
            };
        }
    }
    if ca.len() == cb.len() {
        ScheduleDiff::Identical
    } else {
        ScheduleDiff::Prefix {
            shared: ca.len().min(cb.len()),
        }
    }
}

/// Renders a context window around the divergence point, with a caret
/// marking the first differing callback.
///
/// # Examples
///
/// ```
/// use nodefz_rt::{CbKind, TypeSchedule};
/// use nodefz_trace::render_divergence;
///
/// let mut a = TypeSchedule::new();
/// let mut b = TypeSchedule::new();
/// for k in [CbKind::Timer, CbKind::NetRead, CbKind::Close] {
///     a.push(k);
/// }
/// for k in [CbKind::Timer, CbKind::Close, CbKind::NetRead] {
///     b.push(k);
/// }
/// let text = render_divergence(&a, &b, 4);
/// assert!(text.contains('^'));
/// ```
pub fn render_divergence(a: &TypeSchedule, b: &TypeSchedule, context: usize) -> String {
    let window = |codes: &[u8], at: usize| -> String {
        let start = at.saturating_sub(context);
        let end = (at + context + 1).min(codes.len());
        let mut out = String::new();
        if start > 0 {
            out.push('…');
        }
        out.extend(codes[start..end].iter().map(|&b| b as char));
        if end < codes.len() {
            out.push('…');
        }
        out
    };
    match schedule_diff(a, b) {
        ScheduleDiff::Identical => format!("identical ({} callbacks)", a.len()),
        ScheduleDiff::Prefix { shared } => format!(
            "one schedule extends the other after {shared} shared callbacks\n  a: {}\n  b: {}",
            window(a.codes(), shared),
            window(b.codes(), shared),
        ),
        ScheduleDiff::DivergesAt { index, .. } => {
            let caret_pos = index.min(context) + usize::from(index > context);
            format!(
                "diverges at callback {index}\n  a: {}\n  b: {}\n     {}^",
                window(a.codes(), index),
                window(b.codes(), index),
                " ".repeat(caret_pos),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::CbKind;

    fn sched(kinds: &[CbKind]) -> TypeSchedule {
        let mut s = TypeSchedule::new();
        for &k in kinds {
            s.push(k);
        }
        s
    }

    #[test]
    fn identical_schedules() {
        let a = sched(&[CbKind::Timer, CbKind::Close]);
        assert_eq!(schedule_diff(&a, &a.clone()), ScheduleDiff::Identical);
        assert!(render_divergence(&a, &a.clone(), 3).contains("identical"));
    }

    #[test]
    fn prefix_relationship() {
        let a = sched(&[CbKind::Timer, CbKind::Close]);
        let b = sched(&[CbKind::Timer, CbKind::Close, CbKind::NetRead]);
        assert_eq!(schedule_diff(&a, &b), ScheduleDiff::Prefix { shared: 2 });
        assert_eq!(schedule_diff(&b, &a), ScheduleDiff::Prefix { shared: 2 });
    }

    #[test]
    fn interior_divergence() {
        let a = sched(&[CbKind::Timer, CbKind::NetRead, CbKind::Close]);
        let b = sched(&[CbKind::Timer, CbKind::Close, CbKind::NetRead]);
        assert_eq!(
            schedule_diff(&a, &b),
            ScheduleDiff::DivergesAt {
                index: 1,
                left: CbKind::NetRead.code(),
                right: CbKind::Close.code(),
            }
        );
    }

    #[test]
    fn empty_vs_nonempty() {
        let empty = TypeSchedule::new();
        let some = sched(&[CbKind::Timer]);
        assert_eq!(
            schedule_diff(&empty, &empty.clone()),
            ScheduleDiff::Identical
        );
        assert_eq!(
            schedule_diff(&empty, &some),
            ScheduleDiff::Prefix { shared: 0 }
        );
    }

    #[test]
    fn render_marks_the_divergence() {
        let a = sched(&[CbKind::Timer; 10]);
        let mut kinds = [CbKind::Timer; 10];
        kinds[6] = CbKind::Close;
        let b = sched(&kinds);
        let text = render_divergence(&a, &b, 2);
        assert!(text.contains("diverges at callback 6"), "{text}");
        assert!(text.contains('…'), "long schedules are elided: {text}");
        assert!(text.contains('^'));
    }
}
