//! String interning for the campaign hot path.
//!
//! Signature work — normalizing an oracle's evidence string, hashing it,
//! comparing it against every known bug — is pure string traffic, and a
//! long campaign does it once per manifestation. [`SiteInterner`] collapses
//! that to integer work: each distinct string is stored once and handed
//! back as a dense [`SiteId`], so the deduplicator can key its table on a
//! pair of `u32`s and only materialize strings when a report is written.
//!
//! Interning is append-only: an id, once handed out, resolves to the same
//! string for the interner's whole lifetime.

use std::collections::HashMap;

use crate::signature::{normalize_site_into, BugSignature};

/// A dense handle to an interned string (see [`SiteInterner`]).
///
/// Ids are only meaningful relative to the interner that produced them;
/// they are *not* stable across processes and never persisted — codecs
/// materialize the string form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

/// An append-only string table handing out dense [`SiteId`]s.
///
/// # Examples
///
/// ```
/// use nodefz_trace::SiteInterner;
///
/// let mut t = SiteInterner::new();
/// let a = t.intern("lost # of # jobs");
/// let b = t.intern("lost # of # jobs");
/// assert_eq!(a, b);
/// assert_eq!(t.resolve(a), "lost # of # jobs");
/// ```
#[derive(Clone, Debug, Default)]
pub struct SiteInterner {
    ids: HashMap<String, SiteId>,
    names: Vec<String>,
    /// Normalization scratch, reused across [`intern_site`] calls so a
    /// cache hit performs zero allocations.
    ///
    /// [`intern_site`]: SiteInterner::intern_site
    scratch: String,
}

impl SiteInterner {
    /// Creates an empty interner.
    pub fn new() -> SiteInterner {
        SiteInterner::default()
    }

    /// Interns `s` exactly as given; returns its id.
    ///
    /// The first call for a given string copies it; every later call is a
    /// hash lookup with no allocation.
    pub fn intern(&mut self, s: &str) -> SiteId {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        self.insert_new(s.to_string())
    }

    /// Normalizes a raw failure-site string (see
    /// [`normalize_site`](crate::normalize_site)) and interns the result.
    ///
    /// Normalization writes into an internal scratch buffer, so when the
    /// normalized form is already interned this performs no allocation.
    pub fn intern_site(&mut self, raw: &str) -> SiteId {
        let mut scratch = std::mem::take(&mut self.scratch);
        normalize_site_into(raw, &mut scratch);
        let id = match self.ids.get(scratch.as_str()) {
            Some(&id) => id,
            None => self.insert_new(scratch.clone()),
        };
        self.scratch = scratch;
        id
    }

    fn insert_new(&mut self, owned: String) -> SiteId {
        let id = SiteId(u32::try_from(self.names.len()).expect("interner overflow"));
        self.ids.insert(owned.clone(), id);
        self.names.push(owned);
        id
    }

    /// The string an id resolves to.
    ///
    /// # Panics
    ///
    /// Panics if `id` was produced by a different interner (out of range).
    pub fn resolve(&self, id: SiteId) -> &str {
        &self.names[id.0 as usize]
    }

    /// The id `s` already interned to, if any. Never allocates.
    pub fn lookup(&self, s: &str) -> Option<SiteId> {
        self.ids.get(s).copied()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// The id-based form of a [`BugSignature`]: two table handles and the kind
/// fingerprint, `Copy` and integer-hashable — what a deduplicator keys its
/// table on instead of owned strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SigKey {
    /// Interned application abbreviation.
    pub app: SiteId,
    /// Interned normalized failure site.
    pub site: SiteId,
    /// Callback-kind fingerprint (already an integer).
    pub kinds: u32,
}

impl SigKey {
    /// Interns a signature's string fields (already normalized) into `t`.
    ///
    /// After the first manifestation of a bug, later calls for equal
    /// signatures are pure lookups — no allocation.
    pub fn of(sig: &BugSignature, t: &mut SiteInterner) -> SigKey {
        SigKey {
            app: t.intern(&sig.app),
            site: t.intern(&sig.site),
            kinds: sig.kinds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize_site;

    #[test]
    fn same_string_same_id() {
        let mut t = SiteInterner::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.intern("beta"), b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = SiteInterner::new();
        let id = t.intern("lost # of # jobs");
        assert_eq!(t.resolve(id), "lost # of # jobs");
        assert_eq!(t.lookup("lost # of # jobs"), Some(id));
        assert_eq!(t.lookup("never seen"), None);
    }

    #[test]
    fn intern_site_normalizes_first() {
        let mut t = SiteInterner::new();
        let a = t.intern_site("Lost 3 of 12 jobs");
        let b = t.intern_site("lost 9 of 12   jobs");
        assert_eq!(a, b, "run-specific detail must collapse to one id");
        assert_eq!(t.resolve(a), normalize_site("Lost 3 of 12 jobs"));
        // The normalized form and the raw exact form are distinct entries.
        let raw = t.intern("Lost 3 of 12 jobs");
        assert_ne!(raw, a);
    }

    #[test]
    fn sig_keys_mirror_signature_equality() {
        let mut t = SiteInterner::new();
        let a = BugSignature {
            app: "KUE".into(),
            site: "lost # of # jobs".into(),
            kinds: 3,
        };
        let same = a.clone();
        let other_app = BugSignature {
            app: "MKD".into(),
            ..a.clone()
        };
        let other_kinds = BugSignature {
            kinds: 7,
            ..a.clone()
        };
        assert_eq!(SigKey::of(&a, &mut t), SigKey::of(&same, &mut t));
        assert_ne!(SigKey::of(&a, &mut t), SigKey::of(&other_app, &mut t));
        assert_ne!(SigKey::of(&a, &mut t), SigKey::of(&other_kinds, &mut t));
        // The key resolves back to the signature's strings.
        let key = SigKey::of(&a, &mut t);
        assert_eq!(t.resolve(key.app), "KUE");
        assert_eq!(t.resolve(key.site), "lost # of # jobs");
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut t = SiteInterner::new();
        let ids: Vec<SiteId> = (0..100).map(|i| t.intern(&format!("site-{i}"))).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.0 as usize, i);
            assert_eq!(t.resolve(*id), format!("site-{i}"));
        }
        assert_eq!(t.len(), 100);
        assert!(!t.is_empty());
        assert!(SiteInterner::new().is_empty());
    }
}
