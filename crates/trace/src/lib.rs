//! # nodefz-trace — schedule analysis for Node.fz experiments
//!
//! Tools for quantifying how much of the schedule space a set of runs
//! explored (§5.3 of the paper): exact and banded Levenshtein distances over
//! recorded [`TypeSchedule`]s, the paper's mean-pairwise-normalized-distance
//! metric (Figure 7), and auxiliary diversity summaries.
//!
//! [`TypeSchedule`]: nodefz_rt::TypeSchedule

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod intern;
mod levenshtein;
mod signature;
mod sigset;
mod stats;

pub use diff::{render_divergence, schedule_diff, ScheduleDiff};
pub use intern::{SigKey, SiteId, SiteInterner};
pub use levenshtein::{levenshtein, levenshtein_banded, normalized_levenshtein};
pub use signature::{kind_fingerprint, normalize_site, normalize_site_into, BugSignature};
pub use sigset::SigSet;
pub use stats::{kind_histogram, pairwise_normalized_ld, DiversitySummary, PAPER_TRUNCATION};
