//! Property tests for the `nodefz-trace v1` text codec: encode/decode must
//! round-trip any trace built from any mix of [`Decision`] variants.

use nodefz_check::{forall, Gen};

use nodefz::{decode_trace, encode_trace, Decision, DecisionTrace};
use nodefz_rt::{PoolMode, VDur};

/// An arbitrary decision covering every variant, including degenerate
/// payloads (empty shuffles, zero delays, huge indices).
fn gen_decision(g: &mut Gen) -> Decision {
    match g.below(5) {
        0 => Decision::Timer(if g.bool() { None } else { Some(g.u64()) }),
        1 => {
            // A true permutation of a random length, Fisher-Yates.
            let len = g.range_usize(0, 9);
            let mut perm: Vec<u32> = (0..len as u32).collect();
            for i in (1..len).rev() {
                perm.swap(i, g.below(i as u64 + 1) as usize);
            }
            Decision::Shuffle(perm.into())
        }
        2 => Decision::DeferReady(g.bool()),
        3 => Decision::DeferClose(g.bool()),
        _ => Decision::PickTask(g.u64() as u32),
    }
}

fn gen_trace(g: &mut Gen) -> DecisionTrace {
    DecisionTrace {
        pool_mode: if g.bool() {
            PoolMode::Concurrent {
                workers: g.range_usize(1, 64),
            }
        } else {
            PoolMode::Serialized {
                lookahead: if g.bool() {
                    usize::MAX
                } else {
                    g.range_usize(0, 1000)
                },
                max_delay: VDur::nanos(g.u64()),
            }
        },
        demux_done: g.bool(),
        decisions: g.vec_with(0, 200, gen_decision),
    }
}

#[test]
fn encode_decode_roundtrips_every_variant_mix() {
    forall("encode_decode_roundtrips_every_variant_mix", 192, |g| {
        let trace = gen_trace(g);
        let text = encode_trace(&trace);
        let decoded = decode_trace(&text).expect("self-encoded traces decode");
        assert_eq!(decoded, trace);
    });
}

#[test]
fn encoding_is_line_oriented_and_terminated() {
    forall("encoding_is_line_oriented_and_terminated", 64, |g| {
        let trace = gen_trace(g);
        let text = encode_trace(&trace);
        assert!(text.starts_with("nodefz-trace v1\n"));
        assert!(text.ends_with("end\n"));
        // Header (3 lines) + one line per decision + terminator.
        assert_eq!(text.lines().count(), 4 + trace.decisions.len());
    });
}

#[test]
fn decoding_survives_reformatting() {
    // Comments, blank lines and indentation — the edits a human makes to a
    // persisted repro — must not change the decoded trace.
    forall("decoding_survives_reformatting", 64, |g| {
        let trace = gen_trace(g);
        let mut reformatted = String::from("# hand-annotated\n\n");
        for line in encode_trace(&trace).lines() {
            reformatted.push_str("  ");
            reformatted.push_str(line);
            reformatted.push_str("\n\n# note\n");
        }
        assert_eq!(decode_trace(&reformatted).unwrap(), trace);
    });
}

#[test]
fn decoder_never_panics_on_garbage() {
    forall("decoder_never_panics_on_garbage", 128, |g| {
        let bytes = g.bytes(0, 200);
        let text = String::from_utf8_lossy(&bytes);
        let _ = decode_trace(&text);
        // Mutated valid documents must decode or error, never panic.
        let mut doc = encode_trace(&gen_trace(g)).into_bytes();
        if !doc.is_empty() {
            let at = g.below(doc.len() as u64) as usize;
            doc[at] = g.byte();
        }
        let _ = decode_trace(&String::from_utf8_lossy(&doc));
    });
}
