//! Property-based legality tests for the fuzz scheduler (§4.4): random
//! correct programs, random parameters, random seeds — nothing may be
//! lost, duplicated, run early, or made nondeterministic.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use nodefz::{FuzzParams, FuzzScheduler};
use nodefz_rt::{EventLoop, LoopConfig, Termination, VDur, VTime};

/// Arbitrary-but-legal fuzz parameters.
fn params_strategy() -> impl Strategy<Value = FuzzParams> {
    (
        0.0f64..60.0,
        0.0f64..60.0,
        0.0f64..60.0,
        prop::option::of(1usize..8),
        prop::option::of(0usize..8),
        0u64..2_000,
    )
        .prop_map(|(epoll, timer, close, wp_dof, epoll_dof, delay_us)| {
            let mut p = FuzzParams::standard();
            p.epoll_defer_pct = epoll;
            p.timer_defer_pct = timer;
            p.close_defer_pct = close;
            p.wp_dof = wp_dof;
            p.epoll_dof = epoll_dof;
            p.timer_defer_delay = VDur::micros(delay_us);
            p
        })
}

#[derive(Clone, Debug)]
struct Program {
    timers_us: Vec<u64>,
    task_costs_us: Vec<u64>,
    immediates: usize,
}

fn program_strategy() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(1u64..20_000, 0..10),
        prop::collection::vec(1u64..5_000, 0..10),
        0usize..5,
    )
        .prop_map(|(timers_us, task_costs_us, immediates)| Program {
            timers_us,
            task_costs_us,
            immediates,
        })
}

struct Observed {
    timers_fired: Vec<(usize, VTime)>,
    tasks_done: Vec<usize>,
    immediates_run: usize,
}

fn run_program(
    program: &Program,
    params: FuzzParams,
    env_seed: u64,
    sched_seed: u64,
) -> (nodefz_rt::RunReport, Observed) {
    let sched = FuzzScheduler::new(params, sched_seed);
    let mut el = EventLoop::with_scheduler(LoopConfig::seeded(env_seed), Box::new(sched));
    let timers_fired = Rc::new(RefCell::new(Vec::new()));
    let tasks_done = Rc::new(RefCell::new(Vec::new()));
    let immediates_run = Rc::new(RefCell::new(0usize));
    let p = program.clone();
    let tf = timers_fired.clone();
    let td = tasks_done.clone();
    let ir = immediates_run.clone();
    el.enter(move |cx| {
        for (idx, &us) in p.timers_us.iter().enumerate() {
            let tf = tf.clone();
            cx.set_timeout(VDur::micros(us), move |cx| {
                tf.borrow_mut().push((idx, cx.now()));
            });
        }
        for (idx, &us) in p.task_costs_us.iter().enumerate() {
            let td = td.clone();
            cx.submit_work(
                VDur::micros(us),
                move |_| idx,
                move |_, i| {
                    td.borrow_mut().push(i);
                },
            )
            .unwrap();
        }
        for _ in 0..p.immediates {
            let ir = ir.clone();
            cx.set_immediate(move |_| *ir.borrow_mut() += 1);
        }
    });
    let report = el.run();
    let observed = Observed {
        timers_fired: timers_fired.borrow().clone(),
        tasks_done: tasks_done.borrow().clone(),
        immediates_run: *immediates_run.borrow(),
    };
    (report, observed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn nothing_lost_duplicated_or_early(
        program in program_strategy(),
        params in params_strategy(),
        env_seed: u64,
        sched_seed: u64,
    ) {
        let (report, observed) = run_program(&program, params, env_seed, sched_seed);
        prop_assert_eq!(report.termination, Termination::Quiescent);
        prop_assert!(!report.crashed());

        // Timers: exactly once each, never before their deadline.
        prop_assert_eq!(observed.timers_fired.len(), program.timers_us.len());
        let mut seen = vec![false; program.timers_us.len()];
        for &(idx, at) in &observed.timers_fired {
            prop_assert!(!seen[idx], "timer {idx} fired twice");
            seen[idx] = true;
            let deadline = VTime::ZERO + VDur::micros(program.timers_us[idx]);
            prop_assert!(at >= deadline, "timer {idx} fired early: {at} < {deadline}");
        }

        // Timer dispatch respects the {timeout, registration} order even
        // under deferral (the short-circuit guarantee, §4.3.4).
        for pair in observed.timers_fired.windows(2) {
            let (a, b) = (pair[0].0, pair[1].0);
            let (da, db) = (program.timers_us[a], program.timers_us[b]);
            prop_assert!(
                da < db || (da == db && a < b),
                "timer order violated: {a} (deadline {da}) before {b} (deadline {db})"
            );
        }

        // Pool: every task completes exactly once.
        let mut got = observed.tasks_done.clone();
        got.sort_unstable();
        prop_assert_eq!(got, (0..program.task_costs_us.len()).collect::<Vec<_>>());
        prop_assert_eq!(report.pool.completed, program.task_costs_us.len() as u64);

        // Immediates all ran.
        prop_assert_eq!(observed.immediates_run, program.immediates);
    }

    #[test]
    fn fuzzed_runs_replay_bit_for_bit(
        program in program_strategy(),
        params in params_strategy(),
        env_seed: u64,
        sched_seed: u64,
    ) {
        let (a, _) = run_program(&program, params.clone(), env_seed, sched_seed);
        let (b, _) = run_program(&program, params, env_seed, sched_seed);
        prop_assert_eq!(a.schedule, b.schedule);
        prop_assert_eq!(a.end_time, b.end_time);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.dispatched, b.dispatched);
    }

    #[test]
    fn scheduler_seed_changes_only_the_schedule_not_the_results(
        program in program_strategy(),
        env_seed: u64,
        s1: u64,
        s2: u64,
    ) {
        let params = FuzzParams::aggressive();
        let (ra, oa) = run_program(&program, params.clone(), env_seed, s1);
        let (rb, ob) = run_program(&program, params, env_seed, s2);
        // Same completed work either way.
        prop_assert_eq!(ra.pool.completed, rb.pool.completed);
        prop_assert_eq!(oa.timers_fired.len(), ob.timers_fired.len());
        prop_assert_eq!(oa.immediates_run, ob.immediates_run);
    }
}
