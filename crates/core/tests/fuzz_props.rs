//! Property-based legality tests for the fuzz scheduler (§4.4): random
//! correct programs, random parameters, random seeds — nothing may be
//! lost, duplicated, run early, or made nondeterministic.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_check::{forall, Gen};

use nodefz::{FuzzParams, FuzzScheduler};
use nodefz_rt::{EventLoop, LoopConfig, Termination, VDur, VTime};

/// Arbitrary-but-legal fuzz parameters.
fn gen_params(g: &mut Gen) -> FuzzParams {
    let mut p = FuzzParams::standard();
    p.epoll_defer_pct = g.f64_range(0.0, 60.0);
    p.timer_defer_pct = g.f64_range(0.0, 60.0);
    p.close_defer_pct = g.f64_range(0.0, 60.0);
    p.wp_dof = if g.bool() {
        Some(g.range_usize(1, 8))
    } else {
        None
    };
    p.epoll_dof = if g.bool() {
        Some(g.range_usize(0, 8))
    } else {
        None
    };
    p.timer_defer_delay = VDur::micros(g.below(2_000));
    p
}

#[derive(Clone, Debug)]
struct Program {
    timers_us: Vec<u64>,
    task_costs_us: Vec<u64>,
    immediates: usize,
}

fn gen_program(g: &mut Gen) -> Program {
    Program {
        timers_us: g.vec_with(0, 10, |g| g.range(1, 20_000)),
        task_costs_us: g.vec_with(0, 10, |g| g.range(1, 5_000)),
        immediates: g.range_usize(0, 5),
    }
}

struct Observed {
    timers_fired: Vec<(usize, VTime)>,
    tasks_done: Vec<usize>,
    immediates_run: usize,
}

fn run_program(
    program: &Program,
    params: FuzzParams,
    env_seed: u64,
    sched_seed: u64,
) -> (nodefz_rt::RunReport, Observed) {
    let sched = FuzzScheduler::new(params, sched_seed);
    let mut el = EventLoop::with_scheduler(LoopConfig::seeded(env_seed), Box::new(sched));
    let timers_fired = Rc::new(RefCell::new(Vec::new()));
    let tasks_done = Rc::new(RefCell::new(Vec::new()));
    let immediates_run = Rc::new(RefCell::new(0usize));
    let p = program.clone();
    let tf = timers_fired.clone();
    let td = tasks_done.clone();
    let ir = immediates_run.clone();
    el.enter(move |cx| {
        for (idx, &us) in p.timers_us.iter().enumerate() {
            let tf = tf.clone();
            cx.set_timeout(VDur::micros(us), move |cx| {
                tf.borrow_mut().push((idx, cx.now()));
            });
        }
        for (idx, &us) in p.task_costs_us.iter().enumerate() {
            let td = td.clone();
            cx.submit_work(
                VDur::micros(us),
                move |_| idx,
                move |_, i| {
                    td.borrow_mut().push(i);
                },
            )
            .unwrap();
        }
        for _ in 0..p.immediates {
            let ir = ir.clone();
            cx.set_immediate(move |_| *ir.borrow_mut() += 1);
        }
    });
    let report = el.run();
    let observed = Observed {
        timers_fired: timers_fired.borrow().clone(),
        tasks_done: tasks_done.borrow().clone(),
        immediates_run: *immediates_run.borrow(),
    };
    (report, observed)
}

#[test]
fn nothing_lost_duplicated_or_early() {
    forall("nothing_lost_duplicated_or_early", 96, |g| {
        let program = gen_program(g);
        let params = gen_params(g);
        let env_seed = g.u64();
        let sched_seed = g.u64();
        let (report, observed) = run_program(&program, params, env_seed, sched_seed);
        assert_eq!(report.termination, Termination::Quiescent);
        assert!(!report.crashed());

        // Timers: exactly once each, never before their deadline.
        assert_eq!(observed.timers_fired.len(), program.timers_us.len());
        let mut seen = vec![false; program.timers_us.len()];
        for &(idx, at) in &observed.timers_fired {
            assert!(!seen[idx], "timer {idx} fired twice");
            seen[idx] = true;
            let deadline = VTime::ZERO + VDur::micros(program.timers_us[idx]);
            assert!(at >= deadline, "timer {idx} fired early: {at} < {deadline}");
        }

        // Timer dispatch respects the {timeout, registration} order even
        // under deferral (the short-circuit guarantee, §4.3.4).
        for pair in observed.timers_fired.windows(2) {
            let (a, b) = (pair[0].0, pair[1].0);
            let (da, db) = (program.timers_us[a], program.timers_us[b]);
            assert!(
                da < db || (da == db && a < b),
                "timer order violated: {a} (deadline {da}) before {b} (deadline {db})"
            );
        }

        // Pool: every task completes exactly once.
        let mut got = observed.tasks_done.clone();
        got.sort_unstable();
        assert_eq!(got, (0..program.task_costs_us.len()).collect::<Vec<_>>());
        assert_eq!(report.pool.completed, program.task_costs_us.len() as u64);

        // Immediates all ran.
        assert_eq!(observed.immediates_run, program.immediates);
    });
}

#[test]
fn fuzzed_runs_replay_bit_for_bit() {
    forall("fuzzed_runs_replay_bit_for_bit", 48, |g| {
        let program = gen_program(g);
        let params = gen_params(g);
        let env_seed = g.u64();
        let sched_seed = g.u64();
        let (a, _) = run_program(&program, params.clone(), env_seed, sched_seed);
        let (b, _) = run_program(&program, params, env_seed, sched_seed);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.dispatched, b.dispatched);
    });
}

#[test]
fn scheduler_seed_changes_only_the_schedule_not_the_results() {
    forall(
        "scheduler_seed_changes_only_the_schedule_not_the_results",
        48,
        |g| {
            let program = gen_program(g);
            let env_seed = g.u64();
            let s1 = g.u64();
            let s2 = g.u64();
            let params = FuzzParams::aggressive();
            let (ra, oa) = run_program(&program, params.clone(), env_seed, s1);
            let (rb, ob) = run_program(&program, params, env_seed, s2);
            // Same completed work either way.
            assert_eq!(ra.pool.completed, rb.pool.completed);
            assert_eq!(oa.timers_fired.len(), ob.timers_fired.len());
            assert_eq!(oa.immediates_run, ob.immediates_run);
        },
    );
}
