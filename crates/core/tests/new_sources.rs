//! Fuzz-legality tests for the newer nondeterminism sources (§4.2.1
//! "Misc."): signals, child processes and fs watching must survive
//! aggressive fuzzing without losing or duplicating events.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz::{FuzzParams, Mode};
use nodefz_fs::SimFs;
use nodefz_rt::{ChildSpec, LoopConfig, Signal, Termination, VDur};

fn modes() -> Vec<Mode> {
    vec![
        Mode::Vanilla,
        Mode::Fuzz,
        Mode::Custom(FuzzParams::aggressive()),
    ]
}

#[test]
fn signals_are_delivered_exactly_once_per_raise_under_fuzz() {
    for mode in modes() {
        for seed in 0..8 {
            let hits = Rc::new(RefCell::new(0u32));
            let mut el = mode.build_loop(LoopConfig::seeded(seed), seed ^ 21);
            let h = hits.clone();
            el.enter(move |cx| {
                cx.on_signal(Signal::Usr1, move |_, _| *h.borrow_mut() += 1)
                    .unwrap();
                for i in 1..5u64 {
                    cx.raise_signal_after(VDur::millis(i), Signal::Usr1);
                }
                cx.set_timeout(VDur::millis(12), |_| {});
            });
            let report = el.run();
            assert_eq!(*hits.borrow(), 4, "{} seed {seed}", mode.label());
            assert!(!report.crashed());
        }
    }
}

#[test]
fn children_always_exit_exactly_once_under_fuzz() {
    for mode in modes() {
        for seed in 0..8 {
            let exits = Rc::new(RefCell::new(Vec::new()));
            let outputs = Rc::new(RefCell::new(0u32));
            let mut el = mode.build_loop(LoopConfig::seeded(seed), seed ^ 5);
            let e = exits.clone();
            let o = outputs.clone();
            el.enter(move |cx| {
                for i in 0..4u64 {
                    let spec = ChildSpec::sleeper(VDur::millis(2 + i))
                        .with_output(VDur::millis(1), b"chunk".to_vec())
                        .with_exit_code(i as i32);
                    let e = e.clone();
                    let o = o.clone();
                    cx.spawn_child(
                        spec,
                        move |_, _| *o.borrow_mut() += 1,
                        move |_, code| e.borrow_mut().push(code),
                    )
                    .unwrap();
                }
            });
            let report = el.run();
            assert_eq!(report.termination, Termination::Quiescent);
            let mut codes = exits.borrow().clone();
            codes.sort_unstable();
            assert_eq!(codes, vec![0, 1, 2, 3], "{} seed {seed}", mode.label());
            assert_eq!(*outputs.borrow(), 4);
        }
    }
}

#[test]
fn fs_watch_sees_every_change_under_fuzz() {
    for mode in modes() {
        for seed in 0..8 {
            let events = Rc::new(RefCell::new(0u32));
            let mut el = mode.build_loop(LoopConfig::seeded(seed), seed ^ 9);
            let fs = SimFs::new();
            let f = fs.clone();
            let e = events.clone();
            el.enter(move |cx| {
                let id = f
                    .watch(cx, "", move |_cx, _event| *e.borrow_mut() += 1)
                    .unwrap();
                // Five changes, issued in one sequential chain.
                let f2 = f.clone();
                f.write_file(cx, "a", b"1".to_vec(), move |cx, r| {
                    r.unwrap();
                    let f3 = f2.clone();
                    f2.write_file(cx, "a", b"2".to_vec(), move |cx, r| {
                        r.unwrap();
                        let f4 = f3.clone();
                        f3.mkdir(cx, "d", move |cx, r| {
                            r.unwrap();
                            let f5 = f4.clone();
                            f4.unlink(cx, "a", move |cx, r| {
                                r.unwrap();
                                f5.rmdir(cx, "d", |_cx, r| r.unwrap());
                            });
                        });
                    });
                });
                let f6 = f.clone();
                cx.set_timeout(VDur::millis(25), move |cx| {
                    f6.unwatch(cx, id).unwrap();
                });
            });
            let report = el.run();
            assert_eq!(report.termination, Termination::Quiescent);
            assert_eq!(*events.borrow(), 5, "{} seed {seed}", mode.label());
        }
    }
}

#[test]
fn signal_delivery_order_can_differ_under_fuzz() {
    // Two different signals raised close together: the fuzz scheduler can
    // reorder their delivery — that is the point.
    let order_of = |mode: Mode, seed: u64| {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut el = mode.build_loop(LoopConfig::seeded(seed), seed);
        let o = order.clone();
        el.enter(move |cx| {
            let o1 = o.clone();
            cx.on_signal(Signal::Usr1, move |_, _| o1.borrow_mut().push(1))
                .unwrap();
            let o2 = o.clone();
            cx.on_signal(Signal::Usr2, move |_, _| o2.borrow_mut().push(2))
                .unwrap();
            cx.raise_signal_after(VDur::micros(1_000), Signal::Usr1);
            cx.raise_signal_after(VDur::micros(1_010), Signal::Usr2);
            // A busy callback spanning both arrivals puts the two
            // deliveries into one poll window, where the shuffle applies.
            cx.set_timeout(VDur::micros(950), |cx| cx.busy(VDur::micros(250)));
            cx.set_timeout(VDur::millis(8), |_| {});
        });
        el.run();
        let v = order.borrow().clone();
        v
    };
    // Vanilla is deterministic per seed.
    assert_eq!(order_of(Mode::Vanilla, 1), vec![1, 2]);
    // Some fuzz seed flips the order.
    let flipped = (0..64).any(|seed| order_of(Mode::Fuzz, seed) == vec![2, 1]);
    assert!(flipped, "fuzzing should reorder adjacent signal deliveries");
}
