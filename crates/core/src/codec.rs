//! Self-contained text encoding for [`DecisionTrace`].
//!
//! A corpus of minimized repros must survive process restarts, tool
//! upgrades, and casual inspection in an editor, so traces are persisted as
//! a line-oriented plain-text format with an explicit version header —
//! hand-rolled encode/decode, no serialization dependency. The grammar:
//!
//! ```text
//! nodefz-trace v1
//! pool concurrent <workers>            # or: pool serialized <lookahead|inf> <max_delay_ns>
//! demux <0|1>
//! t run                                # Decision::Timer(None)
//! t defer <delay_ns>                   # Decision::Timer(Some(ns))
//! s [<i> <j> ...]                      # Decision::Shuffle(perm)
//! r <0|1>                              # Decision::DeferReady
//! c <0|1>                              # Decision::DeferClose
//! p <index>                            # Decision::PickTask
//! end
//! ```
//!
//! Blank lines and lines starting with `#` are ignored by the decoder, so
//! corpus files may carry human annotations.

use std::fmt;

use nodefz_rt::{PoolMode, VDur};

use crate::replay::{Decision, DecisionTrace, Perm};

/// Why a trace document failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// The document does not start with the `nodefz-trace v1` header.
    MissingHeader,
    /// The header names a version this build does not understand.
    UnsupportedVersion(String),
    /// The `pool …` line is missing or malformed.
    BadPool(String),
    /// The `demux …` line is missing or malformed.
    BadDemux(String),
    /// A decision line could not be parsed (1-based line number, content).
    BadDecision(usize, String),
    /// The document ended without the `end` terminator line.
    MissingEnd,
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDecodeError::MissingHeader => {
                write!(f, "missing 'nodefz-trace' header")
            }
            TraceDecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version '{v}' (expected v1)")
            }
            TraceDecodeError::BadPool(line) => write!(f, "bad pool line: '{line}'"),
            TraceDecodeError::BadDemux(line) => write!(f, "bad demux line: '{line}'"),
            TraceDecodeError::BadDecision(no, line) => {
                write!(f, "bad decision at line {no}: '{line}'")
            }
            TraceDecodeError::MissingEnd => write!(f, "missing 'end' terminator"),
        }
    }
}

impl std::error::Error for TraceDecodeError {}

/// Encodes a trace as the `nodefz-trace v1` text document.
pub fn encode_trace(trace: &DecisionTrace) -> String {
    let mut out = String::with_capacity(32 + trace.decisions.len() * 8);
    out.push_str("nodefz-trace v1\n");
    match trace.pool_mode {
        PoolMode::Concurrent { workers } => {
            out.push_str(&format!("pool concurrent {workers}\n"));
        }
        PoolMode::Serialized {
            lookahead,
            max_delay,
        } => {
            if lookahead == usize::MAX {
                out.push_str(&format!("pool serialized inf {}\n", max_delay.as_nanos()));
            } else {
                out.push_str(&format!(
                    "pool serialized {lookahead} {}\n",
                    max_delay.as_nanos()
                ));
            }
        }
    }
    out.push_str(&format!("demux {}\n", u8::from(trace.demux_done)));
    for d in &trace.decisions {
        match d {
            Decision::Timer(None) => out.push_str("t run\n"),
            Decision::Timer(Some(ns)) => out.push_str(&format!("t defer {ns}\n")),
            Decision::Shuffle(perm) => {
                out.push('s');
                for idx in perm {
                    out.push(' ');
                    out.push_str(&idx.to_string());
                }
                out.push('\n');
            }
            Decision::DeferReady(d) => out.push_str(&format!("r {}\n", u8::from(*d))),
            Decision::DeferClose(d) => out.push_str(&format!("c {}\n", u8::from(*d))),
            Decision::PickTask(i) => out.push_str(&format!("p {i}\n")),
        }
    }
    out.push_str("end\n");
    out
}

fn parse_bool(token: &str) -> Option<bool> {
    match token {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

/// Decodes a `nodefz-trace v1` text document.
///
/// # Errors
///
/// Returns a [`TraceDecodeError`] naming the first offending line.
pub fn decode_trace(text: &str) -> Result<DecisionTrace, TraceDecodeError> {
    // Meaningful lines with their 1-based line numbers.
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let header = lines.next().map(|(_, l)| l).unwrap_or("");
    match nodefz_obs::expect_header(header, "nodefz-trace v1") {
        Ok(()) => {}
        Err(nodefz_obs::SchemaError::Mismatch { found, .. }) => {
            return Err(TraceDecodeError::UnsupportedVersion(
                found.trim_start_matches("nodefz-trace").trim().to_string(),
            ));
        }
        Err(nodefz_obs::SchemaError::Missing { .. }) => {
            return Err(TraceDecodeError::MissingHeader)
        }
    }

    let (_, pool_line) = lines
        .next()
        .ok_or_else(|| TraceDecodeError::BadPool("<missing>".into()))?;
    let pool_err = || TraceDecodeError::BadPool(pool_line.to_string());
    let mut toks = pool_line.split_whitespace();
    if toks.next() != Some("pool") {
        return Err(pool_err());
    }
    let pool_mode = match toks.next() {
        Some("concurrent") => {
            let workers = toks
                .next()
                .and_then(|t| t.parse::<usize>().ok())
                .filter(|&w| w > 0)
                .ok_or_else(pool_err)?;
            PoolMode::Concurrent { workers }
        }
        Some("serialized") => {
            let lookahead = match toks.next() {
                Some("inf") => usize::MAX,
                Some(t) => t.parse::<usize>().map_err(|_| pool_err())?,
                None => return Err(pool_err()),
            };
            let max_delay = toks
                .next()
                .and_then(|t| t.parse::<u64>().ok())
                .map(VDur::nanos)
                .ok_or_else(pool_err)?;
            PoolMode::Serialized {
                lookahead,
                max_delay,
            }
        }
        _ => return Err(pool_err()),
    };
    if toks.next().is_some() {
        return Err(pool_err());
    }

    let (_, demux_line) = lines
        .next()
        .ok_or_else(|| TraceDecodeError::BadDemux("<missing>".into()))?;
    let demux_done = demux_line
        .strip_prefix("demux ")
        .and_then(parse_bool)
        .ok_or_else(|| TraceDecodeError::BadDemux(demux_line.to_string()))?;

    let mut decisions = Vec::new();
    let mut terminated = false;
    for (no, line) in lines {
        if line == "end" {
            terminated = true;
            break;
        }
        let bad = || TraceDecodeError::BadDecision(no, line.to_string());
        let mut toks = line.split_whitespace();
        let decision = match toks.next() {
            Some("t") => match (toks.next(), toks.next()) {
                (Some("run"), None) => Decision::Timer(None),
                (Some("defer"), Some(ns)) => {
                    Decision::Timer(Some(ns.parse::<u64>().map_err(|_| bad())?))
                }
                _ => return Err(bad()),
            },
            Some("s") => {
                let perm = toks
                    .by_ref()
                    .map(|t| t.parse::<u32>().map_err(|_| bad()))
                    .collect::<Result<Perm, _>>()?;
                Decision::Shuffle(perm)
            }
            Some("r") => Decision::DeferReady(toks.next().and_then(parse_bool).ok_or_else(bad)?),
            Some("c") => Decision::DeferClose(toks.next().and_then(parse_bool).ok_or_else(bad)?),
            Some("p") => Decision::PickTask(
                toks.next()
                    .and_then(|t| t.parse::<u32>().ok())
                    .ok_or_else(bad)?,
            ),
            _ => return Err(bad()),
        };
        // Trailing tokens after a fully-parsed decision are malformed,
        // except for `s`, whose parser consumes the whole line.
        if !matches!(decision, Decision::Shuffle(_)) && toks.next().is_some() {
            return Err(bad());
        }
        decisions.push(decision);
    }
    if !terminated {
        return Err(TraceDecodeError::MissingEnd);
    }

    Ok(DecisionTrace {
        pool_mode,
        demux_done,
        decisions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecisionTrace {
        DecisionTrace {
            pool_mode: PoolMode::Serialized {
                lookahead: usize::MAX,
                max_delay: VDur::micros(100),
            },
            demux_done: true,
            decisions: vec![
                Decision::Timer(None),
                Decision::Timer(Some(5_000_000)),
                Decision::Shuffle(vec![2, 0, 1].into()),
                Decision::Shuffle(Perm::new()),
                Decision::DeferReady(true),
                Decision::DeferClose(false),
                Decision::PickTask(3),
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample();
        let text = encode_trace(&trace);
        assert_eq!(decode_trace(&text).unwrap(), trace);
    }

    #[test]
    fn roundtrip_concurrent_pool() {
        let trace = DecisionTrace {
            pool_mode: PoolMode::Concurrent { workers: 4 },
            demux_done: false,
            decisions: vec![],
        };
        assert_eq!(decode_trace(&encode_trace(&trace)).unwrap(), trace);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a repro\n\nnodefz-trace v1\npool concurrent 2\n\n# header done\ndemux 0\nt run\n\nend\n";
        let trace = decode_trace(text).unwrap();
        assert_eq!(trace.decisions, vec![Decision::Timer(None)]);
    }

    #[test]
    fn missing_header_is_rejected() {
        assert_eq!(
            decode_trace("pool concurrent 4\ndemux 0\nend\n"),
            Err(TraceDecodeError::MissingHeader)
        );
    }

    #[test]
    fn future_version_is_rejected() {
        assert_eq!(
            decode_trace("nodefz-trace v9\npool concurrent 4\ndemux 0\nend\n"),
            Err(TraceDecodeError::UnsupportedVersion("v9".into()))
        );
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let text = "nodefz-trace v1\npool concurrent 4\ndemux 1\nt run\nq nonsense\nend\n";
        assert_eq!(
            decode_trace(text),
            Err(TraceDecodeError::BadDecision(5, "q nonsense".into()))
        );
    }

    #[test]
    fn truncated_document_is_rejected() {
        let mut text = encode_trace(&sample());
        text.truncate(text.len() - "end\n".len());
        assert_eq!(decode_trace(&text), Err(TraceDecodeError::MissingEnd));
    }

    #[test]
    fn bad_pool_and_demux_are_rejected() {
        assert!(matches!(
            decode_trace("nodefz-trace v1\npool weird 4\ndemux 0\nend\n"),
            Err(TraceDecodeError::BadPool(_))
        ));
        assert!(matches!(
            decode_trace("nodefz-trace v1\npool concurrent 0\ndemux 0\nend\n"),
            Err(TraceDecodeError::BadPool(_))
        ));
        assert!(matches!(
            decode_trace("nodefz-trace v1\npool concurrent 4\ndemux yes\nend\n"),
            Err(TraceDecodeError::BadDemux(_))
        ));
    }

    #[test]
    fn errors_render_a_description() {
        let err = TraceDecodeError::BadDecision(7, "x".into());
        assert!(err.to_string().contains("line 7"));
    }
}
