//! Prefix-forked fuzzing: resume a recorded decision prefix, then diverge
//! into fresh schedules the campaign has not seen.
//!
//! A campaign pruning HB-equivalent schedules (see `nodefz-hb`'s canonical
//! keys) learns, run by run, which *first divergent decision* after a
//! shared prefix leads to an already-explored equivalence class. The
//! [`ForkScheduler`] exploits that: it replays a recorded prefix verbatim
//! (so a snapshot-restored loop and the scheduler stay in lock-step), and
//! at the first fresh consultation — the *divergence point* — it redraws
//! from its inner [`FuzzScheduler`] up to [`ForkScheduler::RETRY_LIMIT`]
//! times until the drawn decision's [fingerprint](decision_fingerprint) is
//! not in the caller's [`AvoidSet`]. From then on it is a pure fuzz
//! suffix. Rejected draws are counted as *skipped schedules*: each one is
//! a run the campaign did not have to execute to know its class.
//!
//! This is the scheduler half of sleep sets (Godefroid): the avoid set
//! plays the sleep set's role of decisions whose exploration is already
//! covered, and the bounded retry keeps the scheduler total — when every
//! reachable decision is avoided, the last draw is accepted rather than
//! deadlocking the run.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;

use nodefz_rt::{PoolMode, ReadyEntry, Scheduler, TimerVerdict, VDur};

use crate::params::FuzzParams;
use crate::replay::{Decision, DecisionTrace, Perm};
use crate::scheduler::FuzzScheduler;

/// Mixes a 64-bit value (splitmix64 finalizer).
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Stable 64-bit fingerprint of a scheduling decision.
///
/// Two decisions fingerprint equal exactly when a [`RecordingScheduler`]
/// would record them equal, so fingerprints taken from recorded traces and
/// fingerprints computed online by a [`ForkScheduler`] index the same
/// space. The kind is mixed in, so `Timer(None)` and `DeferReady(false)`
/// do not collide structurally.
///
/// [`RecordingScheduler`]: crate::RecordingScheduler
pub fn decision_fingerprint(d: &Decision) -> u64 {
    match d {
        Decision::Timer(None) => mix(0x11),
        Decision::Timer(Some(ns)) => mix(0x12 ^ mix(*ns)),
        Decision::Shuffle(perm) => {
            let mut h = mix(0x21 ^ perm.len() as u64);
            for (slot, &src) in perm.iter().enumerate() {
                h = mix(h ^ (((slot as u64) << 32) | u64::from(src)));
            }
            h
        }
        Decision::DeferReady(b) => mix(0x31 ^ u64::from(*b)),
        Decision::DeferClose(b) => mix(0x41 ^ u64::from(*b)),
        Decision::PickTask(i) => mix(0x51 ^ u64::from(*i)),
    }
}

/// Fingerprints of first-divergence decisions whose schedules are already
/// covered (the sleep set of a forked exploration).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AvoidSet {
    fps: HashSet<u64>,
}

impl AvoidSet {
    /// Creates an empty set.
    pub fn new() -> AvoidSet {
        AvoidSet::default()
    }

    /// Adds a fingerprint; returns whether it was new.
    pub fn insert(&mut self, fp: u64) -> bool {
        self.fps.insert(fp)
    }

    /// Adds a decision's fingerprint; returns whether it was new.
    pub fn insert_decision(&mut self, d: &Decision) -> bool {
        self.insert(decision_fingerprint(d))
    }

    /// Whether the fingerprint is covered.
    pub fn contains(&self, fp: u64) -> bool {
        self.fps.contains(&fp)
    }

    /// Number of covered fingerprints.
    pub fn len(&self) -> usize {
        self.fps.len()
    }

    /// Whether nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.fps.is_empty()
    }
}

impl FromIterator<u64> for AvoidSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> AvoidSet {
        AvoidSet {
            fps: iter.into_iter().collect(),
        }
    }
}

impl Extend<u64> for AvoidSet {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.fps.extend(iter);
    }
}

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct ForkStatus {
    replayed: u64,
    skipped: u64,
    diverged: bool,
    exhausted: bool,
    divergence_fp: Option<u64>,
}

/// Shared view of a [`ForkScheduler`]'s counters, readable after the event
/// loop consumed the boxed scheduler.
#[derive(Clone, Default)]
pub struct ForkStatusHandle {
    inner: Rc<RefCell<ForkStatus>>,
}

impl ForkStatusHandle {
    /// Creates a fresh, unattached handle (all-zero until a scheduler
    /// built from it runs).
    pub fn fresh() -> ForkStatusHandle {
        ForkStatusHandle::default()
    }

    /// Prefix decisions replayed verbatim.
    pub fn replayed(&self) -> u64 {
        self.inner.borrow().replayed
    }

    /// Draws rejected at the divergence point — each one a schedule the
    /// campaign skipped without executing.
    pub fn skipped(&self) -> u64 {
        self.inner.borrow().skipped
    }

    /// Whether the run reached its divergence point (made any fresh
    /// decision past the prefix).
    pub fn diverged(&self) -> bool {
        self.inner.borrow().diverged
    }

    /// Whether the bounded retry gave up and accepted an avoided decision.
    pub fn retries_exhausted(&self) -> bool {
        self.inner.borrow().exhausted
    }

    /// Fingerprint of the decision actually taken at the divergence point,
    /// once the run got there. This is what a campaign's prefix trie
    /// records so the *next* fork from the same prefix can avoid it.
    pub fn divergence_fingerprint(&self) -> Option<u64> {
        self.inner.borrow().divergence_fp
    }

    fn reset(&self) {
        *self.inner.borrow_mut() = ForkStatus::default();
    }
}

impl PartialEq for ForkStatusHandle {
    /// Handles are equal when they share the same underlying counters.
    fn eq(&self, other: &ForkStatusHandle) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for ForkStatusHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.borrow();
        write!(
            f,
            "ForkStatusHandle(replayed {}, skipped {})",
            st.replayed, st.skipped
        )
    }
}

/// Everything a forked run needs, bundled for [`crate::Mode::Forked`].
#[derive(Clone, Debug, PartialEq)]
pub struct ForkSpec {
    /// Parameters of the fuzz suffix.
    pub params: FuzzParams,
    /// The decision prefix replayed verbatim.
    pub prefix: DecisionTrace,
    /// Fingerprints of first-divergence decisions already covered.
    pub avoid: Vec<u64>,
    /// Shared counters, readable after the run.
    pub status: ForkStatusHandle,
}

impl ForkSpec {
    /// A spec replaying `prefix` and then fuzzing with `params`, with
    /// nothing avoided yet.
    pub fn new(params: FuzzParams, prefix: DecisionTrace) -> ForkSpec {
        ForkSpec {
            params,
            prefix,
            avoid: Vec::new(),
            status: ForkStatusHandle::fresh(),
        }
    }
}

/// Replays a decision prefix, then fuzzes — steering its first fresh
/// decision away from an [`AvoidSet`] (see the module docs).
///
/// Must be used with the same program and environment seed that produced
/// the prefix; a consultation that does not match the recorded kind
/// abandons the rest of the prefix and falls through to the fuzz suffix
/// (the recorded schedule no longer applies, so fuzzing on is the graceful
/// degradation).
pub struct ForkScheduler {
    prefix: DecisionTrace,
    cursor: usize,
    inner: FuzzScheduler,
    avoid: AvoidSet,
    status: ForkStatusHandle,
    /// Scratch for re-drawing shuffles and applying recorded permutations.
    scratch: Vec<ReadyEntry>,
}

impl ForkScheduler {
    /// Redraws attempted at the divergence point before accepting an
    /// avoided decision. Bounded so a fully-covered decision space cannot
    /// deadlock the run. Each rejected redraw is a schedule class
    /// dispositioned without executing it, so the bound trades a few
    /// cheap PRNG draws for whole avoided runs.
    pub const RETRY_LIMIT: u32 = 16;

    /// Creates a forked scheduler plus its status handle.
    pub fn new(
        prefix: DecisionTrace,
        params: FuzzParams,
        sched_seed: u64,
        avoid: AvoidSet,
    ) -> (ForkScheduler, ForkStatusHandle) {
        let status = ForkStatusHandle::fresh();
        let spec = ForkSpec {
            params,
            prefix,
            avoid: Vec::new(),
            status: status.clone(),
        };
        let mut sched = ForkScheduler::attached(&spec, sched_seed);
        sched.avoid = avoid;
        (sched, status)
    }

    /// Builds the scheduler a [`ForkSpec`] describes, reporting into the
    /// spec's status handle (whose previous state is cleared, so one spec
    /// can drive many runs).
    pub fn attached(spec: &ForkSpec, sched_seed: u64) -> ForkScheduler {
        spec.status.reset();
        ForkScheduler {
            prefix: spec.prefix.clone(),
            cursor: 0,
            inner: FuzzScheduler::new(spec.params.clone(), sched_seed),
            avoid: spec.avoid.iter().copied().collect(),
            status: spec.status.clone(),
            scratch: Vec::new(),
        }
    }

    /// Marks this consultation as past the prefix. Returns whether it is
    /// the divergence point (the first such consultation), where the avoid
    /// set applies.
    fn leave_prefix(&mut self) -> bool {
        self.cursor = self.prefix.decisions.len();
        let mut st = self.status.inner.borrow_mut();
        let first = !st.diverged;
        st.diverged = true;
        first
    }

    fn note_replayed(&mut self) {
        self.status.inner.borrow_mut().replayed += 1;
    }

    fn note_skipped(&mut self) {
        self.status.inner.borrow_mut().skipped += 1;
    }

    fn note_exhausted(&mut self) {
        self.status.inner.borrow_mut().exhausted = true;
    }

    fn note_divergence(&mut self, fp: u64) {
        let mut st = self.status.inner.borrow_mut();
        if st.divergence_fp.is_none() {
            st.divergence_fp = Some(fp);
        }
    }

    /// Accepts or rejects `fp` at the divergence point. Returns `true` to
    /// accept (recording the fingerprint — and exhaustion, if the bounded
    /// retry ran out while `fp` is still avoided), `false` to redraw.
    fn accept_at_divergence(&mut self, fp: u64, attempt: u32) -> bool {
        let avoided = self.avoid.contains(fp);
        if avoided && attempt < ForkScheduler::RETRY_LIMIT {
            self.note_skipped();
            return false;
        }
        if avoided {
            self.note_exhausted();
        }
        self.note_divergence(fp);
        true
    }
}

impl Scheduler for ForkScheduler {
    fn name(&self) -> &'static str {
        "forked"
    }

    fn pool_mode(&self) -> PoolMode {
        // The prefix was recorded under the original scheduler's pool
        // regime; an empty prefix has no regime to honour.
        if self.prefix.decisions.is_empty() {
            self.inner.pool_mode()
        } else {
            self.prefix.pool_mode
        }
    }

    fn demux_done(&self) -> bool {
        if self.prefix.decisions.is_empty() {
            self.inner.demux_done()
        } else {
            self.prefix.demux_done
        }
    }

    fn on_timer(&mut self) -> TimerVerdict {
        if let Some(&Decision::Timer(rec)) = self.prefix.decisions.get(self.cursor) {
            self.cursor += 1;
            self.note_replayed();
            return match rec {
                None => TimerVerdict::Run,
                Some(ns) => TimerVerdict::Defer {
                    delay: VDur::nanos(ns),
                },
            };
        }
        let at_divergence = self.leave_prefix();
        let mut verdict = self.inner.on_timer();
        if at_divergence {
            for attempt in 0..=ForkScheduler::RETRY_LIMIT {
                let rec = match verdict {
                    TimerVerdict::Run => None,
                    TimerVerdict::Defer { delay } => Some(delay.as_nanos()),
                };
                let fp = decision_fingerprint(&Decision::Timer(rec));
                if self.accept_at_divergence(fp, attempt) {
                    return verdict;
                }
                verdict = self.inner.on_timer();
            }
        }
        verdict
    }

    fn shuffle_ready(&mut self, ready: &mut Vec<ReadyEntry>) {
        let at = self.cursor;
        if let Some(Decision::Shuffle(perm)) = self.prefix.decisions.get(at) {
            if perm.len() == ready.len() {
                self.cursor += 1;
                self.note_replayed();
                // Split-borrow: the permutation stays in the prefix while
                // the scratch buffer holds the pre-shuffle entries.
                let ForkScheduler {
                    prefix, scratch, ..
                } = self;
                let Some(Decision::Shuffle(perm)) = prefix.decisions.get(at) else {
                    unreachable!("checked above")
                };
                scratch.clear();
                scratch.extend_from_slice(ready);
                for (slot, &src) in perm.iter().enumerate() {
                    ready[slot] = scratch[src as usize];
                }
                return;
            }
        }
        let at_divergence = self.leave_prefix();
        if !at_divergence {
            self.inner.shuffle_ready(ready);
            return;
        }
        self.scratch.clear();
        self.scratch.extend_from_slice(ready);
        for attempt in 0..=ForkScheduler::RETRY_LIMIT {
            self.inner.shuffle_ready(ready);
            let perm: Perm = ready
                .iter()
                .map(|e| {
                    self.scratch
                        .iter()
                        .position(|s| s.seq == e.seq)
                        .expect("shuffle is a permutation") as u32
                })
                .collect();
            let fp = decision_fingerprint(&Decision::Shuffle(perm));
            if self.accept_at_divergence(fp, attempt) {
                return;
            }
            ready.clear();
            ready.extend_from_slice(&self.scratch);
        }
    }

    fn defer_ready(&mut self, entry: &ReadyEntry) -> bool {
        if let Some(&Decision::DeferReady(d)) = self.prefix.decisions.get(self.cursor) {
            self.cursor += 1;
            self.note_replayed();
            return d;
        }
        let at_divergence = self.leave_prefix();
        let mut defer = self.inner.defer_ready(entry);
        if at_divergence {
            for attempt in 0..=ForkScheduler::RETRY_LIMIT {
                let fp = decision_fingerprint(&Decision::DeferReady(defer));
                if self.accept_at_divergence(fp, attempt) {
                    return defer;
                }
                defer = self.inner.defer_ready(entry);
            }
        }
        defer
    }

    fn defer_close(&mut self) -> bool {
        if let Some(&Decision::DeferClose(d)) = self.prefix.decisions.get(self.cursor) {
            self.cursor += 1;
            self.note_replayed();
            return d;
        }
        let at_divergence = self.leave_prefix();
        let mut defer = self.inner.defer_close();
        if at_divergence {
            for attempt in 0..=ForkScheduler::RETRY_LIMIT {
                let fp = decision_fingerprint(&Decision::DeferClose(defer));
                if self.accept_at_divergence(fp, attempt) {
                    return defer;
                }
                defer = self.inner.defer_close();
            }
        }
        defer
    }

    fn pick_task(&mut self, window: usize) -> usize {
        if let Some(&Decision::PickTask(i)) = self.prefix.decisions.get(self.cursor) {
            if (i as usize) < window {
                self.cursor += 1;
                self.note_replayed();
                return i as usize;
            }
        }
        let at_divergence = self.leave_prefix();
        let mut pick = self.inner.pick_task(window);
        if at_divergence {
            for attempt in 0..=ForkScheduler::RETRY_LIMIT {
                let fp = decision_fingerprint(&Decision::PickTask(pick as u32));
                if self.accept_at_divergence(fp, attempt) {
                    return pick;
                }
                pick = self.inner.pick_task(window);
            }
        }
        pick
    }

    fn decision_count(&self) -> u64 {
        self.cursor as u64
    }

    fn fork_box(&self) -> Option<Box<dyn Scheduler>> {
        Some(Box::new(ForkScheduler {
            prefix: self.prefix.clone(),
            cursor: self.cursor,
            inner: self.inner.clone(),
            avoid: self.avoid.clone(),
            status: self.status.clone(),
            scratch: Vec::new(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::RecordingScheduler;
    use nodefz_rt::{EventLoop, LoopConfig};

    fn program(el: &mut EventLoop) {
        el.enter(|cx| {
            for i in 1..8u64 {
                cx.set_timeout(VDur::micros(i * 211), move |cx| {
                    cx.submit_work(
                        VDur::micros(100 + i * 31),
                        |_| (),
                        |cx, ()| {
                            cx.set_immediate(|_| {});
                        },
                    )
                    .unwrap();
                });
            }
        });
    }

    fn recorded_run(env_seed: u64, sched_seed: u64) -> (nodefz_rt::RunReport, DecisionTrace) {
        let fuzz = FuzzScheduler::new(FuzzParams::standard(), sched_seed);
        let (recorder, handle) = RecordingScheduler::new(fuzz);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(env_seed), Box::new(recorder));
        program(&mut el);
        let report = el.run();
        (report, handle.snapshot())
    }

    #[test]
    fn fingerprints_separate_kinds_and_payloads() {
        let decisions = [
            Decision::Timer(None),
            Decision::Timer(Some(5_000_000)),
            Decision::Timer(Some(1)),
            Decision::DeferReady(false),
            Decision::DeferReady(true),
            Decision::DeferClose(false),
            Decision::DeferClose(true),
            Decision::PickTask(0),
            Decision::PickTask(1),
            Decision::Shuffle(vec![0, 1, 2].into()),
            Decision::Shuffle(vec![1, 0, 2].into()),
            Decision::Shuffle(vec![0, 1].into()),
        ];
        let fps: Vec<u64> = decisions.iter().map(decision_fingerprint).collect();
        for (i, a) in fps.iter().enumerate() {
            for (j, b) in fps.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "{:?} vs {:?}", decisions[i], decisions[j]);
                }
            }
        }
        // Stability: the same decision always fingerprints the same.
        for (d, fp) in decisions.iter().zip(&fps) {
            assert_eq!(decision_fingerprint(d), *fp);
        }
    }

    #[test]
    fn empty_prefix_empty_avoid_is_plain_fuzzing() {
        let bare = FuzzScheduler::new(FuzzParams::standard(), 77);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(4), Box::new(bare));
        program(&mut el);
        let plain = el.run();

        let spec = ForkSpec::new(
            FuzzParams::standard(),
            DecisionTrace {
                pool_mode: PoolMode::Concurrent { workers: 4 },
                demux_done: false,
                decisions: Vec::new(),
            },
        );
        let forked = ForkScheduler::attached(&spec, 77);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(4), Box::new(forked));
        program(&mut el);
        let via_fork = el.run();

        assert_eq!(plain.schedule, via_fork.schedule);
        assert_eq!(plain.end_time, via_fork.end_time);
        assert!(spec.status.diverged());
        assert_eq!(spec.status.replayed(), 0);
        assert_eq!(spec.status.skipped(), 0);
        assert!(
            spec.status.divergence_fingerprint().is_some(),
            "the first fresh decision is fingerprinted even with nothing avoided"
        );
    }

    #[test]
    fn full_prefix_reproduces_the_recorded_schedule() {
        let (original, trace) = recorded_run(9, 33);
        assert!(!trace.is_empty());
        let n = trace.len() as u64;

        // A different inner seed: the suffix would fuzz differently, but a
        // full prefix leaves no suffix to draw.
        let spec = ForkSpec::new(FuzzParams::standard(), trace);
        let forked = ForkScheduler::attached(&spec, 123_456);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(9), Box::new(forked));
        program(&mut el);
        let replayed = el.run();

        assert_eq!(original.schedule, replayed.schedule);
        assert_eq!(original.end_time, replayed.end_time);
        assert_eq!(spec.status.replayed(), n);
    }

    #[test]
    fn half_prefix_replays_then_fuzzes_to_completion() {
        let (original, trace) = recorded_run(9, 33);
        let half = trace.len() / 2;
        let prefix = DecisionTrace {
            pool_mode: trace.pool_mode,
            demux_done: trace.demux_done,
            decisions: trace.decisions[..half].to_vec(),
        };

        let spec = ForkSpec::new(FuzzParams::standard(), prefix);
        let forked = ForkScheduler::attached(&spec, 999);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(9), Box::new(forked));
        program(&mut el);
        let report = el.run();

        assert!(!report.crashed());
        assert_eq!(report.pool.completed, original.pool.completed);
        assert_eq!(spec.status.replayed(), half as u64);
        assert!(spec.status.diverged());
    }

    #[test]
    fn avoid_set_steers_the_divergence_point() {
        // The decision the bare scheduler would make first.
        let mut probe = FuzzScheduler::new(FuzzParams::standard(), 55);
        let first = match probe.on_timer() {
            TimerVerdict::Run => Decision::Timer(None),
            TimerVerdict::Defer { delay } => Decision::Timer(Some(delay.as_nanos())),
        };

        let avoid: AvoidSet = [decision_fingerprint(&first)].into_iter().collect();
        let (mut forked, status) = ForkScheduler::new(
            DecisionTrace {
                pool_mode: PoolMode::Concurrent { workers: 4 },
                demux_done: false,
                decisions: Vec::new(),
            },
            FuzzParams::standard(),
            55,
            avoid,
        );
        let steered = match forked.on_timer() {
            TimerVerdict::Run => Decision::Timer(None),
            TimerVerdict::Defer { delay } => Decision::Timer(Some(delay.as_nanos())),
        };
        assert_ne!(steered, first, "the avoided decision must be redrawn");
        assert!(status.skipped() >= 1, "rejections are counted");
        assert!(!status.retries_exhausted());
        assert_eq!(
            status.divergence_fingerprint(),
            Some(decision_fingerprint(&steered)),
            "the accepted decision's fingerprint is reported"
        );
    }

    #[test]
    fn avoidance_applies_only_at_the_divergence_point() {
        // Avoid *both* timer outcomes: the divergence point exhausts its
        // retries; later consultations must not keep retrying.
        let avoid: AvoidSet = [
            decision_fingerprint(&Decision::Timer(None)),
            decision_fingerprint(&Decision::Timer(Some(
                FuzzParams::standard().timer_defer_delay.as_nanos(),
            ))),
        ]
        .into_iter()
        .collect();
        let (mut forked, status) = ForkScheduler::new(
            DecisionTrace {
                pool_mode: PoolMode::Concurrent { workers: 4 },
                demux_done: false,
                decisions: Vec::new(),
            },
            FuzzParams::standard(),
            7,
            avoid,
        );
        let _ = forked.on_timer();
        assert!(status.retries_exhausted());
        let after_divergence = status.skipped();
        assert_eq!(after_divergence, u64::from(ForkScheduler::RETRY_LIMIT));
        for _ in 0..50 {
            let _ = forked.on_timer();
        }
        assert_eq!(status.skipped(), after_divergence, "suffix is pure fuzz");
    }

    #[test]
    fn forked_fork_box_continues_in_lock_step() {
        let (_, trace) = recorded_run(9, 33);
        let spec = ForkSpec::new(FuzzParams::standard(), trace);
        let mut a = ForkScheduler::attached(&spec, 321);
        for _ in 0..5 {
            let _ = a.on_timer();
        }
        let mut b = a.fork_box().expect("fork schedulers fork");
        for _ in 0..200 {
            assert_eq!(a.on_timer(), b.on_timer());
            assert_eq!(a.defer_close(), b.defer_close());
            assert_eq!(a.pick_task(5), b.pick_task(5));
        }
    }
}
