//! The Node.fz fuzz scheduler (§4.3 of the paper).
//!
//! `FuzzScheduler` plugs into the runtime's [`Scheduler`] extension point
//! and amplifies the nondeterminism of the event loop and worker pool using
//! the paper's three techniques:
//!
//! 1. **De-multiplexing** — the worker-pool done queue is split onto
//!    per-task descriptors so each completion is an independently
//!    schedulable event (§4.3.1, §4.3.3).
//! 2. **Event shuffling** — the epoll ready list is shuffled with a bounded
//!    "degrees of freedom" distance, and the serialized worker picks
//!    uniformly among the first *DoF* queued tasks (§4.3.4).
//! 3. **Event delaying** — ready descriptors, expired timers and close
//!    events are probabilistically deferred to the next loop iteration;
//!    a deferred timer short-circuits the timer phase (preserving libuv's
//!    {timeout, registration} ordering) and injects a 5 ms delay.
//!
//! Every decision draws from a dedicated seed, independent of the
//! environment seed, so `(env_seed, sched_seed)` fully determines a run.

use nodefz_rt::{PoolMode, ReadyEntry, Rng, Scheduler, ShuffleScratch, TimerVerdict};

use crate::params::FuzzParams;

/// The Node.fz scheduler: randomized, legal perturbation of the schedule.
///
/// # Examples
///
/// ```
/// use nodefz::{FuzzParams, FuzzScheduler};
/// use nodefz_rt::{EventLoop, LoopConfig, VDur};
///
/// let sched = FuzzScheduler::new(FuzzParams::standard(), 7);
/// let mut el = EventLoop::with_scheduler(LoopConfig::seeded(1), Box::new(sched));
/// el.enter(|cx| {
///     cx.set_timeout(VDur::millis(1), |cx| cx.report_error("ran", ""));
/// });
/// assert!(el.run().has_error("ran"));
/// ```
///
/// Cloning duplicates the scheduler *at its current PRNG position*: the
/// clone draws exactly the decisions the original would have drawn next.
/// This is what makes the scheduler snapshot-forkable (see
/// [`Scheduler::fork_box`]).
#[derive(Clone)]
pub struct FuzzScheduler {
    params: FuzzParams,
    rng: Rng,
    stats: FuzzStats,
    /// Reusable buffers for the bounded shuffle (one per poll iteration).
    scratch: ShuffleScratch,
}

/// Counters of the decisions a scheduler made during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuzzStats {
    /// Timers deferred.
    pub timers_deferred: u64,
    /// Timers allowed to run.
    pub timers_run: u64,
    /// Ready descriptors deferred.
    pub ready_deferred: u64,
    /// Ready lists shuffled.
    pub shuffles: u64,
    /// Close events deferred.
    pub closes_deferred: u64,
    /// Worker-pool picks that chose a non-head task.
    pub nonfifo_picks: u64,
}

impl FuzzScheduler {
    /// Creates a fuzz scheduler with the given parameters and decision seed.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`FuzzParams::validate`]; invalid
    /// parameters would silently bias experiments.
    pub fn new(params: FuzzParams, sched_seed: u64) -> FuzzScheduler {
        if let Err(e) = params.validate() {
            panic!("invalid FuzzParams: {e}");
        }
        FuzzScheduler {
            params,
            rng: Rng::new(sched_seed ^ 0x6E6F_6465_2E66_7A00), // "node.fz"
            stats: FuzzStats::default(),
            scratch: ShuffleScratch::new(),
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> &FuzzParams {
        &self.params
    }

    /// Decision counters accumulated so far.
    pub fn stats(&self) -> FuzzStats {
        self.stats
    }
}

impl Scheduler for FuzzScheduler {
    fn name(&self) -> &'static str {
        "nodefz"
    }

    fn pool_mode(&self) -> PoolMode {
        if self.params.serialize_pool {
            PoolMode::Serialized {
                lookahead: self.params.wp_dof.unwrap_or(usize::MAX),
                // Our simulator folds the epoll threshold and the max delay
                // into one wait deadline: the worker proceeds at the earlier
                // of the two caps.
                max_delay: self.params.wp_max_delay.min(self.params.wp_epoll_threshold),
            }
        } else {
            PoolMode::Concurrent { workers: 4 }
        }
    }

    fn demux_done(&self) -> bool {
        self.params.demux_done
    }

    fn on_timer(&mut self) -> TimerVerdict {
        if self.rng.chance_pct(self.params.timer_defer_pct) {
            self.stats.timers_deferred += 1;
            TimerVerdict::Defer {
                delay: self.params.timer_defer_delay,
            }
        } else {
            self.stats.timers_run += 1;
            TimerVerdict::Run
        }
    }

    fn shuffle_ready(&mut self, ready: &mut Vec<ReadyEntry>) {
        let dist = self.params.epoll_dof.unwrap_or(usize::MAX);
        if dist == 0 || ready.len() < 2 {
            return;
        }
        self.stats.shuffles += 1;
        self.rng
            .shuffle_bounded_with(ready, dist, &mut self.scratch);
    }

    fn defer_ready(&mut self, _entry: &ReadyEntry) -> bool {
        let defer = self.rng.chance_pct(self.params.epoll_defer_pct);
        if defer {
            self.stats.ready_deferred += 1;
        }
        defer
    }

    fn defer_close(&mut self) -> bool {
        let defer = self.rng.chance_pct(self.params.close_defer_pct);
        if defer {
            self.stats.closes_deferred += 1;
        }
        defer
    }

    fn pick_task(&mut self, window: usize) -> usize {
        if window <= 1 {
            return 0;
        }
        let idx = self.rng.pick_index(window);
        if idx != 0 {
            self.stats.nonfifo_picks += 1;
        }
        idx
    }

    fn fork_box(&self) -> Option<Box<dyn Scheduler>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::{Fd, VDur, VTime};

    fn ready_list(n: usize) -> Vec<ReadyEntry> {
        (0..n)
            .map(|i| ReadyEntry {
                fd: Fd(i as u32),
                at: VTime(i as u64),
                seq: i as u64,
            })
            .collect()
    }

    #[test]
    fn standard_params_defer_at_documented_rates() {
        let mut s = FuzzScheduler::new(FuzzParams::standard(), 1);
        let n = 100_000;
        let deferred = (0..n)
            .filter(|_| matches!(s.on_timer(), TimerVerdict::Defer { .. }))
            .count();
        let rate = deferred as f64 / n as f64;
        assert!((0.18..0.22).contains(&rate), "timer defer rate {rate}");
        let entry = ready_list(1)[0];
        let deferred = (0..n).filter(|_| s.defer_ready(&entry)).count();
        let rate = deferred as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "epoll defer rate {rate}");
        let deferred = (0..n).filter(|_| s.defer_close()).count();
        let rate = deferred as f64 / n as f64;
        assert!((0.04..0.06).contains(&rate), "close defer rate {rate}");
    }

    #[test]
    fn deferred_timer_injects_5ms() {
        let mut s = FuzzScheduler::new(FuzzParams::standard(), 2);
        loop {
            if let TimerVerdict::Defer { delay } = s.on_timer() {
                assert_eq!(delay, VDur::millis(5));
                break;
            }
        }
    }

    #[test]
    fn none_params_make_no_random_choices() {
        let mut s = FuzzScheduler::new(FuzzParams::none(), 3);
        let mut ready = ready_list(10);
        let orig = ready.clone();
        s.shuffle_ready(&mut ready);
        assert_eq!(ready, orig, "dof 0 must not shuffle");
        for _ in 0..1_000 {
            assert_eq!(s.on_timer(), TimerVerdict::Run);
            assert!(!s.defer_ready(&orig[0]));
            assert!(!s.defer_close());
            // With wp_dof = 1 the loop driver always presents a window of 1.
            assert_eq!(s.pick_task(1), 0);
        }
        assert_eq!(s.stats().timers_deferred, 0);
        assert_eq!(s.stats().ready_deferred, 0);
    }

    #[test]
    fn nofuzz_pool_mode_is_serialized_fifo() {
        let s = FuzzScheduler::new(FuzzParams::none(), 4);
        match s.pool_mode() {
            PoolMode::Serialized {
                lookahead,
                max_delay,
            } => {
                assert_eq!(lookahead, 1);
                assert_eq!(max_delay, VDur::ZERO);
            }
            other => panic!("unexpected pool mode {other:?}"),
        }
        assert!(s.demux_done());
    }

    #[test]
    fn standard_pool_mode_unlimited_lookahead() {
        let s = FuzzScheduler::new(FuzzParams::standard(), 5);
        match s.pool_mode() {
            PoolMode::Serialized {
                lookahead,
                max_delay,
            } => {
                assert_eq!(lookahead, usize::MAX);
                assert_eq!(max_delay, VDur::micros(100));
            }
            other => panic!("unexpected pool mode {other:?}"),
        }
    }

    #[test]
    fn shuffle_respects_bounded_dof() {
        let mut params = FuzzParams::standard();
        params.epoll_dof = Some(2);
        let mut s = FuzzScheduler::new(params, 6);
        for _ in 0..200 {
            let mut ready = ready_list(12);
            s.shuffle_ready(&mut ready);
            for (pos, e) in ready.iter().enumerate() {
                let dist = pos.abs_diff(e.seq as usize);
                assert!(dist <= 2, "entry {e:?} moved {dist} positions");
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut s = FuzzScheduler::new(FuzzParams::standard(), 7);
        let mut ready = ready_list(20);
        s.shuffle_ready(&mut ready);
        let mut seqs: Vec<u64> = ready.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn pick_task_stays_in_window() {
        let mut s = FuzzScheduler::new(FuzzParams::standard(), 8);
        for w in 1..20 {
            for _ in 0..100 {
                assert!(s.pick_task(w) < w);
            }
        }
    }

    #[test]
    fn pick_task_covers_window() {
        let mut s = FuzzScheduler::new(FuzzParams::standard(), 9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[s.pick_task(6)] = true;
        }
        assert!(seen.iter().all(|&x| x), "all window slots reachable");
    }

    #[test]
    fn same_seed_same_decisions() {
        let mk = || FuzzScheduler::new(FuzzParams::standard(), 42);
        let mut a = mk();
        let mut b = mk();
        for _ in 0..1_000 {
            assert_eq!(a.on_timer(), b.on_timer());
            assert_eq!(a.pick_task(7), b.pick_task(7));
        }
    }

    #[test]
    fn fork_continues_the_identical_decision_stream() {
        let mut original = FuzzScheduler::new(FuzzParams::standard(), 11);
        // Advance the PRNG so the fork point is mid-stream.
        for _ in 0..37 {
            let _ = original.on_timer();
            let _ = original.pick_task(5);
        }
        let mut fork = original.fork_box().expect("fuzz schedulers fork");
        for _ in 0..500 {
            assert_eq!(original.on_timer(), fork.on_timer());
            assert_eq!(original.pick_task(7), fork.pick_task(7));
            assert_eq!(original.defer_close(), fork.defer_close());
        }
    }

    #[test]
    #[should_panic(expected = "invalid FuzzParams")]
    fn invalid_params_rejected() {
        let mut p = FuzzParams::standard();
        p.timer_defer_pct = 500.0;
        let _ = FuzzScheduler::new(p, 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = FuzzScheduler::new(FuzzParams::aggressive(), 10);
        for _ in 0..100 {
            let _ = s.on_timer();
            let _ = s.defer_close();
            let _ = s.pick_task(4);
        }
        let st = s.stats();
        assert!(st.timers_deferred > 0);
        assert!(st.timers_run > 0);
        assert!(st.closes_deferred > 0);
        assert!(st.nonfifo_picks > 0);
    }
}
