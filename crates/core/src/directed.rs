//! Race-directed scheduling: replay a recorded prefix, then force the flip.
//!
//! The happens-before analyzer (`nodefz-hb`) predicts a racing callback
//! pair from one recorded run and reports the *cut*: the decision-trace
//! prefix length that reproduces everything up to (but not including) the
//! dispatch of the earlier racing event. A [`DirectedScheduler`] replays
//! exactly that prefix, then spends a short *flip window* making the most
//! order-inverting legal choice at every consultation — defer the timer,
//! reverse the ready list, defer the close, pick the youngest task — so the
//! predicted later event overtakes the earlier one. After the window it
//! degenerates to an ordinary seeded [`FuzzScheduler`] so the run still
//! terminates under a legal schedule.
//!
//! Directed runs are deterministic for a fixed ([`DirectedSpec`],
//! `sched_seed`): retrying a prediction means bumping
//! [`DirectedSpec::attempt`], which reseeds only the suffix fuzzer.

use nodefz_rt::{PoolMode, ReadyEntry, Scheduler, TimerVerdict, VDur};

use crate::params::FuzzParams;
use crate::replay::{Decision, DecisionTrace};
use crate::scheduler::FuzzScheduler;

/// The delay injected when the flip window defers a timer (the standard
/// parameterization's `timer_defer_delay`).
const FLIP_TIMER_DELAY: VDur = VDur::millis(5);

/// One race-directed scheduling attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct DirectedSpec {
    /// The recorded decision trace of the run the prediction came from.
    pub prefix: DecisionTrace,
    /// Consultations to replay verbatim before flipping (the earlier
    /// racing event's [`decisions`](nodefz_rt::EventRecord::decisions)
    /// stamp).
    pub cut: u64,
    /// Consultations spent forcing order-inverting choices after the cut.
    pub window: u32,
    /// Retry counter; reseeds the suffix fuzzer without touching the
    /// prefix or the flip window.
    pub attempt: u64,
}

impl DirectedSpec {
    /// A spec targeting `cut` within `prefix`, with the default flip
    /// window and first attempt.
    pub fn new(prefix: DecisionTrace, cut: u64) -> DirectedSpec {
        DirectedSpec {
            prefix,
            cut,
            window: 8,
            attempt: 0,
        }
    }

    /// Returns a copy for the given retry attempt.
    #[must_use]
    pub fn with_attempt(mut self, attempt: u64) -> DirectedSpec {
        self.attempt = attempt;
        self
    }
}

/// Which regime a consultation falls in.
enum Phase {
    Replay(usize),
    Flip,
    Suffix,
}

/// Replays a prefix, flips a window, then fuzzes (see module docs).
pub struct DirectedScheduler {
    spec: DirectedSpec,
    /// Consultations made so far.
    cursor: u64,
    suffix: FuzzScheduler,
    /// Scratch for applying recorded permutations.
    scratch: Vec<ReadyEntry>,
}

impl DirectedScheduler {
    /// Builds the scheduler for one attempt; `sched_seed` matches the
    /// recorded run's seed so prefix divergences stay rare.
    pub fn new(spec: DirectedSpec, sched_seed: u64) -> DirectedScheduler {
        let suffix_seed = sched_seed ^ spec.attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DirectedScheduler {
            spec,
            cursor: 0,
            suffix: FuzzScheduler::new(FuzzParams::standard(), suffix_seed),
            scratch: Vec::new(),
        }
    }

    /// Advances the consultation counter and classifies the consultation.
    fn phase(&mut self) -> Phase {
        let n = self.cursor;
        self.cursor += 1;
        if n < self.spec.cut {
            Phase::Replay(n as usize)
        } else if n < self.spec.cut + u64::from(self.spec.window) {
            Phase::Flip
        } else {
            Phase::Suffix
        }
    }
}

impl Scheduler for DirectedScheduler {
    fn name(&self) -> &'static str {
        "directed"
    }

    fn pool_mode(&self) -> PoolMode {
        self.spec.prefix.pool_mode
    }

    fn demux_done(&self) -> bool {
        self.spec.prefix.demux_done
    }

    fn on_timer(&mut self) -> TimerVerdict {
        match self.phase() {
            Phase::Replay(at) => match self.spec.prefix.decisions.get(at) {
                Some(&Decision::Timer(Some(ns))) => TimerVerdict::Defer {
                    delay: VDur::nanos(ns),
                },
                // Kind mismatch or past the end: inert, like replay.
                _ => TimerVerdict::Run,
            },
            Phase::Flip => TimerVerdict::Defer {
                delay: FLIP_TIMER_DELAY,
            },
            Phase::Suffix => self.suffix.on_timer(),
        }
    }

    fn shuffle_ready(&mut self, ready: &mut Vec<ReadyEntry>) {
        match self.phase() {
            Phase::Replay(at) => {
                if let Some(Decision::Shuffle(perm)) = self.spec.prefix.decisions.get(at) {
                    if perm.len() == ready.len()
                        && perm.iter().all(|&src| (src as usize) < ready.len())
                    {
                        self.scratch.clear();
                        self.scratch.extend_from_slice(ready);
                        for (slot, &src) in perm.iter().enumerate() {
                            ready[slot] = self.scratch[src as usize];
                        }
                    }
                }
            }
            Phase::Flip => ready.reverse(),
            Phase::Suffix => self.suffix.shuffle_ready(ready),
        }
    }

    fn defer_ready(&mut self, entry: &ReadyEntry) -> bool {
        match self.phase() {
            Phase::Replay(at) => matches!(
                self.spec.prefix.decisions.get(at),
                Some(&Decision::DeferReady(true))
            ),
            Phase::Flip => true,
            Phase::Suffix => self.suffix.defer_ready(entry),
        }
    }

    fn defer_close(&mut self) -> bool {
        match self.phase() {
            Phase::Replay(at) => matches!(
                self.spec.prefix.decisions.get(at),
                Some(&Decision::DeferClose(true))
            ),
            Phase::Flip => true,
            Phase::Suffix => self.suffix.defer_close(),
        }
    }

    fn pick_task(&mut self, window: usize) -> usize {
        match self.phase() {
            Phase::Replay(at) => match self.spec.prefix.decisions.get(at) {
                Some(&Decision::PickTask(i)) if (i as usize) < window => i as usize,
                _ => 0,
            },
            Phase::Flip => window.saturating_sub(1),
            Phase::Suffix => self.suffix.pick_task(window),
        }
    }

    fn decision_count(&self) -> u64 {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{Perm, RecordingScheduler, TraceHandle};
    use crate::Mode;
    use nodefz_rt::{EventLoop, LoopConfig};

    fn prefix(decisions: Vec<Decision>) -> DecisionTrace {
        DecisionTrace {
            pool_mode: PoolMode::Serialized {
                lookahead: 1,
                max_delay: VDur::ZERO,
            },
            demux_done: true,
            decisions,
        }
    }

    #[test]
    fn replays_prefix_then_flips_then_fuzzes() {
        let trace = prefix(vec![
            Decision::Timer(None),
            Decision::DeferClose(false),
            Decision::PickTask(0),
        ]);
        let spec = DirectedSpec {
            prefix: trace,
            cut: 3,
            window: 2,
            attempt: 0,
        };
        let mut s = DirectedScheduler::new(spec, 7);
        // Prefix: recorded choices.
        assert_eq!(s.on_timer(), TimerVerdict::Run);
        assert!(!s.defer_close());
        assert_eq!(s.pick_task(4), 0);
        // Flip window: everything inverts.
        assert_eq!(
            s.on_timer(),
            TimerVerdict::Defer {
                delay: FLIP_TIMER_DELAY
            }
        );
        assert!(s.defer_close());
        assert_eq!(s.decision_count(), 5);
        // Suffix: delegated to the fuzzer (any legal verdict; just make
        // sure the consultation is counted).
        let _ = s.on_timer();
        assert_eq!(s.decision_count(), 6);
    }

    #[test]
    fn flip_reverses_and_picks_last() {
        let spec = DirectedSpec::new(prefix(vec![]), 0);
        let mut s = DirectedScheduler::new(spec, 1);
        let mut ready: Vec<ReadyEntry> = (0..3)
            .map(|i| ReadyEntry {
                fd: nodefz_rt::Fd(i),
                at: nodefz_rt::VTime(i as u64),
                seq: i as u64,
            })
            .collect();
        s.shuffle_ready(&mut ready);
        assert_eq!(ready.iter().map(|e| e.seq).collect::<Vec<_>>(), [2, 1, 0]);
        assert!(s.defer_ready(&ready[0]));
        assert_eq!(s.pick_task(5), 4);
    }

    #[test]
    fn kind_mismatch_in_prefix_is_inert() {
        let spec = DirectedSpec::new(prefix(vec![Decision::Shuffle(Perm::new())]), 1);
        let mut s = DirectedScheduler::new(spec, 1);
        assert_eq!(s.on_timer(), TimerVerdict::Run);
    }

    #[test]
    fn attempts_differ_only_in_the_suffix() {
        let spec = DirectedSpec::new(prefix(vec![Decision::Timer(None)]), 1);
        let mut a = DirectedScheduler::new(spec.clone().with_attempt(0), 9);
        let mut b = DirectedScheduler::new(spec.with_attempt(1), 9);
        assert_eq!(a.on_timer(), b.on_timer(), "prefix consultations agree");
        assert_eq!(
            a.on_timer(),
            b.on_timer(),
            "flip-window consultations agree"
        );
    }

    #[test]
    fn directed_mode_records_and_terminates() {
        // Record a no-fuzz run, then re-run it directed at a mid-trace cut;
        // the directed run must terminate and record a fresh trace.
        fn program(el: &mut EventLoop) {
            el.enter(|cx| {
                for i in 1..5u64 {
                    cx.set_timeout(VDur::micros(i * 300), move |cx| {
                        cx.submit_work(VDur::micros(80), |_| (), |_, ()| {})
                            .unwrap();
                    });
                }
            });
        }
        let handle = TraceHandle::fresh();
        let mode = Mode::Record(FuzzParams::none(), handle.clone());
        let mut el = mode.build_loop(LoopConfig::seeded(3), 5);
        program(&mut el);
        el.run();
        let recorded = handle.snapshot();
        assert!(!recorded.is_empty());

        let cut = (recorded.len() / 2) as u64;
        let confirm = TraceHandle::fresh();
        let mode = Mode::Directed(DirectedSpec::new(recorded, cut), confirm.clone());
        assert_eq!(mode.label(), "nodeFZ(directed)");
        let mut el = mode.build_loop(LoopConfig::seeded(3), 5);
        program(&mut el);
        let report = el.run();
        assert!(report.dispatched > 0);
        assert!(!confirm.snapshot().is_empty(), "directed run was recorded");
    }

    #[test]
    fn directed_scheduler_name_via_recording_wrapper() {
        let spec = DirectedSpec::new(prefix(vec![]), 0);
        let s = DirectedScheduler::new(spec.clone(), 0);
        assert_eq!(s.name(), "directed");
        let handle = TraceHandle::fresh();
        let wrapped = RecordingScheduler::with_handle(DirectedScheduler::new(spec, 0), &handle);
        assert_eq!(wrapped.name(), "recording");
        assert_eq!(wrapped.pool_mode(), s.pool_mode());
    }
}
