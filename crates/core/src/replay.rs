//! Record-and-replay of scheduling decisions.
//!
//! The paper notes that because Node.fz controls all points of
//! nondeterminism, it "can also enable more systematic exploration of
//! Node.js application schedules" (§6). This module provides the first
//! building block: a [`RecordingScheduler`] that wraps any scheduler and
//! logs every decision it makes, and a [`ReplayScheduler`] that re-applies
//! a recorded [`DecisionTrace`] verbatim.
//!
//! Replaying a trace against the *same program and environment seed*
//! reproduces the exact schedule — which turns a once-in-a-hundred-runs
//! manifestation into a deterministic regression test.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_rt::{PoolMode, ReadyEntry, Scheduler, TimerVerdict, VDur};

/// One recorded scheduling decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Timer verdict: `None` = run, `Some(delay_ns)` = defer with delay.
    Timer(Option<u64>),
    /// The permutation applied to a ready list: `perm[i]` is the original
    /// index of the entry placed at position `i`.
    Shuffle(Vec<u32>),
    /// Whether a ready descriptor was deferred.
    DeferReady(bool),
    /// Whether a close event was deferred.
    DeferClose(bool),
    /// The queue index picked by the worker.
    PickTask(u32),
}

/// A complete record of one run's scheduling decisions.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionTrace {
    /// The pool mode the recorded scheduler used.
    pub pool_mode: PoolMode,
    /// Whether the done queue was de-multiplexed.
    pub demux_done: bool,
    /// The decision sequence, in consultation order.
    pub decisions: Vec<Decision>,
}

impl DecisionTrace {
    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }
}

/// Shared handle to a trace being recorded.
#[derive(Clone)]
pub struct TraceHandle {
    inner: Rc<RefCell<DecisionTrace>>,
}

impl TraceHandle {
    /// Takes a snapshot of the decisions recorded so far.
    pub fn snapshot(&self) -> DecisionTrace {
        self.inner.borrow().clone()
    }
}

/// Wraps a scheduler, recording every decision it makes.
pub struct RecordingScheduler<S> {
    inner: S,
    trace: Rc<RefCell<DecisionTrace>>,
}

impl<S: Scheduler> RecordingScheduler<S> {
    /// Wraps `inner`; returns the scheduler and a handle to read the trace
    /// after (or during) the run.
    pub fn new(inner: S) -> (RecordingScheduler<S>, TraceHandle) {
        let trace = Rc::new(RefCell::new(DecisionTrace {
            pool_mode: inner.pool_mode(),
            demux_done: inner.demux_done(),
            decisions: Vec::new(),
        }));
        let handle = TraceHandle {
            inner: trace.clone(),
        };
        (RecordingScheduler { inner, trace }, handle)
    }
}

impl<S: Scheduler> Scheduler for RecordingScheduler<S> {
    fn name(&self) -> &'static str {
        "recording"
    }

    fn pool_mode(&self) -> PoolMode {
        self.inner.pool_mode()
    }

    fn demux_done(&self) -> bool {
        self.inner.demux_done()
    }

    fn on_timer(&mut self) -> TimerVerdict {
        let verdict = self.inner.on_timer();
        let rec = match verdict {
            TimerVerdict::Run => None,
            TimerVerdict::Defer { delay } => Some(delay.as_nanos()),
        };
        self.trace.borrow_mut().decisions.push(Decision::Timer(rec));
        verdict
    }

    fn shuffle_ready(&mut self, ready: &mut Vec<ReadyEntry>) {
        let before: Vec<u64> = ready.iter().map(|e| e.seq).collect();
        self.inner.shuffle_ready(ready);
        // Record the applied permutation by matching sequence numbers.
        let perm: Vec<u32> = ready
            .iter()
            .map(|e| {
                before
                    .iter()
                    .position(|&seq| seq == e.seq)
                    .expect("shuffle must be a permutation") as u32
            })
            .collect();
        self.trace
            .borrow_mut()
            .decisions
            .push(Decision::Shuffle(perm));
    }

    fn defer_ready(&mut self, entry: &ReadyEntry) -> bool {
        let defer = self.inner.defer_ready(entry);
        self.trace
            .borrow_mut()
            .decisions
            .push(Decision::DeferReady(defer));
        defer
    }

    fn defer_close(&mut self) -> bool {
        let defer = self.inner.defer_close();
        self.trace
            .borrow_mut()
            .decisions
            .push(Decision::DeferClose(defer));
        defer
    }

    fn pick_task(&mut self, window: usize) -> usize {
        let pick = self.inner.pick_task(window);
        self.trace
            .borrow_mut()
            .decisions
            .push(Decision::PickTask(pick as u32));
        pick
    }
}

/// Replays a [`DecisionTrace`] decision-for-decision.
///
/// Must be used with the same program and environment seed that produced
/// the trace; consultations beyond the end of the trace (or of a mismatched
/// kind) fall back to the inert choice (run / identity / no-defer / head),
/// and the mismatch counter records that the replay diverged.
pub struct ReplayScheduler {
    trace: DecisionTrace,
    cursor: usize,
    mismatches: u64,
}

impl ReplayScheduler {
    /// Creates a replayer for `trace`.
    pub fn new(trace: DecisionTrace) -> ReplayScheduler {
        ReplayScheduler {
            trace,
            cursor: 0,
            mismatches: 0,
        }
    }

    /// How many consultations did not match the recorded kind (0 for a
    /// faithful replay).
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    fn next(&mut self) -> Option<&Decision> {
        let d = self.trace.decisions.get(self.cursor);
        if d.is_some() {
            self.cursor += 1;
        }
        d
    }
}

impl Scheduler for ReplayScheduler {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn pool_mode(&self) -> PoolMode {
        self.trace.pool_mode
    }

    fn demux_done(&self) -> bool {
        self.trace.demux_done
    }

    fn on_timer(&mut self) -> TimerVerdict {
        match self.next() {
            Some(Decision::Timer(None)) => TimerVerdict::Run,
            Some(Decision::Timer(Some(ns))) => TimerVerdict::Defer {
                delay: VDur::nanos(*ns),
            },
            _ => {
                self.mismatches += 1;
                TimerVerdict::Run
            }
        }
    }

    fn shuffle_ready(&mut self, ready: &mut Vec<ReadyEntry>) {
        let perm = match self.next() {
            Some(Decision::Shuffle(perm)) if perm.len() == ready.len() => perm.clone(),
            _ => {
                self.mismatches += 1;
                return;
            }
        };
        let original = ready.clone();
        for (slot, &src) in perm.iter().enumerate() {
            ready[slot] = original[src as usize];
        }
    }

    fn defer_ready(&mut self, _entry: &ReadyEntry) -> bool {
        match self.next() {
            Some(Decision::DeferReady(d)) => *d,
            _ => {
                self.mismatches += 1;
                false
            }
        }
    }

    fn defer_close(&mut self) -> bool {
        match self.next() {
            Some(Decision::DeferClose(d)) => *d,
            _ => {
                self.mismatches += 1;
                false
            }
        }
    }

    fn pick_task(&mut self, window: usize) -> usize {
        match self.next() {
            Some(Decision::PickTask(i)) if (*i as usize) < window => *i as usize,
            _ => {
                self.mismatches += 1;
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FuzzParams, FuzzScheduler};
    use nodefz_rt::{EventLoop, LoopConfig};

    /// A nontrivial program mixing timers, pool tasks and immediates.
    fn program(el: &mut EventLoop) {
        el.enter(|cx| {
            for i in 1..8u64 {
                cx.set_timeout(VDur::micros(i * 211), move |cx| {
                    cx.submit_work(
                        VDur::micros(100 + i * 31),
                        |_| (),
                        |cx, ()| {
                            cx.set_immediate(|_| {});
                        },
                    )
                    .unwrap();
                });
            }
        });
    }

    #[test]
    fn record_then_replay_reproduces_the_schedule() {
        let fuzz = FuzzScheduler::new(FuzzParams::standard(), 33);
        let (recorder, handle) = RecordingScheduler::new(fuzz);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(9), Box::new(recorder));
        program(&mut el);
        let original = el.run();
        let trace = handle.snapshot();
        assert!(!trace.is_empty(), "a fuzz run makes decisions");

        let replayer = ReplayScheduler::new(trace);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(9), Box::new(replayer));
        program(&mut el);
        let replayed = el.run();

        assert_eq!(original.schedule, replayed.schedule);
        assert_eq!(original.end_time, replayed.end_time);
        assert_eq!(original.dispatched, replayed.dispatched);
    }

    #[test]
    fn recording_is_transparent() {
        // A recorded run behaves exactly like the bare scheduler's run.
        let bare = FuzzScheduler::new(FuzzParams::standard(), 44);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(10), Box::new(bare));
        program(&mut el);
        let plain = el.run();

        let fuzz = FuzzScheduler::new(FuzzParams::standard(), 44);
        let (recorder, _handle) = RecordingScheduler::new(fuzz);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(10), Box::new(recorder));
        program(&mut el);
        let recorded = el.run();

        assert_eq!(plain.schedule, recorded.schedule);
        assert_eq!(plain.end_time, recorded.end_time);
    }

    #[test]
    fn exhausted_trace_falls_back_inert() {
        let trace = DecisionTrace {
            pool_mode: PoolMode::Concurrent { workers: 4 },
            demux_done: false,
            decisions: vec![Decision::Timer(None)],
        };
        let mut replayer = ReplayScheduler::new(trace);
        assert_eq!(replayer.on_timer(), TimerVerdict::Run);
        // Trace exhausted: inert defaults, mismatches counted.
        assert_eq!(replayer.on_timer(), TimerVerdict::Run);
        assert!(!replayer.defer_close());
        assert_eq!(replayer.pick_task(3), 0);
        assert_eq!(replayer.mismatches(), 3);
    }

    #[test]
    fn vanilla_recording_is_all_inert_decisions() {
        let (recorder, handle) = RecordingScheduler::new(nodefz_rt::VanillaScheduler::new());
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(3), Box::new(recorder));
        program(&mut el);
        el.run();
        let trace = handle.snapshot();
        for d in &trace.decisions {
            match d {
                Decision::Timer(v) => assert_eq!(*v, None),
                Decision::DeferReady(b) | Decision::DeferClose(b) => assert!(!b),
                Decision::PickTask(i) => assert_eq!(*i, 0),
                Decision::Shuffle(perm) => {
                    assert!(perm.iter().enumerate().all(|(i, &p)| i as u32 == p));
                }
            }
        }
    }
}
