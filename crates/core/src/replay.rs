//! Record-and-replay of scheduling decisions.
//!
//! The paper notes that because Node.fz controls all points of
//! nondeterminism, it "can also enable more systematic exploration of
//! Node.js application schedules" (§6). This module provides the first
//! building block: a [`RecordingScheduler`] that wraps any scheduler and
//! logs every decision it makes, and a [`ReplayScheduler`] that re-applies
//! a recorded [`DecisionTrace`] verbatim.
//!
//! Replaying a trace against the *same program and environment seed*
//! reproduces the exact schedule — which turns a once-in-a-hundred-runs
//! manifestation into a deterministic regression test.
//!
//! ## Divergence handling
//!
//! Replay never panics mid-run, whatever the trace contains. A consultation
//! past the end of the trace, of a different kind than recorded, or against
//! a malformed recorded value (out-of-window pick, non-permutation shuffle)
//! falls back to the inert choice (run / identity / no-defer / head) and is
//! recorded as a [`ReplayDivergence`]. Callers that need a verdict rather
//! than a best-effort schedule attach a [`ReplayStatusHandle`] (see
//! [`ReplayScheduler::with_status`]) and call
//! [`ReplayStatusHandle::verdict`] after the run.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use nodefz_rt::{PoolMode, ReadyEntry, Scheduler, TimerVerdict, VDur};

/// Permutation storage for [`Decision::Shuffle`].
///
/// Ready lists are almost always short, so permutations up to
/// [`Perm::INLINE`] entries live inline and recording a shuffle touches the
/// heap only for unusually wide ready lists. Dereferences to `&[u32]`, so
/// call sites treat it like a slice.
#[derive(Clone)]
pub struct Perm {
    len: u32,
    inline: [u32; Perm::INLINE],
    /// Spill storage, used only when `len > INLINE`.
    spill: Vec<u32>,
}

impl Perm {
    /// Entries stored without a heap allocation.
    pub const INLINE: usize = 8;

    /// Creates an empty permutation.
    pub fn new() -> Perm {
        Perm {
            len: 0,
            inline: [0; Perm::INLINE],
            spill: Vec::new(),
        }
    }

    /// Appends one source index.
    pub fn push(&mut self, v: u32) {
        let len = self.len as usize;
        if len < Perm::INLINE {
            self.inline[len] = v;
        } else {
            if self.spill.is_empty() {
                // First spill: move the inline prefix over.
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(v);
        }
        self.len += 1;
    }

    /// The permutation as a slice: `self[i]` is the original index of the
    /// entry placed at position `i`.
    pub fn as_slice(&self) -> &[u32] {
        let len = self.len as usize;
        if len <= Perm::INLINE {
            &self.inline[..len]
        } else {
            &self.spill
        }
    }
}

impl Default for Perm {
    fn default() -> Perm {
        Perm::new()
    }
}

impl std::ops::Deref for Perm {
    type Target = [u32];
    fn deref(&self) -> &[u32] {
        self.as_slice()
    }
}

impl PartialEq for Perm {
    fn eq(&self, other: &Perm) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Perm {}

impl fmt::Debug for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<Vec<u32>> for Perm {
    fn from(v: Vec<u32>) -> Perm {
        v.into_iter().collect()
    }
}

impl FromIterator<u32> for Perm {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Perm {
        let mut p = Perm::new();
        for v in iter {
            p.push(v);
        }
        p
    }
}

impl<'a> IntoIterator for &'a Perm {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// One recorded scheduling decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Timer verdict: `None` = run, `Some(delay_ns)` = defer with delay.
    Timer(Option<u64>),
    /// The permutation applied to a ready list: `perm[i]` is the original
    /// index of the entry placed at position `i`.
    Shuffle(Perm),
    /// Whether a ready descriptor was deferred.
    DeferReady(bool),
    /// Whether a close event was deferred.
    DeferClose(bool),
    /// The queue index picked by the worker.
    PickTask(u32),
}

impl Decision {
    /// Short label of the decision kind ("timer", "shuffle", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Decision::Timer(_) => "timer",
            Decision::Shuffle(_) => "shuffle",
            Decision::DeferReady(_) => "defer-ready",
            Decision::DeferClose(_) => "defer-close",
            Decision::PickTask(_) => "pick-task",
        }
    }
}

/// A complete record of one run's scheduling decisions.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionTrace {
    /// The pool mode the recorded scheduler used.
    pub pool_mode: PoolMode,
    /// Whether the done queue was de-multiplexed.
    pub demux_done: bool,
    /// The decision sequence, in consultation order.
    pub decisions: Vec<Decision>,
}

impl DecisionTrace {
    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Checks the trace for values no recording could have produced.
    ///
    /// [`decode_trace`](crate::decode_trace) accepts any syntactically
    /// well-formed document; this catches the *semantically* corrupt ones —
    /// a shuffle that is not a permutation, a serialized pool with zero
    /// lookahead — before a replayer silently falls back to inert choices
    /// on every consultation.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceFormatError`] naming the first offending value.
    pub fn validate(&self) -> Result<(), TraceFormatError> {
        if let PoolMode::Serialized { lookahead, .. } = self.pool_mode {
            if lookahead == 0 {
                return Err(TraceFormatError::ZeroLookahead);
            }
        }
        for (at, d) in self.decisions.iter().enumerate() {
            if let Decision::Shuffle(perm) = d {
                if !is_permutation(perm, perm.len()) {
                    return Err(TraceFormatError::BadShuffle { at });
                }
            }
        }
        Ok(())
    }
}

/// A semantically corrupt [`DecisionTrace`] (see [`DecisionTrace::validate`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceFormatError {
    /// A serialized pool header with a zero-task lookahead window.
    ZeroLookahead,
    /// A recorded shuffle whose indices are not a permutation.
    BadShuffle {
        /// Zero-based decision index of the bad shuffle.
        at: usize,
    },
}

impl fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormatError::ZeroLookahead => {
                write!(f, "serialized pool lookahead must be at least 1")
            }
            TraceFormatError::BadShuffle { at } => {
                write!(f, "decision {at} is not a permutation")
            }
        }
    }
}

impl std::error::Error for TraceFormatError {}

/// Shared handle to a trace being recorded.
#[derive(Clone)]
pub struct TraceHandle {
    inner: Rc<RefCell<DecisionTrace>>,
}

impl TraceHandle {
    /// Creates a handle around an empty trace, to be filled by a
    /// [`RecordingScheduler`] built later (see
    /// [`RecordingScheduler::with_handle`] and [`crate::Mode::Record`]).
    pub fn fresh() -> TraceHandle {
        TraceHandle {
            inner: Rc::new(RefCell::new(DecisionTrace {
                pool_mode: PoolMode::Concurrent { workers: 4 },
                demux_done: false,
                decisions: Vec::new(),
            })),
        }
    }

    /// Takes a snapshot of the decisions recorded so far.
    pub fn snapshot(&self) -> DecisionTrace {
        self.inner.borrow().clone()
    }
}

impl PartialEq for TraceHandle {
    /// Handles are equal when they share the same underlying trace.
    fn eq(&self, other: &TraceHandle) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceHandle({} decisions)", self.inner.borrow().len())
    }
}

/// Wraps a scheduler, recording every decision it makes.
pub struct RecordingScheduler<S> {
    inner: S,
    trace: Rc<RefCell<DecisionTrace>>,
    /// Scratch for shuffle recording: the pre-shuffle sequence numbers.
    before: Vec<u64>,
}

impl<S: Scheduler> RecordingScheduler<S> {
    /// Wraps `inner`; returns the scheduler and a handle to read the trace
    /// after (or during) the run.
    pub fn new(inner: S) -> (RecordingScheduler<S>, TraceHandle) {
        let handle = TraceHandle::fresh();
        let recorder = RecordingScheduler::with_handle(inner, &handle);
        (recorder, handle)
    }

    /// Wraps `inner`, recording into an externally supplied handle.
    ///
    /// Any decisions already in the handle are discarded (keeping the
    /// allocated capacity, so a reused handle records allocation-free) and
    /// its header (pool mode, demux flag) is reset from `inner`, so a
    /// handle can be created first and wired through configuration (see
    /// [`crate::Mode::Record`]).
    pub fn with_handle(inner: S, handle: &TraceHandle) -> RecordingScheduler<S> {
        {
            let mut trace = handle.inner.borrow_mut();
            trace.pool_mode = inner.pool_mode();
            trace.demux_done = inner.demux_done();
            trace.decisions.clear();
        }
        RecordingScheduler {
            trace: handle.inner.clone(),
            inner,
            before: Vec::new(),
        }
    }
}

impl<S: Scheduler> Scheduler for RecordingScheduler<S> {
    fn name(&self) -> &'static str {
        "recording"
    }

    fn pool_mode(&self) -> PoolMode {
        self.inner.pool_mode()
    }

    fn demux_done(&self) -> bool {
        self.inner.demux_done()
    }

    fn on_timer(&mut self) -> TimerVerdict {
        let verdict = self.inner.on_timer();
        let rec = match verdict {
            TimerVerdict::Run => None,
            TimerVerdict::Defer { delay } => Some(delay.as_nanos()),
        };
        self.trace.borrow_mut().decisions.push(Decision::Timer(rec));
        verdict
    }

    fn shuffle_ready(&mut self, ready: &mut Vec<ReadyEntry>) {
        self.before.clear();
        self.before.extend(ready.iter().map(|e| e.seq));
        self.inner.shuffle_ready(ready);
        // Record the applied permutation by matching sequence numbers.
        let perm: Perm = ready
            .iter()
            .map(|e| {
                self.before
                    .iter()
                    .position(|&seq| seq == e.seq)
                    .expect("shuffle must be a permutation") as u32
            })
            .collect();
        self.trace
            .borrow_mut()
            .decisions
            .push(Decision::Shuffle(perm));
    }

    fn defer_ready(&mut self, entry: &ReadyEntry) -> bool {
        let defer = self.inner.defer_ready(entry);
        self.trace
            .borrow_mut()
            .decisions
            .push(Decision::DeferReady(defer));
        defer
    }

    fn defer_close(&mut self) -> bool {
        let defer = self.inner.defer_close();
        self.trace
            .borrow_mut()
            .decisions
            .push(Decision::DeferClose(defer));
        defer
    }

    fn pick_task(&mut self, window: usize) -> usize {
        let pick = self.inner.pick_task(window);
        self.trace
            .borrow_mut()
            .decisions
            .push(Decision::PickTask(pick as u32));
        pick
    }

    fn decision_count(&self) -> u64 {
        self.trace.borrow().decisions.len() as u64
    }
}

/// The first point where a replay could not follow its trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayDivergence {
    /// Zero-based index of the diverging consultation.
    pub at: usize,
    /// What the trace held at that point ("timer", "shuffle", …, or
    /// "end of trace").
    pub recorded: &'static str,
    /// The kind of consultation the run actually made, with detail for
    /// malformed recorded values ("shuffle (non-permutation)", …).
    pub consulted: &'static str,
}

impl fmt::Display for ReplayDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replay diverged at decision {}: trace holds {}, run consulted {}",
            self.at, self.recorded, self.consulted
        )
    }
}

/// A failed replay: how many consultations diverged, and where it started.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayError {
    /// Total diverging consultations.
    pub mismatches: u64,
    /// The first divergence.
    pub first: ReplayDivergence,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} total mismatches)", self.first, self.mismatches)
    }
}

impl std::error::Error for ReplayError {}

#[derive(Default)]
struct ReplayStatus {
    mismatches: u64,
    first: Option<ReplayDivergence>,
}

/// Shared view of a [`ReplayScheduler`]'s divergence state, readable after
/// the event loop has consumed the boxed scheduler.
#[derive(Clone, Default)]
pub struct ReplayStatusHandle {
    inner: Rc<RefCell<ReplayStatus>>,
}

impl ReplayStatusHandle {
    /// Creates a fresh, unattached handle (all-zero state until a
    /// [`ReplayScheduler`] built from it runs).
    pub fn fresh() -> ReplayStatusHandle {
        ReplayStatusHandle::default()
    }

    /// How many consultations did not match the recorded decision.
    pub fn mismatches(&self) -> u64 {
        self.inner.borrow().mismatches
    }

    /// The first divergence, if any.
    pub fn first_divergence(&self) -> Option<ReplayDivergence> {
        self.inner.borrow().first.clone()
    }

    /// `Ok(())` for a faithful replay, the divergence report otherwise.
    ///
    /// # Errors
    ///
    /// Returns a [`ReplayError`] naming the first diverging consultation.
    pub fn verdict(&self) -> Result<(), ReplayError> {
        let status = self.inner.borrow();
        match &status.first {
            None => Ok(()),
            Some(first) => Err(ReplayError {
                mismatches: status.mismatches,
                first: first.clone(),
            }),
        }
    }

    fn reset(&self) {
        *self.inner.borrow_mut() = ReplayStatus::default();
    }
}

impl PartialEq for ReplayStatusHandle {
    /// Handles are equal when they share the same underlying status.
    fn eq(&self, other: &ReplayStatusHandle) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for ReplayStatusHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ReplayStatusHandle({} mismatches)",
            self.inner.borrow().mismatches
        )
    }
}

/// Replays a [`DecisionTrace`] decision-for-decision.
///
/// Must be used with the same program and environment seed that produced
/// the trace; consultations beyond the end of the trace, of a mismatched
/// kind, or against malformed recorded values fall back to the inert choice
/// (run / identity / no-defer / head) — the documented fallback — and the
/// divergence is reported through the status handle.
pub struct ReplayScheduler {
    trace: DecisionTrace,
    cursor: usize,
    status: ReplayStatusHandle,
    /// Scratch for applying recorded permutations without cloning the
    /// ready list.
    scratch: Vec<ReadyEntry>,
}

impl ReplayScheduler {
    /// Creates a replayer for `trace`.
    pub fn new(trace: DecisionTrace) -> ReplayScheduler {
        ReplayScheduler::attached(trace, ReplayStatusHandle::fresh())
    }

    /// Creates a replayer after validating the trace, rejecting
    /// semantically corrupt input instead of silently replaying it as
    /// all-inert fallbacks.
    ///
    /// # Errors
    ///
    /// Returns the [`TraceFormatError`] from [`DecisionTrace::validate`].
    pub fn try_new(trace: DecisionTrace) -> Result<ReplayScheduler, TraceFormatError> {
        trace.validate()?;
        Ok(ReplayScheduler::new(trace))
    }

    /// Creates a replayer plus a status handle that outlives it, for
    /// inspecting divergence after the event loop consumed the scheduler.
    pub fn with_status(trace: DecisionTrace) -> (ReplayScheduler, ReplayStatusHandle) {
        let status = ReplayStatusHandle::fresh();
        let replayer = ReplayScheduler::attached(trace, status.clone());
        (replayer, status)
    }

    /// Creates a replayer reporting into an externally supplied handle.
    ///
    /// The handle's previous state is cleared, so one handle can be reused
    /// across runs (see [`crate::Mode::Replay`]).
    pub fn attached(trace: DecisionTrace, status: ReplayStatusHandle) -> ReplayScheduler {
        status.reset();
        ReplayScheduler {
            trace,
            cursor: 0,
            status,
            scratch: Vec::new(),
        }
    }

    /// How many consultations did not match the recorded kind (0 for a
    /// faithful replay).
    pub fn mismatches(&self) -> u64 {
        self.status.mismatches()
    }

    fn diverge(&mut self, recorded: &'static str, consulted: &'static str) {
        let mut status = self.status.inner.borrow_mut();
        status.mismatches += 1;
        if status.first.is_none() {
            status.first = Some(ReplayDivergence {
                // `next()` advanced the cursor for in-trace divergences;
                // point at the consultation that diverged either way.
                at: self
                    .cursor
                    .saturating_sub(usize::from(recorded != "end of trace")),
                recorded,
                consulted,
            });
        }
    }

    /// Advances past the current decision and returns the recorded kind, or
    /// `None` at end of trace. Allocation-free (decisions stay in place).
    fn advance(&mut self) -> Option<&'static str> {
        let kind = self.trace.decisions.get(self.cursor)?.kind();
        self.cursor += 1;
        Some(kind)
    }
}

/// Checks that `perm` is a permutation of `0..len`, without allocating for
/// the common (short) case.
fn is_permutation(perm: &[u32], len: usize) -> bool {
    if perm.len() != len {
        return false;
    }
    if len <= 128 {
        let mut seen: u128 = 0;
        for &src in perm {
            if src as usize >= len || seen & (1 << src) != 0 {
                return false;
            }
            seen |= 1 << src;
        }
        return true;
    }
    let mut seen = vec![false; len];
    for &src in perm {
        match seen.get_mut(src as usize) {
            Some(slot @ false) => *slot = true,
            _ => return false,
        }
    }
    true
}

impl Scheduler for ReplayScheduler {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn pool_mode(&self) -> PoolMode {
        self.trace.pool_mode
    }

    fn demux_done(&self) -> bool {
        self.trace.demux_done
    }

    fn on_timer(&mut self) -> TimerVerdict {
        if let Some(&Decision::Timer(rec)) = self.trace.decisions.get(self.cursor) {
            self.cursor += 1;
            return match rec {
                None => TimerVerdict::Run,
                Some(ns) => TimerVerdict::Defer {
                    delay: VDur::nanos(ns),
                },
            };
        }
        match self.advance() {
            Some(kind) => self.diverge(kind, "timer"),
            None => self.diverge("end of trace", "timer"),
        }
        TimerVerdict::Run
    }

    fn shuffle_ready(&mut self, ready: &mut Vec<ReadyEntry>) {
        let at = self.cursor;
        if !matches!(self.trace.decisions.get(at), Some(Decision::Shuffle(_))) {
            match self.advance() {
                Some(kind) => self.diverge(kind, "shuffle"),
                None => self.diverge("end of trace", "shuffle"),
            }
            return;
        }
        self.cursor += 1;
        let ok = match &self.trace.decisions[at] {
            Decision::Shuffle(perm) => is_permutation(perm, ready.len()),
            _ => unreachable!("checked above"),
        };
        if !ok {
            self.diverge("shuffle", "shuffle (non-permutation)");
            return;
        }
        // Split-borrow: the permutation stays in the trace while the
        // scratch buffer holds the pre-shuffle entries.
        let ReplayScheduler { trace, scratch, .. } = self;
        let Decision::Shuffle(perm) = &trace.decisions[at] else {
            unreachable!("checked above")
        };
        scratch.clear();
        scratch.extend_from_slice(ready);
        for (slot, &src) in perm.iter().enumerate() {
            ready[slot] = scratch[src as usize];
        }
    }

    fn defer_ready(&mut self, _entry: &ReadyEntry) -> bool {
        if let Some(&Decision::DeferReady(d)) = self.trace.decisions.get(self.cursor) {
            self.cursor += 1;
            return d;
        }
        match self.advance() {
            Some(kind) => self.diverge(kind, "defer-ready"),
            None => self.diverge("end of trace", "defer-ready"),
        }
        false
    }

    fn defer_close(&mut self) -> bool {
        if let Some(&Decision::DeferClose(d)) = self.trace.decisions.get(self.cursor) {
            self.cursor += 1;
            return d;
        }
        match self.advance() {
            Some(kind) => self.diverge(kind, "defer-close"),
            None => self.diverge("end of trace", "defer-close"),
        }
        false
    }

    fn pick_task(&mut self, window: usize) -> usize {
        if let Some(&Decision::PickTask(i)) = self.trace.decisions.get(self.cursor) {
            self.cursor += 1;
            if (i as usize) < window {
                return i as usize;
            }
            self.diverge("pick-task", "pick-task (out of window)");
            return 0;
        }
        match self.advance() {
            Some(kind) => self.diverge(kind, "pick-task"),
            None => self.diverge("end of trace", "pick-task"),
        }
        0
    }

    fn decision_count(&self) -> u64 {
        self.cursor as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FuzzParams, FuzzScheduler};
    use nodefz_rt::{EventLoop, Fd, LoopConfig, VTime};

    /// A nontrivial program mixing timers, pool tasks and immediates.
    fn program(el: &mut EventLoop) {
        el.enter(|cx| {
            for i in 1..8u64 {
                cx.set_timeout(VDur::micros(i * 211), move |cx| {
                    cx.submit_work(
                        VDur::micros(100 + i * 31),
                        |_| (),
                        |cx, ()| {
                            cx.set_immediate(|_| {});
                        },
                    )
                    .unwrap();
                });
            }
        });
    }

    #[test]
    fn record_then_replay_reproduces_the_schedule() {
        let fuzz = FuzzScheduler::new(FuzzParams::standard(), 33);
        let (recorder, handle) = RecordingScheduler::new(fuzz);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(9), Box::new(recorder));
        program(&mut el);
        let original = el.run();
        let trace = handle.snapshot();
        assert!(!trace.is_empty(), "a fuzz run makes decisions");

        let (replayer, status) = ReplayScheduler::with_status(trace);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(9), Box::new(replayer));
        program(&mut el);
        let replayed = el.run();

        assert_eq!(original.schedule, replayed.schedule);
        assert_eq!(original.end_time, replayed.end_time);
        assert_eq!(original.dispatched, replayed.dispatched);
        status.verdict().expect("faithful replay");
    }

    #[test]
    fn recording_is_transparent() {
        // A recorded run behaves exactly like the bare scheduler's run.
        let bare = FuzzScheduler::new(FuzzParams::standard(), 44);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(10), Box::new(bare));
        program(&mut el);
        let plain = el.run();

        let fuzz = FuzzScheduler::new(FuzzParams::standard(), 44);
        let (recorder, _handle) = RecordingScheduler::new(fuzz);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(10), Box::new(recorder));
        program(&mut el);
        let recorded = el.run();

        assert_eq!(plain.schedule, recorded.schedule);
        assert_eq!(plain.end_time, recorded.end_time);
    }

    #[test]
    fn exhausted_trace_falls_back_inert() {
        let trace = DecisionTrace {
            pool_mode: PoolMode::Concurrent { workers: 4 },
            demux_done: false,
            decisions: vec![Decision::Timer(None)],
        };
        let (mut replayer, status) = ReplayScheduler::with_status(trace);
        assert_eq!(replayer.on_timer(), TimerVerdict::Run);
        // Trace exhausted: inert defaults, mismatches counted.
        assert_eq!(replayer.on_timer(), TimerVerdict::Run);
        assert!(!replayer.defer_close());
        assert_eq!(replayer.pick_task(3), 0);
        assert_eq!(replayer.mismatches(), 3);
        let err = status.verdict().expect_err("diverged");
        assert_eq!(err.mismatches, 3);
        assert_eq!(err.first.recorded, "end of trace");
        assert_eq!(err.first.consulted, "timer");
        assert_eq!(err.first.at, 1);
    }

    #[test]
    fn kind_mismatch_falls_back_inert() {
        let trace = DecisionTrace {
            pool_mode: PoolMode::Concurrent { workers: 4 },
            demux_done: false,
            decisions: vec![Decision::DeferClose(true), Decision::Timer(None)],
        };
        let (mut replayer, status) = ReplayScheduler::with_status(trace);
        // Consults a timer where the trace recorded a close deferral.
        assert_eq!(replayer.on_timer(), TimerVerdict::Run);
        let err = status.verdict().expect_err("kind mismatch");
        assert_eq!(err.first.at, 0);
        assert_eq!(err.first.recorded, "defer-close");
        assert_eq!(err.first.consulted, "timer");
        assert!(err.to_string().contains("decision 0"), "{err}");
    }

    #[test]
    fn malformed_shuffle_falls_back_to_identity() {
        let entries: Vec<ReadyEntry> = (0..3)
            .map(|i| ReadyEntry {
                fd: Fd(i),
                at: VTime(i as u64),
                seq: i as u64,
            })
            .collect();
        for perm in [
            vec![0, 1],    // wrong length
            vec![0, 1, 7], // out of range
            vec![0, 1, 1], // duplicate
        ] {
            let trace = DecisionTrace {
                pool_mode: PoolMode::Concurrent { workers: 4 },
                demux_done: false,
                decisions: vec![Decision::Shuffle(perm.into())],
            };
            let (mut replayer, status) = ReplayScheduler::with_status(trace);
            let mut ready = entries.clone();
            replayer.shuffle_ready(&mut ready);
            assert_eq!(ready, entries, "fallback must be the identity");
            let err = status.verdict().expect_err("malformed perm");
            assert_eq!(err.first.consulted, "shuffle (non-permutation)");
        }
    }

    #[test]
    fn out_of_window_pick_falls_back_to_head() {
        let trace = DecisionTrace {
            pool_mode: PoolMode::Concurrent { workers: 4 },
            demux_done: false,
            decisions: vec![Decision::PickTask(9)],
        };
        let (mut replayer, status) = ReplayScheduler::with_status(trace);
        assert_eq!(replayer.pick_task(2), 0);
        let err = status.verdict().expect_err("pick out of window");
        assert_eq!(err.first.consulted, "pick-task (out of window)");
    }

    #[test]
    fn attached_handle_resets_between_runs() {
        let status = ReplayStatusHandle::fresh();
        let trace = DecisionTrace {
            pool_mode: PoolMode::Concurrent { workers: 4 },
            demux_done: false,
            decisions: vec![],
        };
        let mut r1 = ReplayScheduler::attached(trace.clone(), status.clone());
        let _ = r1.on_timer();
        assert_eq!(status.mismatches(), 1);
        let _r2 = ReplayScheduler::attached(trace, status.clone());
        assert_eq!(status.mismatches(), 0, "attach resets the handle");
        status.verdict().expect("clean after reset");
    }

    #[test]
    fn perm_spills_past_inline_capacity() {
        let n = Perm::INLINE as u32 + 5;
        let p: Perm = (0..n).collect();
        assert_eq!(p.len(), n as usize);
        assert_eq!(p.as_slice(), (0..n).collect::<Vec<_>>().as_slice());
        let small: Perm = vec![2, 0, 1].into();
        assert_eq!(small.as_slice(), &[2, 0, 1]);
        assert_eq!(small, vec![2, 0, 1].into());
        assert!(is_permutation(&small, 3));
        assert!(is_permutation(&p, n as usize));
    }

    #[test]
    fn is_permutation_rejects_malformed_large() {
        // Exercise the heap fallback path (len > 128).
        let len = 200usize;
        let good: Vec<u32> = (0..len as u32).rev().collect();
        assert!(is_permutation(&good, len));
        let mut dup = good.clone();
        dup[0] = dup[1];
        assert!(!is_permutation(&dup, len));
        let mut out_of_range = good;
        out_of_range[5] = len as u32;
        assert!(!is_permutation(&out_of_range, len));
    }

    #[test]
    fn reused_handle_records_fresh_decisions() {
        let handle = TraceHandle::fresh();
        for seed in [5u64, 6u64] {
            let fuzz = FuzzScheduler::new(FuzzParams::standard(), seed);
            let recorder = RecordingScheduler::with_handle(fuzz, &handle);
            let mut el = EventLoop::with_scheduler(LoopConfig::seeded(seed), Box::new(recorder));
            program(&mut el);
            el.run();
            let trace = handle.snapshot();
            assert!(!trace.is_empty());
            // Replaying the snapshot against the same seed must be faithful,
            // proving the reused handle held only this run's decisions.
            let (replayer, status) = ReplayScheduler::with_status(trace);
            let mut el = EventLoop::with_scheduler(LoopConfig::seeded(seed), Box::new(replayer));
            program(&mut el);
            el.run();
            status
                .verdict()
                .expect("faithful replay from reused handle");
        }
    }

    #[test]
    fn vanilla_recording_is_all_inert_decisions() {
        let (recorder, handle) = RecordingScheduler::new(nodefz_rt::VanillaScheduler::new());
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(3), Box::new(recorder));
        program(&mut el);
        el.run();
        let trace = handle.snapshot();
        for d in &trace.decisions {
            match d {
                Decision::Timer(v) => assert_eq!(*v, None),
                Decision::DeferReady(b) | Decision::DeferClose(b) => assert!(!b),
                Decision::PickTask(i) => assert_eq!(*i, 0),
                Decision::Shuffle(perm) => {
                    assert!(perm.iter().enumerate().all(|(i, &p)| i as u32 == p));
                }
            }
        }
    }
}
