//! Node.fz scheduler parameters (Table 3 of the paper).
//!
//! Each parameter bounds one fuzzing mechanism. The *standard
//! parameterization* (§5.1.2) "fuzzes each supported aspect of
//! non-determinism without perturbing the execution too dramatically" and is
//! the configuration used for the headline experiments; §5.2.3's *guided*
//! parameterization biases the schedule toward accurate timers to chase a
//! specific symptom.

use std::fmt;

use nodefz_rt::VDur;

/// Tuning knobs of the Node.fz scheduler.
///
/// # Examples
///
/// ```
/// use nodefz::FuzzParams;
///
/// let std = FuzzParams::standard();
/// assert_eq!(std.epoll_defer_pct, 10.0);
/// std.validate().unwrap();
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzParams {
    /// Maximum shuffle distance of epoll ready items (`None` = unlimited;
    /// the paper's `-1`).
    pub epoll_dof: Option<usize>,
    /// Probability (percent) of deferring a ready epoll item to the next
    /// loop iteration.
    pub epoll_defer_pct: f64,
    /// Probability (percent) of deferring an expired timer to the next loop
    /// iteration (short-circuiting the rest of the timer phase).
    pub timer_defer_pct: f64,
    /// Virtual delay injected into the loop when a timer is deferred
    /// ("a compromise between desiring forward progress and hoping for
    /// other events to arrive", §4.3.4).
    pub timer_defer_delay: VDur,
    /// Probability (percent) of deferring a close event to the next loop
    /// iteration.
    pub close_defer_pct: f64,
    /// Worker-pool task-queue lookahead, i.e. the number of simulated
    /// workers (`None` = unlimited; the paper's `-1`).
    pub wp_dof: Option<usize>,
    /// Maximum total time the serialized worker waits for the task queue to
    /// fill up to the lookahead.
    pub wp_max_delay: VDur,
    /// Maximum time the event loop may sit in epoll while waiting for the
    /// worker-pool queue to fill. Our simulator folds this bound into the
    /// same wait deadline as `wp_max_delay` (documented substitution:
    /// the two caps bound the same wait from two sides in real Node.fz).
    pub wp_epoll_threshold: VDur,
    /// Whether to de-multiplex the worker-pool done queue onto per-task
    /// descriptors (§4.3.3). Disabling this is an ablation, not a paper
    /// configuration.
    pub demux_done: bool,
    /// Whether to serialize the worker pool to a single worker (§4.3.3).
    /// Disabling this is an ablation, not a paper configuration.
    pub serialize_pool: bool,
}

impl FuzzParams {
    /// The paper's standard parameterization (Table 3, right column).
    pub fn standard() -> FuzzParams {
        FuzzParams {
            epoll_dof: None, // -1 (unlimited)
            epoll_defer_pct: 10.0,
            timer_defer_pct: 20.0,
            timer_defer_delay: VDur::millis(5),
            close_defer_pct: 5.0,
            wp_dof: None,                          // -1 (unlimited)
            wp_max_delay: VDur::micros(100),       // 0.1 ms
            wp_epoll_threshold: VDur::micros(100), // 0.1 ms
            demux_done: true,
            serialize_pool: true,
        }
    }

    /// Parameters that induce no fuzzing at all: the paper's `nodeNFZ`.
    ///
    /// The Node.fz *infrastructure* is still in place — the worker pool is
    /// serialized and the done queue de-multiplexed — so this explores a
    /// slightly different schedule space than vanilla Node.js (§5.1), but
    /// the scheduler itself makes no random choices.
    pub fn none() -> FuzzParams {
        FuzzParams {
            epoll_dof: Some(0),
            epoll_defer_pct: 0.0,
            timer_defer_pct: 0.0,
            timer_defer_delay: VDur::ZERO,
            close_defer_pct: 0.0,
            wp_dof: Some(1),
            wp_max_delay: VDur::ZERO,
            wp_epoll_threshold: VDur::ZERO,
            demux_done: true,
            serialize_pool: true,
        }
    }

    /// The guided parameterization of §5.2.3: bias the loop toward spinning
    /// so that expired timers are noticed (and executed) promptly, exposing
    /// "race against time" bugs that assume imprecise timers.
    pub fn guided_accurate_timers() -> FuzzParams {
        FuzzParams {
            epoll_dof: None,
            epoll_defer_pct: 70.0,
            timer_defer_pct: 0.0,
            timer_defer_delay: VDur::ZERO,
            close_defer_pct: 50.0,
            wp_dof: None,
            wp_max_delay: VDur::millis(2),
            wp_epoll_threshold: VDur::millis(2),
            demux_done: true,
            serialize_pool: true,
        }
    }

    /// An intentionally extreme parameterization used by fidelity tests:
    /// correct programs must still compute correct results under it.
    pub fn aggressive() -> FuzzParams {
        FuzzParams {
            epoll_dof: None,
            epoll_defer_pct: 40.0,
            timer_defer_pct: 50.0,
            timer_defer_delay: VDur::millis(10),
            close_defer_pct: 40.0,
            wp_dof: None,
            wp_max_delay: VDur::millis(1),
            wp_epoll_threshold: VDur::millis(1),
            demux_done: true,
            serialize_pool: true,
        }
    }

    /// A seeded *swarm* parameterization: every knob drawn uniformly from
    /// its legal range, so a population of seeds covers corners of the
    /// configuration space (mux vs demux done queue, tight vs unlimited
    /// lookahead, zero vs heavy deferral) that no single hand-picked
    /// parameterization exercises. Always [`FuzzParams::validate`]-clean.
    ///
    /// Used by the `nodefz-conform` differential harness, which must hold
    /// the fidelity guarantees under *every* legal parameterization, not
    /// just the paper's three presets.
    pub fn sampled(seed: u64) -> FuzzParams {
        // Local splitmix64 so the sampler has no dependency on the
        // runtime's RNG stream shapes.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let pct = |v: u64| (v % 101) as f64;
        let serialize_pool = next() % 4 != 0;
        let wp_dof = if !serialize_pool {
            None
        } else {
            match next() % 3 {
                0 => None,
                _ => Some(1 + (next() % 4) as usize),
            }
        };
        FuzzParams {
            epoll_dof: match next() % 3 {
                0 => None,
                _ => Some((next() % 5) as usize),
            },
            // Capped below 100%: an always-defer policy would starve ready
            // fds forever, which is a livelock, not a schedule.
            epoll_defer_pct: pct(next()) * 0.8,
            timer_defer_pct: pct(next()) * 0.5,
            timer_defer_delay: VDur::micros(next() % 10_000),
            close_defer_pct: pct(next()) * 0.5,
            wp_dof,
            wp_max_delay: VDur::micros(next() % 2_000),
            wp_epoll_threshold: VDur::micros(next() % 2_000),
            demux_done: next() % 2 == 0,
            serialize_pool,
        }
    }

    /// Checks that every field is within its legal range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("epoll_defer_pct", self.epoll_defer_pct),
            ("timer_defer_pct", self.timer_defer_pct),
            ("close_defer_pct", self.close_defer_pct),
        ] {
            if !(0.0..=100.0).contains(&v) || v.is_nan() {
                return Err(format!("{name} must be a percentage in [0, 100], got {v}"));
            }
        }
        if self.wp_dof == Some(0) {
            return Err("wp_dof must be at least 1 (a zero-task window cannot pick)".into());
        }
        if !self.serialize_pool && self.wp_dof.is_some() && self.wp_dof != Some(1) {
            return Err(
                "wp_dof lookahead requires the serialized pool (serialize_pool = true)".into(),
            );
        }
        Ok(())
    }

    /// Table 3 rows: (parameter name, description, value in this
    /// parameterization).
    pub fn table3_rows(&self) -> Vec<(&'static str, &'static str, String)> {
        fn dof(d: Option<usize>) -> String {
            match d {
                None => "-1 (unlimited)".to_string(),
                Some(n) => n.to_string(),
            }
        }
        vec![
            (
                "Event Loop: epoll degrees of freedom",
                "Maximum shuffle distance of epoll ready items.",
                dof(self.epoll_dof),
            ),
            (
                "Event Loop: epoll deferral percentage",
                "Probability of deferring a ready epoll item until the next iteration of the event loop.",
                format!("{}%", self.epoll_defer_pct),
            ),
            (
                "Event Loop: Timer deferral percentage",
                "Probability of deferring an expired timer until the next iteration of the event loop.",
                format!("{}%", self.timer_defer_pct),
            ),
            (
                "Event Loop: \"closing\" deferral percentage",
                "Probability of deferring a \"close\" event until the next iteration of the event loop.",
                format!("{}%", self.close_defer_pct),
            ),
            (
                "Worker Pool: Degrees of freedom",
                "Work queue lookahead distance, i.e. number of simulated worker pool workers.",
                dof(self.wp_dof),
            ),
            (
                "Worker Pool: Max delay",
                "Total maximum time to wait to fill the worker pool work queue up to the degrees of freedom.",
                format!("{} ms", self.wp_max_delay.as_nanos() as f64 / 1e6),
            ),
            (
                "Worker Pool: epoll threshold",
                "Maximum time the event loop can be in epoll while we wait for the worker pool task queue to fill.",
                format!("{} ms", self.wp_epoll_threshold.as_nanos() as f64 / 1e6),
            ),
        ]
    }

    /// Returns a copy with shuffling disabled (ablation).
    pub fn without_shuffle(mut self) -> FuzzParams {
        self.epoll_dof = Some(0);
        self.wp_dof = Some(1);
        self
    }

    /// Returns a copy with all deferral disabled (ablation).
    pub fn without_deferral(mut self) -> FuzzParams {
        self.epoll_defer_pct = 0.0;
        self.timer_defer_pct = 0.0;
        self.close_defer_pct = 0.0;
        self
    }

    /// Returns a copy with the done queue left multiplexed (ablation).
    pub fn without_demux(mut self) -> FuzzParams {
        self.demux_done = false;
        self
    }
}

impl Default for FuzzParams {
    fn default() -> FuzzParams {
        FuzzParams::standard()
    }
}

impl fmt::Display for FuzzParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, _, value) in self.table3_rows() {
            writeln!(f, "{name}: {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_matches_table3() {
        let p = FuzzParams::standard();
        assert_eq!(p.epoll_dof, None);
        assert_eq!(p.epoll_defer_pct, 10.0);
        assert_eq!(p.timer_defer_pct, 20.0);
        assert_eq!(p.close_defer_pct, 5.0);
        assert_eq!(p.wp_dof, None);
        assert_eq!(p.wp_max_delay, VDur::micros(100));
        assert_eq!(p.wp_epoll_threshold, VDur::micros(100));
        assert_eq!(p.timer_defer_delay, VDur::millis(5));
        p.validate().unwrap();
    }

    #[test]
    fn none_is_valid_and_inert() {
        let p = FuzzParams::none();
        p.validate().unwrap();
        assert_eq!(p.epoll_defer_pct, 0.0);
        assert_eq!(p.wp_dof, Some(1));
        assert!(p.demux_done);
        assert!(p.serialize_pool);
    }

    #[test]
    fn guided_and_aggressive_are_valid() {
        FuzzParams::guided_accurate_timers().validate().unwrap();
        FuzzParams::aggressive().validate().unwrap();
    }

    #[test]
    fn sampled_is_deterministic_valid_and_varied() {
        let (mut demux, mut mux, mut serial, mut concurrent) = (0, 0, 0, 0);
        for seed in 0..500u64 {
            let p = FuzzParams::sampled(seed);
            assert_eq!(
                p,
                FuzzParams::sampled(seed),
                "seed {seed} not deterministic"
            );
            p.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // Always-defer epoll policies would livelock a ready fd.
            assert!(p.epoll_defer_pct < 100.0, "seed {seed} can starve fds");
            if p.demux_done {
                demux += 1
            } else {
                mux += 1
            }
            if p.serialize_pool {
                serial += 1
            } else {
                concurrent += 1
            }
        }
        // The swarm must actually cover both sides of the binary knobs.
        assert!(demux > 50 && mux > 50, "demux split {demux}/{mux}");
        assert!(
            serial > 50 && concurrent > 50,
            "pool split {serial}/{concurrent}"
        );
    }

    #[test]
    fn validation_rejects_bad_percentages() {
        let mut p = FuzzParams::standard();
        p.epoll_defer_pct = 120.0;
        assert!(p.validate().is_err());
        p.epoll_defer_pct = -1.0;
        assert!(p.validate().is_err());
        p.epoll_defer_pct = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_wp_dof() {
        let mut p = FuzzParams::standard();
        p.wp_dof = Some(0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_lookahead_without_serialization() {
        let mut p = FuzzParams::standard();
        p.serialize_pool = false;
        p.wp_dof = Some(4);
        assert!(p.validate().is_err());
        p.wp_dof = None;
        p.validate().unwrap();
    }

    #[test]
    fn table3_has_seven_rows() {
        assert_eq!(FuzzParams::standard().table3_rows().len(), 7);
    }

    #[test]
    fn ablation_builders() {
        let p = FuzzParams::standard().without_shuffle();
        assert_eq!(p.epoll_dof, Some(0));
        assert_eq!(p.wp_dof, Some(1));
        let p = FuzzParams::standard().without_deferral();
        assert_eq!(p.timer_defer_pct, 0.0);
        assert_eq!(p.epoll_defer_pct, 0.0);
        assert_eq!(p.close_defer_pct, 0.0);
        let p = FuzzParams::standard().without_demux();
        assert!(!p.demux_done);
        p.validate().unwrap();
    }

    #[test]
    fn display_mentions_every_knob() {
        let s = format!("{}", FuzzParams::standard());
        assert!(s.contains("epoll degrees of freedom"));
        assert!(s.contains("Worker Pool: Max delay"));
    }
}
