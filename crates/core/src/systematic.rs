//! Systematic (delay-bounded) schedule exploration.
//!
//! The paper observes that systematic testing of multi-threaded and
//! asynchronous-reactive programs is an alternative to randomized fuzzing,
//! and that "because it controls all points of non-determinism in Node.js,
//! Node.fz can also enable more systematic exploration" (§6). This module
//! realises that: a deterministic scheduler that enumerates schedules by a
//! *delay budget*, in the spirit of delay-bounded scheduling (Emmi et al.,
//! PoPL'11, the paper's citation [19]).
//!
//! A schedule is identified by a `schedule_id`: its bits decide, at each of
//! the first 64 *delay opportunities* (an expired timer about to run or a
//! ready descriptor about to be dispatched), whether to insert one delay.
//! `schedule_id = 0` is the undelayed schedule; enumerating ids 0..N walks
//! a growing neighbourhood of it. The total number of delays is capped by
//! `delay_budget`, which bounds the distance from the natural schedule
//! exactly as delay-bounded scheduling prescribes.

use std::cell::Cell;
use std::rc::Rc;

use nodefz_rt::{PoolMode, ReadyEntry, Scheduler, TimerVerdict, VDur};

/// Deterministic delay-bounded scheduler.
///
/// # Examples
///
/// ```
/// use nodefz::SystematicScheduler;
/// use nodefz_rt::{EventLoop, LoopConfig, VDur};
///
/// // Enumerate 8 schedules of the same program.
/// let mut distinct = std::collections::HashSet::new();
/// for schedule_id in 0..8 {
///     let sched = SystematicScheduler::new(schedule_id, 4);
///     let mut el = EventLoop::with_scheduler(LoopConfig::seeded(5), Box::new(sched));
///     el.enter(|cx| {
///         for i in 1..4u64 {
///             cx.set_timeout(VDur::micros(i * 500), move |cx| {
///                 cx.submit_work(VDur::micros(300), |_| (), |_, ()| {}).unwrap();
///             });
///         }
///     });
///     distinct.insert(el.run().schedule);
/// }
/// assert!(distinct.len() > 1, "delays produce distinct schedules");
/// ```
#[derive(Clone)]
pub struct SystematicScheduler {
    schedule_id: u64,
    delay_budget: u32,
    opportunity: u32,
    delays_used: u32,
    /// Mirror of `opportunity` readable after the event loop consumed the
    /// scheduler (see [`SystematicScheduler::probed`]). Shared by clones,
    /// so a snapshot fork keeps reporting into the same probe.
    probe: Option<OpportunityProbe>,
}

/// Shared view of how many delay opportunities a [`SystematicScheduler`]
/// consulted, readable after the run (the loop consumes the boxed
/// scheduler, so a direct accessor would be unreachable by then).
///
/// This is the key to sleep-set-style pruning: a run that consulted `k`
/// opportunities read only the low `k` bits of its `schedule_id`, so every
/// id agreeing on those bits yields the *identical* schedule and need not
/// be run (see [`explore_pruned`]).
#[derive(Clone, Debug, Default)]
pub struct OpportunityProbe {
    consulted: Rc<Cell<u32>>,
}

impl OpportunityProbe {
    /// Creates a fresh probe (zero until a probed scheduler runs).
    pub fn fresh() -> OpportunityProbe {
        OpportunityProbe::default()
    }

    /// Delay opportunities consulted by the probed run so far.
    pub fn consulted(&self) -> u32 {
        self.consulted.get()
    }

    /// The set of `schedule_id` bits the probed run actually read, as a
    /// mask over the low bits (all-ones once 64+ opportunities were
    /// consulted).
    pub fn decided_mask(&self) -> u64 {
        match self.consulted.get() {
            k if k >= 64 => u64::MAX,
            k => (1u64 << k) - 1,
        }
    }
}

impl PartialEq for OpportunityProbe {
    /// Probes are equal when they share the same underlying counter.
    fn eq(&self, other: &OpportunityProbe) -> bool {
        Rc::ptr_eq(&self.consulted, &other.consulted)
    }
}

impl SystematicScheduler {
    /// Creates the scheduler for one point of the enumeration.
    ///
    /// `schedule_id` selects which delay opportunities fire (bit `i` of the
    /// id delays opportunity `i`); `delay_budget` caps the total number of
    /// delays.
    pub fn new(schedule_id: u64, delay_budget: u32) -> SystematicScheduler {
        SystematicScheduler {
            schedule_id,
            delay_budget,
            opportunity: 0,
            delays_used: 0,
            probe: None,
        }
    }

    /// Like [`new`](SystematicScheduler::new), plus a probe that stays
    /// readable after the event loop consumed the scheduler.
    pub fn probed(schedule_id: u64, delay_budget: u32) -> (SystematicScheduler, OpportunityProbe) {
        let probe = OpportunityProbe::fresh();
        let mut sched = SystematicScheduler::new(schedule_id, delay_budget);
        sched.probe = Some(probe.clone());
        (sched, probe)
    }

    /// Delays inserted so far in this run.
    pub fn delays_used(&self) -> u32 {
        self.delays_used
    }

    /// Delay opportunities consulted so far: the number of low
    /// `schedule_id` bits this run's outcome depends on.
    pub fn opportunities_seen(&self) -> u32 {
        self.opportunity
    }

    fn take_opportunity(&mut self) -> bool {
        if self.delays_used >= self.delay_budget {
            return false;
        }
        let bit = self.opportunity;
        self.opportunity = self.opportunity.saturating_add(1);
        if let Some(probe) = &self.probe {
            probe.consulted.set(self.opportunity);
        }
        if bit >= 64 {
            return false;
        }
        let delay = (self.schedule_id >> bit) & 1 == 1;
        if delay {
            self.delays_used += 1;
        }
        delay
    }
}

impl Scheduler for SystematicScheduler {
    fn name(&self) -> &'static str {
        "systematic"
    }

    fn pool_mode(&self) -> PoolMode {
        // Serialized with FIFO picks: the pool must be deterministic for
        // the enumeration to be meaningful.
        PoolMode::Serialized {
            lookahead: 1,
            max_delay: VDur::ZERO,
        }
    }

    fn demux_done(&self) -> bool {
        // De-multiplexed completions are individually delayable events.
        true
    }

    fn on_timer(&mut self) -> TimerVerdict {
        if self.take_opportunity() {
            TimerVerdict::Defer {
                delay: VDur::millis(1),
            }
        } else {
            TimerVerdict::Run
        }
    }

    fn defer_ready(&mut self, _entry: &ReadyEntry) -> bool {
        self.take_opportunity()
    }

    fn defer_close(&mut self) -> bool {
        // Close events are covered through the ready/timer opportunities;
        // keeping them undelayed keeps the opportunity indices stable.
        false
    }

    fn fork_box(&self) -> Option<Box<dyn Scheduler>> {
        Some(Box::new(self.clone()))
    }
}

/// Runs an exploration over `ids` schedules, returning for each id whether
/// `oracle` deemed the run's report a manifestation, stopping early at the
/// first hit.
///
/// This is the systematic analogue of seed-hunting with the random fuzzer.
pub fn explore<R>(
    ids: std::ops::Range<u64>,
    delay_budget: u32,
    mut run_one: impl FnMut(SystematicScheduler) -> R,
    mut oracle: impl FnMut(&R) -> bool,
) -> Option<(u64, R)> {
    for id in ids {
        let sched = SystematicScheduler::new(id, delay_budget);
        let result = run_one(sched);
        if oracle(&result) {
            return Some((id, result));
        }
    }
    None
}

/// Counters from a pruned exploration (see [`explore_pruned`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Schedules actually executed.
    pub explored: u64,
    /// Schedules skipped as provably identical to an executed one.
    pub skipped: u64,
}

/// [`explore`] with sleep-set-style pruning of redundant ids.
///
/// A run that consulted `k` delay opportunities read only the low `k` bits
/// of its `schedule_id`; every later id agreeing on those bits would
/// re-execute the *identical* schedule, so it is skipped without running.
/// The outcome (first oracle hit or exhaustion) is exactly [`explore`]'s —
/// a skipped id's representative was already executed and judged — but the
/// number of runs can shrink dramatically when programs consult few
/// opportunities.
///
/// The explored-prefix list is scanned linearly per id, which is the right
/// trade for enumeration ranges in the thousands; callers walking much
/// larger ranges should shard them.
pub fn explore_pruned<R>(
    ids: std::ops::Range<u64>,
    delay_budget: u32,
    mut run_one: impl FnMut(SystematicScheduler) -> R,
    mut oracle: impl FnMut(&R) -> bool,
) -> (Option<(u64, R)>, PruneStats) {
    // Explored (bits, mask) pairs: any id with `id & mask == bits` is
    // schedule-identical to an already-executed run.
    let mut seen: Vec<(u64, u64)> = Vec::new();
    let mut stats = PruneStats::default();
    for id in ids {
        if seen.iter().any(|&(bits, mask)| id & mask == bits) {
            stats.skipped += 1;
            continue;
        }
        let (sched, probe) = SystematicScheduler::probed(id, delay_budget);
        let result = run_one(sched);
        stats.explored += 1;
        let mask = probe.decided_mask();
        seen.push((id & mask, mask));
        if oracle(&result) {
            return (Some((id, result)), stats);
        }
    }
    (None, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::{EventLoop, LoopConfig};
    use std::collections::HashSet;

    fn run_id(schedule_id: u64) -> nodefz_rt::RunReport {
        let sched = SystematicScheduler::new(schedule_id, 6);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(17), Box::new(sched));
        el.enter(|cx| {
            for i in 1..5u64 {
                cx.set_timeout(VDur::micros(i * 400), move |cx| {
                    cx.submit_work(
                        VDur::micros(150 + i * 41),
                        |_| (),
                        |cx, ()| {
                            cx.set_immediate(|_| {});
                        },
                    )
                    .unwrap();
                });
            }
        });
        el.run()
    }

    #[test]
    fn id_zero_is_the_undelayed_schedule() {
        let mut s = SystematicScheduler::new(0, 8);
        for _ in 0..100 {
            assert_eq!(s.on_timer(), TimerVerdict::Run);
        }
        assert_eq!(s.delays_used(), 0);
    }

    #[test]
    fn enumeration_is_deterministic() {
        for id in [0u64, 1, 5, 0b1010] {
            let a = run_id(id);
            let b = run_id(id);
            assert_eq!(a.schedule, b.schedule, "id {id}");
            assert_eq!(a.end_time, b.end_time);
        }
    }

    #[test]
    fn enumeration_covers_multiple_distinct_schedules() {
        let schedules: HashSet<_> = (0..16).map(|id| run_id(id).schedule).collect();
        assert!(
            schedules.len() >= 4,
            "expected several distinct schedules, got {}",
            schedules.len()
        );
    }

    #[test]
    fn budget_caps_delays() {
        let mut s = SystematicScheduler::new(u64::MAX, 3);
        let mut deferred = 0;
        for _ in 0..50 {
            if matches!(s.on_timer(), TimerVerdict::Defer { .. }) {
                deferred += 1;
            }
        }
        assert_eq!(deferred, 3);
        assert_eq!(s.delays_used(), 3);
    }

    #[test]
    fn all_work_still_completes_under_any_id() {
        for id in 0..32 {
            let report = run_id(id);
            assert_eq!(report.pool.completed, 4, "id {id}");
            assert!(!report.crashed());
        }
    }

    #[test]
    fn probe_reports_consulted_opportunities() {
        let (sched, probe) = SystematicScheduler::probed(0b101, 8);
        assert_eq!(probe.consulted(), 0);
        assert_eq!(probe.decided_mask(), 0);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(17), Box::new(sched));
        el.enter(|cx| {
            for i in 1..5u64 {
                cx.set_timeout(VDur::micros(i * 400), move |cx| {
                    cx.submit_work(VDur::micros(150), |_| (), |_, ()| {})
                        .unwrap();
                });
            }
        });
        el.run();
        let k = probe.consulted();
        assert!(k > 0, "the run consulted opportunities");
        assert!(k < 64, "small program consults few opportunities");
        assert_eq!(probe.decided_mask(), (1u64 << k) - 1);
    }

    #[test]
    fn forked_systematic_scheduler_continues_identically() {
        let mut a = SystematicScheduler::new(0b1101_0110, 8);
        for _ in 0..3 {
            let _ = a.on_timer();
        }
        let mut b = a.fork_box().expect("systematic schedulers fork");
        for _ in 0..20 {
            assert_eq!(a.on_timer(), b.on_timer());
        }
    }

    #[test]
    fn pruned_exploration_matches_explore_with_fewer_runs() {
        let budget = 6;
        let ids = 0u64..64;
        let baseline = run_id(0).schedule;
        let mut oracle = |report: &nodefz_rt::RunReport| report.schedule != baseline;
        let plain = explore(ids.clone(), budget, drive, &mut oracle);
        let (pruned, stats) = explore_pruned(ids, budget, drive, &mut oracle);
        // Identical verdict: a skipped id is schedule-identical to an
        // executed representative, so pruning cannot change the first hit.
        assert_eq!(plain.as_ref().map(|(id, _)| *id), pruned.map(|(id, _)| id));
        assert_eq!(
            stats.explored + stats.skipped,
            plain.as_ref().map(|(id, _)| id + 1).unwrap_or(64)
        );

        fn drive(sched: SystematicScheduler) -> nodefz_rt::RunReport {
            let mut el = EventLoop::with_scheduler(LoopConfig::seeded(17), Box::new(sched));
            el.enter(|cx| {
                for i in 1..5u64 {
                    cx.set_timeout(VDur::micros(i * 400), move |cx| {
                        cx.submit_work(
                            VDur::micros(150 + i * 41),
                            |_| (),
                            |cx, ()| {
                                cx.set_immediate(|_| {});
                            },
                        )
                        .unwrap();
                    });
                }
            });
            el.run()
        }
    }

    #[test]
    fn pruning_skips_ids_beyond_the_consulted_bits() {
        // A single timer consults one opportunity per (re-deferred) firing:
        // only ids of the form 0b1…1 reach a fresh opportunity, so of 32
        // ids at most 6 distinct schedules exist and the rest are skipped.
        let run = |sched: SystematicScheduler| {
            let mut el = EventLoop::with_scheduler(LoopConfig::seeded(3), Box::new(sched));
            el.enter(|cx| {
                cx.set_timeout(VDur::millis(1), |cx| cx.report_error("t", ""));
            });
            el.run()
        };
        let (hit, stats) = explore_pruned(0..32, 4, run, |_| false);
        assert!(hit.is_none());
        assert_eq!(stats.explored + stats.skipped, 32);
        assert!(
            stats.explored <= 6,
            "all-ones prefixes only, got {} explored",
            stats.explored
        );
        assert!(stats.skipped >= 26);
    }

    #[test]
    fn explore_finds_a_matching_schedule() {
        // Hunt for any schedule whose type sequence differs from id 0's.
        let baseline = run_id(0).schedule;
        let found = explore(
            0..32,
            6,
            |sched| {
                let mut el = EventLoop::with_scheduler(LoopConfig::seeded(17), Box::new(sched));
                el.enter(|cx| {
                    for i in 1..5u64 {
                        cx.set_timeout(VDur::micros(i * 400), move |cx| {
                            cx.submit_work(
                                VDur::micros(150 + i * 41),
                                |_| (),
                                |cx, ()| {
                                    cx.set_immediate(|_| {});
                                },
                            )
                            .unwrap();
                        });
                    }
                });
                el.run()
            },
            |report| report.schedule != baseline,
        );
        assert!(found.is_some(), "some delayed schedule must differ");
        assert!(found.expect("checked").0 > 0, "id 0 is the baseline itself");
    }
}
