//! Systematic (delay-bounded) schedule exploration.
//!
//! The paper observes that systematic testing of multi-threaded and
//! asynchronous-reactive programs is an alternative to randomized fuzzing,
//! and that "because it controls all points of non-determinism in Node.js,
//! Node.fz can also enable more systematic exploration" (§6). This module
//! realises that: a deterministic scheduler that enumerates schedules by a
//! *delay budget*, in the spirit of delay-bounded scheduling (Emmi et al.,
//! PoPL'11, the paper's citation [19]).
//!
//! A schedule is identified by a `schedule_id`: its bits decide, at each of
//! the first 64 *delay opportunities* (an expired timer about to run or a
//! ready descriptor about to be dispatched), whether to insert one delay.
//! `schedule_id = 0` is the undelayed schedule; enumerating ids 0..N walks
//! a growing neighbourhood of it. The total number of delays is capped by
//! `delay_budget`, which bounds the distance from the natural schedule
//! exactly as delay-bounded scheduling prescribes.

use nodefz_rt::{PoolMode, ReadyEntry, Scheduler, TimerVerdict, VDur};

/// Deterministic delay-bounded scheduler.
///
/// # Examples
///
/// ```
/// use nodefz::SystematicScheduler;
/// use nodefz_rt::{EventLoop, LoopConfig, VDur};
///
/// // Enumerate 8 schedules of the same program.
/// let mut distinct = std::collections::HashSet::new();
/// for schedule_id in 0..8 {
///     let sched = SystematicScheduler::new(schedule_id, 4);
///     let mut el = EventLoop::with_scheduler(LoopConfig::seeded(5), Box::new(sched));
///     el.enter(|cx| {
///         for i in 1..4u64 {
///             cx.set_timeout(VDur::micros(i * 500), move |cx| {
///                 cx.submit_work(VDur::micros(300), |_| (), |_, ()| {}).unwrap();
///             });
///         }
///     });
///     distinct.insert(el.run().schedule);
/// }
/// assert!(distinct.len() > 1, "delays produce distinct schedules");
/// ```
pub struct SystematicScheduler {
    schedule_id: u64,
    delay_budget: u32,
    opportunity: u32,
    delays_used: u32,
}

impl SystematicScheduler {
    /// Creates the scheduler for one point of the enumeration.
    ///
    /// `schedule_id` selects which delay opportunities fire (bit `i` of the
    /// id delays opportunity `i`); `delay_budget` caps the total number of
    /// delays.
    pub fn new(schedule_id: u64, delay_budget: u32) -> SystematicScheduler {
        SystematicScheduler {
            schedule_id,
            delay_budget,
            opportunity: 0,
            delays_used: 0,
        }
    }

    /// Delays inserted so far in this run.
    pub fn delays_used(&self) -> u32 {
        self.delays_used
    }

    fn take_opportunity(&mut self) -> bool {
        if self.delays_used >= self.delay_budget {
            return false;
        }
        let bit = self.opportunity;
        self.opportunity = self.opportunity.saturating_add(1);
        if bit >= 64 {
            return false;
        }
        let delay = (self.schedule_id >> bit) & 1 == 1;
        if delay {
            self.delays_used += 1;
        }
        delay
    }
}

impl Scheduler for SystematicScheduler {
    fn name(&self) -> &'static str {
        "systematic"
    }

    fn pool_mode(&self) -> PoolMode {
        // Serialized with FIFO picks: the pool must be deterministic for
        // the enumeration to be meaningful.
        PoolMode::Serialized {
            lookahead: 1,
            max_delay: VDur::ZERO,
        }
    }

    fn demux_done(&self) -> bool {
        // De-multiplexed completions are individually delayable events.
        true
    }

    fn on_timer(&mut self) -> TimerVerdict {
        if self.take_opportunity() {
            TimerVerdict::Defer {
                delay: VDur::millis(1),
            }
        } else {
            TimerVerdict::Run
        }
    }

    fn defer_ready(&mut self, _entry: &ReadyEntry) -> bool {
        self.take_opportunity()
    }

    fn defer_close(&mut self) -> bool {
        // Close events are covered through the ready/timer opportunities;
        // keeping them undelayed keeps the opportunity indices stable.
        false
    }
}

/// Runs an exploration over `ids` schedules, returning for each id whether
/// `oracle` deemed the run's report a manifestation, stopping early at the
/// first hit.
///
/// This is the systematic analogue of seed-hunting with the random fuzzer.
pub fn explore<R>(
    ids: std::ops::Range<u64>,
    delay_budget: u32,
    mut run_one: impl FnMut(SystematicScheduler) -> R,
    mut oracle: impl FnMut(&R) -> bool,
) -> Option<(u64, R)> {
    for id in ids {
        let sched = SystematicScheduler::new(id, delay_budget);
        let result = run_one(sched);
        if oracle(&result) {
            return Some((id, result));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::{EventLoop, LoopConfig};
    use std::collections::HashSet;

    fn run_id(schedule_id: u64) -> nodefz_rt::RunReport {
        let sched = SystematicScheduler::new(schedule_id, 6);
        let mut el = EventLoop::with_scheduler(LoopConfig::seeded(17), Box::new(sched));
        el.enter(|cx| {
            for i in 1..5u64 {
                cx.set_timeout(VDur::micros(i * 400), move |cx| {
                    cx.submit_work(
                        VDur::micros(150 + i * 41),
                        |_| (),
                        |cx, ()| {
                            cx.set_immediate(|_| {});
                        },
                    )
                    .unwrap();
                });
            }
        });
        el.run()
    }

    #[test]
    fn id_zero_is_the_undelayed_schedule() {
        let mut s = SystematicScheduler::new(0, 8);
        for _ in 0..100 {
            assert_eq!(s.on_timer(), TimerVerdict::Run);
        }
        assert_eq!(s.delays_used(), 0);
    }

    #[test]
    fn enumeration_is_deterministic() {
        for id in [0u64, 1, 5, 0b1010] {
            let a = run_id(id);
            let b = run_id(id);
            assert_eq!(a.schedule, b.schedule, "id {id}");
            assert_eq!(a.end_time, b.end_time);
        }
    }

    #[test]
    fn enumeration_covers_multiple_distinct_schedules() {
        let schedules: HashSet<_> = (0..16).map(|id| run_id(id).schedule).collect();
        assert!(
            schedules.len() >= 4,
            "expected several distinct schedules, got {}",
            schedules.len()
        );
    }

    #[test]
    fn budget_caps_delays() {
        let mut s = SystematicScheduler::new(u64::MAX, 3);
        let mut deferred = 0;
        for _ in 0..50 {
            if matches!(s.on_timer(), TimerVerdict::Defer { .. }) {
                deferred += 1;
            }
        }
        assert_eq!(deferred, 3);
        assert_eq!(s.delays_used(), 3);
    }

    #[test]
    fn all_work_still_completes_under_any_id() {
        for id in 0..32 {
            let report = run_id(id);
            assert_eq!(report.pool.completed, 4, "id {id}");
            assert!(!report.crashed());
        }
    }

    #[test]
    fn explore_finds_a_matching_schedule() {
        // Hunt for any schedule whose type sequence differs from id 0's.
        let baseline = run_id(0).schedule;
        let found = explore(
            0..32,
            6,
            |sched| {
                let mut el = EventLoop::with_scheduler(LoopConfig::seeded(17), Box::new(sched));
                el.enter(|cx| {
                    for i in 1..5u64 {
                        cx.set_timeout(VDur::micros(i * 400), move |cx| {
                            cx.submit_work(
                                VDur::micros(150 + i * 41),
                                |_| (),
                                |cx, ()| {
                                    cx.set_immediate(|_| {});
                                },
                            )
                            .unwrap();
                        });
                    }
                });
                el.run()
            },
            |report| report.schedule != baseline,
        );
        assert!(found.is_some(), "some delayed schedule must differ");
        assert!(found.expect("checked").0 > 0, "id 0 is the baseline itself");
    }
}
