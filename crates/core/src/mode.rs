//! Runtime versions under test (§5.1 of the paper).
//!
//! The paper compares three builds: `nodeV` (vanilla Node.js), `nodeNFZ`
//! (Node.fz compiled in but parameterized to make no fuzzing decisions — it
//! still serializes the pool and de-multiplexes the done queue, so its
//! schedule space differs slightly from vanilla), and `nodeFZ` (Node.fz with
//! the standard parameterization). [`Mode`] reifies that choice plus the
//! guided and custom parameterizations used in §5.2.3 and the ablations.

use nodefz_rt::{EventLoop, LoopConfig, LoopPool, Scheduler, VanillaScheduler};

use crate::directed::{DirectedScheduler, DirectedSpec};
use crate::fork::{ForkScheduler, ForkSpec};
use crate::params::FuzzParams;
use crate::replay::{
    DecisionTrace, RecordingScheduler, ReplayScheduler, ReplayStatusHandle, TraceHandle,
};
use crate::scheduler::FuzzScheduler;

/// Which runtime build executes a program.
#[derive(Clone, Debug, PartialEq)]
pub enum Mode {
    /// Vanilla Node.js: libuv-faithful scheduler, concurrent pool,
    /// multiplexed done queue.
    Vanilla,
    /// Node.fz infrastructure with no fuzzing ([`FuzzParams::none`]).
    NoFuzz,
    /// Node.fz with the standard parameterization (§5.1.2).
    Fuzz,
    /// Node.fz with the guided accurate-timer parameterization (§5.2.3).
    Guided,
    /// Node.fz with explicit parameters (sweeps, ablations).
    Custom(FuzzParams),
    /// Node.fz with explicit parameters, recording every scheduling
    /// decision into the shared [`TraceHandle`] for later replay or
    /// shrinking (§6, systematic exploration).
    Record(FuzzParams, TraceHandle),
    /// Re-applies a recorded [`DecisionTrace`] decision-for-decision,
    /// reporting divergence through the shared [`ReplayStatusHandle`].
    Replay(DecisionTrace, ReplayStatusHandle),
    /// Race-directed scheduling: replays the spec's recorded prefix up to
    /// its cut, forces the flipped order for a window, then fuzzes. The
    /// run is recorded into the [`TraceHandle`] so a confirmed race
    /// becomes a replayable repro.
    Directed(DirectedSpec, TraceHandle),
    /// Prefix-forked fuzzing: replays the spec's decision prefix verbatim,
    /// steers the first fresh decision away from the spec's avoid set,
    /// then fuzzes (schedule-space pruning — see [`crate::ForkScheduler`]).
    Forked(ForkSpec),
}

impl Mode {
    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Vanilla => "nodeV",
            Mode::NoFuzz => "nodeNFZ",
            Mode::Fuzz => "nodeFZ",
            Mode::Guided => "nodeFZ(guided)",
            Mode::Custom(_) => "nodeFZ(custom)",
            Mode::Record(..) => "nodeFZ(record)",
            Mode::Replay(..) => "replay",
            Mode::Directed(..) => "nodeFZ(directed)",
            Mode::Forked(..) => "nodeFZ(forked)",
        }
    }

    /// The parameters this mode runs with (`None` for vanilla).
    pub fn params(&self) -> Option<FuzzParams> {
        match self {
            Mode::Vanilla => None,
            Mode::NoFuzz => Some(FuzzParams::none()),
            Mode::Fuzz => Some(FuzzParams::standard()),
            Mode::Guided => Some(FuzzParams::guided_accurate_timers()),
            Mode::Custom(p) => Some(p.clone()),
            Mode::Record(p, _) => Some(p.clone()),
            Mode::Replay(..) => None,
            // The directed suffix runs the standard parameterization.
            Mode::Directed(..) => Some(FuzzParams::standard()),
            Mode::Forked(spec) => Some(spec.params.clone()),
        }
    }

    /// Builds the scheduler for this mode.
    pub fn scheduler(&self, sched_seed: u64) -> Box<dyn Scheduler> {
        match self {
            Mode::Record(p, handle) => Box::new(RecordingScheduler::with_handle(
                FuzzScheduler::new(p.clone(), sched_seed),
                handle,
            )),
            Mode::Replay(trace, status) => {
                Box::new(ReplayScheduler::attached(trace.clone(), status.clone()))
            }
            Mode::Directed(spec, handle) => Box::new(RecordingScheduler::with_handle(
                DirectedScheduler::new(spec.clone(), sched_seed),
                handle,
            )),
            Mode::Forked(spec) => Box::new(ForkScheduler::attached(spec, sched_seed)),
            _ => match self.params() {
                None => Box::new(VanillaScheduler::new()),
                Some(p) => Box::new(FuzzScheduler::new(p, sched_seed)),
            },
        }
    }

    /// Builds an event loop for this mode.
    ///
    /// `cfg.env_seed` controls the modelled environment; `sched_seed`
    /// controls the fuzzer's decisions (ignored by [`Mode::Vanilla`]).
    pub fn build_loop(&self, cfg: LoopConfig, sched_seed: u64) -> EventLoop {
        EventLoop::with_scheduler(cfg, self.scheduler(sched_seed))
    }

    /// [`build_loop`], recycling loop state through `pool`.
    ///
    /// Behaves identically to [`build_loop`] — a pooled loop is reset to
    /// exactly the state a fresh one would have — but reuses the pool's
    /// heap buffers, which matters when a campaign worker executes
    /// thousands of sub-millisecond runs. The loop returns its state to
    /// the pool on drop.
    ///
    /// [`build_loop`]: Mode::build_loop
    pub fn build_loop_pooled(
        &self,
        cfg: LoopConfig,
        sched_seed: u64,
        pool: &LoopPool,
    ) -> EventLoop {
        EventLoop::with_scheduler_pooled(cfg, self.scheduler(sched_seed), pool)
    }

    /// The three headline modes of Figure 6, in presentation order.
    pub fn headline() -> [Mode; 3] {
        [Mode::Vanilla, Mode::NoFuzz, Mode::Fuzz]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodefz_rt::VDur;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Mode::Vanilla.label(), "nodeV");
        assert_eq!(Mode::NoFuzz.label(), "nodeNFZ");
        assert_eq!(Mode::Fuzz.label(), "nodeFZ");
        assert_eq!(Mode::Guided.label(), "nodeFZ(guided)");
    }

    #[test]
    fn params_mapping() {
        assert_eq!(Mode::Vanilla.params(), None);
        assert_eq!(Mode::NoFuzz.params(), Some(FuzzParams::none()));
        assert_eq!(Mode::Fuzz.params(), Some(FuzzParams::standard()));
        let custom = FuzzParams::standard().without_demux();
        assert_eq!(Mode::Custom(custom.clone()).params(), Some(custom));
    }

    #[test]
    fn build_loop_runs_a_program_in_every_mode() {
        for mode in [Mode::Vanilla, Mode::NoFuzz, Mode::Fuzz, Mode::Guided] {
            let mut el = mode.build_loop(LoopConfig::seeded(5), 9);
            el.enter(|cx| {
                cx.set_timeout(VDur::millis(1), |cx| {
                    cx.submit_work(
                        VDur::millis(1),
                        |_| 7u8,
                        |cx, v| {
                            assert_eq!(v, 7);
                            cx.report_error("ok", "");
                        },
                    )
                    .unwrap();
                });
            });
            let report = el.run();
            assert!(report.has_error("ok"), "mode {} failed", mode.label());
        }
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(Mode::Vanilla.scheduler(0).name(), "vanilla");
        assert_eq!(Mode::Fuzz.scheduler(0).name(), "nodefz");
        let handle = crate::TraceHandle::fresh();
        assert_eq!(
            Mode::Record(FuzzParams::standard(), handle)
                .scheduler(0)
                .name(),
            "recording"
        );
    }

    #[test]
    fn record_mode_then_replay_mode_reproduces_the_schedule() {
        fn program(el: &mut EventLoop) {
            el.enter(|cx| {
                for i in 1..6u64 {
                    cx.set_timeout(VDur::micros(i * 173), move |cx| {
                        cx.submit_work(VDur::micros(90), |_| (), |_, ()| {})
                            .unwrap();
                    });
                }
            });
        }
        let handle = crate::TraceHandle::fresh();
        let mode = Mode::Record(FuzzParams::standard(), handle.clone());
        let mut el = mode.build_loop(LoopConfig::seeded(7), 21);
        program(&mut el);
        let original = el.run();

        let status = crate::ReplayStatusHandle::fresh();
        let mode = Mode::Replay(handle.snapshot(), status.clone());
        assert_eq!(mode.label(), "replay");
        assert_eq!(mode.params(), None);
        let mut el = mode.build_loop(LoopConfig::seeded(7), 0);
        program(&mut el);
        let replayed = el.run();

        assert_eq!(original.schedule, replayed.schedule);
        assert_eq!(original.end_time, replayed.end_time);
        status.verdict().expect("faithful replay");
    }
}
