//! # nodefz — a schedule fuzzer for the server-side event-driven architecture
//!
//! A Rust reproduction of *Node.fz: Fuzzing the Server-Side Event-Driven
//! Architecture* (Davis, Thekumparampil, Lee — EuroSys 2017).
//!
//! Node.fz perturbs the execution of an event-driven program so that the
//! same test input explores many more event schedules, manifesting
//! atomicity violations, ordering violations and commutative ordering
//! violations that the stock runtime hides. It makes only *legal*
//! perturbations — reorderings the platform documentation already permits —
//! so a correct program behaves identically (§4.4, "fidelity").
//!
//! The fuzzer controls four sources of nondeterminism (§4.3):
//!
//! * **Timers** — expired timers are probabilistically deferred; deferral
//!   short-circuits the timer phase (preserving the undocumented
//!   {timeout, registration} order real suites rely on) and injects a 5 ms
//!   delay.
//! * **Epoll results** — the ready list is shuffled with a bounded
//!   "degrees of freedom" distance and individual entries are deferred.
//! * **Worker-pool task queue** — the pool is serialized to one simulated
//!   worker that waits (up to a bound) for the queue to fill, then picks a
//!   task at random within the lookahead window.
//! * **Worker-pool done queue** — completions are de-multiplexed onto
//!   per-task descriptors so the scheduler can interleave done callbacks
//!   with any other event.
//!
//! ## Quickstart
//!
//! ```
//! use nodefz::{FuzzParams, Mode};
//! use nodefz_rt::{LoopConfig, VDur};
//!
//! // Run the same program under vanilla and fuzzed schedulers.
//! for mode in [Mode::Vanilla, Mode::Fuzz] {
//!     let mut el = mode.build_loop(LoopConfig::seeded(1), /*sched_seed*/ 7);
//!     el.enter(|cx| {
//!         cx.set_timeout(VDur::millis(1), |cx| cx.report_error("tick", ""));
//!     });
//!     assert!(el.run().has_error("tick"));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod directed;
mod fork;
mod mode;
mod params;
mod replay;
mod scheduler;
mod systematic;

pub use codec::{decode_trace, encode_trace, TraceDecodeError};
pub use directed::{DirectedScheduler, DirectedSpec};
pub use fork::{decision_fingerprint, AvoidSet, ForkScheduler, ForkSpec, ForkStatusHandle};
pub use mode::Mode;
pub use params::FuzzParams;
pub use replay::{
    Decision, DecisionTrace, Perm, RecordingScheduler, ReplayDivergence, ReplayError,
    ReplayScheduler, ReplayStatusHandle, TraceFormatError, TraceHandle,
};
pub use scheduler::{FuzzScheduler, FuzzStats};
pub use systematic::{explore, explore_pruned, OpportunityProbe, PruneStats, SystematicScheduler};
