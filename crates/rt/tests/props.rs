//! Property-based tests for the runtime's core invariants, driven by the
//! seeded `nodefz-check` harness.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_check::forall;
use nodefz_rt::{EventLoop, LoopConfig, Rng, Termination, VDur, VTime};

#[test]
fn rng_below_stays_in_range() {
    forall("rng_below_stays_in_range", 64, |g| {
        let mut rng = Rng::new(g.u64());
        let bound = g.range(1, 1_000_000);
        for _ in 0..100 {
            assert!(rng.below(bound) < bound);
        }
    });
}

#[test]
fn rng_range_stays_in_range() {
    forall("rng_range_stays_in_range", 64, |g| {
        let mut rng = Rng::new(g.u64());
        let lo = g.below(1000);
        let hi = lo + g.range(1, 1000);
        for _ in 0..100 {
            let v = rng.range(lo, hi);
            assert!((lo..hi).contains(&v));
        }
    });
}

#[test]
fn rng_unit_is_in_unit_interval() {
    forall("rng_unit_is_in_unit_interval", 64, |g| {
        let mut rng = Rng::new(g.u64());
        for _ in 0..100 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    });
}

#[test]
fn shuffle_bounded_is_permutation_with_bounded_moves() {
    forall(
        "shuffle_bounded_is_permutation_with_bounded_moves",
        96,
        |g| {
            let mut rng = Rng::new(g.u64());
            let len = g.range_usize(0, 64);
            let dist = g.range_usize(0, 16);
            let mut v: Vec<usize> = (0..len).collect();
            rng.shuffle_bounded(&mut v, dist);
            // Permutation.
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..len).collect::<Vec<_>>());
            // Bounded displacement.
            for (pos, &orig) in v.iter().enumerate() {
                assert!(pos.abs_diff(orig) <= dist);
            }
        },
    );
}

#[test]
fn jitter_respects_bounds() {
    forall("jitter_respects_bounds", 64, |g| {
        let mut rng = Rng::new(g.u64());
        let base = VDur::micros(g.range(1, 100_000));
        let j = g.unit();
        for _ in 0..50 {
            let out = rng.jitter(base, j);
            assert!(!out.is_zero());
            let lo = base.mul_f64((1.0 - j).max(0.0));
            let hi = base.mul_f64(1.0 + j);
            assert!(out >= lo.min(VDur::nanos(1).max(lo)) || out == VDur::nanos(1));
            assert!(out <= hi + VDur::nanos(1));
        }
    });
}

#[test]
fn chance_pct_is_monotone_in_aggregate() {
    forall("chance_pct_is_monotone_in_aggregate", 32, |g| {
        // Higher percentages fire at least as often on the same stream
        // length (statistically; generous tolerance).
        let seed = g.u64();
        let count = |pct: f64| {
            let mut rng = Rng::new(seed);
            (0..2_000).filter(|_| rng.chance_pct(pct)).count()
        };
        let low = count(10.0);
        let high = count(70.0);
        assert!(high > low, "low={low} high={high}");
    });
}

#[test]
fn all_timers_fire_exactly_once_never_early() {
    forall("all_timers_fire_exactly_once_never_early", 64, |g| {
        let env_seed = g.u64();
        let deadlines = g.vec_with(1, 20, |g| g.range(1, 50_000));
        let fired: Rc<RefCell<Vec<(usize, VTime)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut el = EventLoop::new(LoopConfig::seeded(env_seed));
        let f = fired.clone();
        let expected: Vec<VTime> = deadlines
            .iter()
            .map(|&us| VTime::ZERO + VDur::micros(us))
            .collect();
        el.enter(move |cx| {
            for (idx, &us) in deadlines.iter().enumerate() {
                let f = f.clone();
                cx.set_timeout(VDur::micros(us), move |cx| {
                    f.borrow_mut().push((idx, cx.now()));
                });
            }
        });
        let report = el.run();
        assert_eq!(report.termination, Termination::Quiescent);
        let fired = fired.borrow();
        assert_eq!(fired.len(), expected.len());
        // Exactly once each, never early.
        let mut seen = vec![false; expected.len()];
        for &(idx, at) in fired.iter() {
            assert!(!seen[idx], "timer {idx} fired twice");
            seen[idx] = true;
            assert!(at >= expected[idx], "timer {idx} fired early");
        }
        // Dispatch order respects deadline order.
        for pair in fired.windows(2) {
            assert!(
                expected[pair[0].0] <= expected[pair[1].0],
                "deadline order violated: {:?}",
                *fired
            );
        }
    });
}

#[test]
fn all_pool_tasks_complete_exactly_once() {
    forall("all_pool_tasks_complete_exactly_once", 64, |g| {
        let env_seed = g.u64();
        let costs = g.vec_with(1, 24, |g| g.range(1, 5_000));
        let done: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let mut el = EventLoop::new(LoopConfig::seeded(env_seed));
        let d = done.clone();
        let n = costs.len();
        el.enter(move |cx| {
            for (idx, &us) in costs.iter().enumerate() {
                let d = d.clone();
                cx.submit_work(
                    VDur::micros(us),
                    move |_| idx,
                    move |_, i| {
                        d.borrow_mut().push(i);
                    },
                )
                .unwrap();
            }
        });
        let report = el.run();
        assert_eq!(report.pool.submitted, n as u64);
        assert_eq!(report.pool.executed, n as u64);
        assert_eq!(report.pool.completed, n as u64);
        let mut got = done.borrow().clone();
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    });
}

#[test]
fn microtasks_run_before_the_next_macrotask() {
    forall("microtasks_run_before_the_next_macrotask", 48, |g| {
        let env_seed = g.u64();
        let ticks = g.range_usize(1, 10);
        let order: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let mut el = EventLoop::new(LoopConfig::seeded(env_seed));
        let o = order.clone();
        el.enter(move |cx| {
            let o1 = o.clone();
            cx.set_timeout(VDur::millis(1), move |cx| {
                o1.borrow_mut().push("macro1".into());
                for t in 0..ticks {
                    let o = o1.clone();
                    cx.next_tick(move |_| o.borrow_mut().push(format!("tick{t}")));
                }
            });
            let o2 = o.clone();
            cx.set_timeout(VDur::millis(1), move |_| {
                o2.borrow_mut().push("macro2".into());
            });
        });
        el.run();
        let order = order.borrow();
        // macro1, tick0..tickN, macro2.
        assert_eq!(order.len(), ticks + 2);
        assert_eq!(&order[0], "macro1");
        assert_eq!(&order[order.len() - 1], "macro2");
        for (t, item) in order[1..order.len() - 1].iter().enumerate() {
            assert_eq!(item, &format!("tick{t}"));
        }
    });
}

#[test]
fn runs_replay_bit_for_bit() {
    forall("runs_replay_bit_for_bit", 32, |g| {
        let env_seed = g.u64();
        let run = || {
            let mut el = EventLoop::new(LoopConfig::seeded(env_seed));
            el.enter(|cx| {
                for i in 1..8u64 {
                    cx.set_timeout(VDur::micros(i * 113), move |cx| {
                        cx.submit_work(VDur::micros(i * 59), |_| (), |_, ()| {})
                            .unwrap();
                    });
                }
            });
            el.run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.iterations, b.iterations);
    });
}
