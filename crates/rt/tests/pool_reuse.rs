//! Regression tests for the `LoopPool` reuse blind spot: a recycled
//! loop state must report zero live handles and watchers, no matter how
//! dirty the previous run left it. `LoopState::reset` debug-asserts this
//! internally; these tests pin the public [`EventLoop::live_counts`]
//! view from the outside.

use nodefz_rt::{
    EvKind, EventLogHandle, EventLoop, FdKind, LiveCounts, LoopConfig, LoopPool, VDur,
};

/// Registers one of everything countable, without running the loop.
fn dirty(el: &mut EventLoop) {
    el.enter(|cx| {
        cx.set_timeout(VDur::millis(5), |_| {});
        cx.set_immediate(|_| {});
        cx.defer_pending(|_| {});
        cx.enqueue_close(|_| {});
        cx.add_idle(|_| {});
        cx.add_prepare(|_| {});
        cx.add_check(|_| {});
        let fd = cx.alloc_fd(FdKind::NetConn).unwrap();
        cx.register_watcher(fd, |_, _| {}).unwrap();
        cx.submit_work(VDur::millis(1), |_| (), |_, ()| {}).unwrap();
        cx.schedule_env(VDur::millis(2), |_| {});
    });
}

#[test]
fn fresh_loop_reports_all_zeros() {
    let el = EventLoop::new(LoopConfig::seeded(1));
    assert!(el.live_counts().is_zero());
    assert_eq!(el.live_counts(), LiveCounts::default());
}

#[test]
fn dirty_loop_reports_every_category() {
    let mut el = EventLoop::new(LoopConfig::seeded(2));
    dirty(&mut el);
    let counts = el.live_counts();
    assert!(!counts.is_zero());
    assert_eq!(counts.timers, 1);
    assert_eq!(counts.immediates, 1);
    assert_eq!(counts.pending, 1);
    assert_eq!(counts.closing, 1);
    assert_eq!(counts.idle, 1);
    assert_eq!(counts.prepare, 1);
    assert_eq!(counts.check, 1);
    assert!(counts.open_fds >= 1, "watcher fd must be open");
    assert_eq!(counts.pool_queued, 1);
    // submit_work's timer-free env event + schedule_env's custom event.
    assert!(counts.env_events >= 1);
    // `enter` drains microtasks on exit, so none are pending here.
    assert_eq!(counts.microtasks, 0);
}

#[test]
fn recycled_state_is_clean_even_after_an_abandoned_run() {
    let pool = LoopPool::new();
    {
        // Dirty a pooled loop and drop it *without running*: everything
        // registered above goes back to the pool still live.
        let mut el = EventLoop::with_scheduler_pooled(
            LoopConfig::seeded(3),
            Box::new(nodefz_rt::VanillaScheduler::new()),
            &pool,
        );
        dirty(&mut el);
        assert!(!el.live_counts().is_zero());
    }
    assert!(pool.is_primed());
    // Taking the state back must fully reset it (the debug build also
    // asserts this inside `LoopState::reset`).
    let el = EventLoop::with_scheduler_pooled(
        LoopConfig::seeded(4),
        Box::new(nodefz_rt::VanillaScheduler::new()),
        &pool,
    );
    assert!(
        el.live_counts().is_zero(),
        "recycled loop leaked state: {:?}",
        el.live_counts()
    );
}

#[test]
fn recycled_state_is_clean_after_a_completed_run() {
    let pool = LoopPool::new();
    {
        let mut el = EventLoop::with_scheduler_pooled(
            LoopConfig::seeded(5),
            Box::new(nodefz_rt::VanillaScheduler::new()),
            &pool,
        );
        el.enter(|cx| {
            cx.set_timeout(VDur::millis(1), |cx| {
                cx.submit_work(VDur::millis(1), |_| 3u8, |_, _| {}).unwrap();
            });
        });
        let report = el.run();
        assert_eq!(report.pool.completed, 1);
    }
    let el = EventLoop::with_scheduler_pooled(
        LoopConfig::seeded(6),
        Box::new(nodefz_rt::VanillaScheduler::new()),
        &pool,
    );
    assert!(el.live_counts().is_zero());
}

/// Recycling a loop state must also clear any attached event log: the
/// handle is shared, so a stale log would survive into (and corrupt) the
/// next pooled run's provenance. Records two different programs
/// back-to-back through one pool and checks both logs are exactly what
/// their own run produced.
#[test]
fn recycled_state_clears_the_attached_event_log() {
    let pool = LoopPool::new();

    // Run A: a timer chain, recorded into `log_a`.
    let log_a = EventLogHandle::fresh();
    let snap_a = {
        let mut el = EventLoop::with_scheduler_pooled(
            LoopConfig::seeded(7),
            Box::new(nodefz_rt::VanillaScheduler::new()),
            &pool,
        );
        el.set_event_log(&log_a);
        el.enter(|cx| {
            cx.set_timeout(VDur::millis(1), |cx| {
                cx.touch_write("a-site");
                cx.set_timeout(VDur::millis(1), |_| {});
            });
        });
        el.run();
        // Snapshot *before* the state is recycled: reset clears the handle.
        log_a.snapshot()
    };
    // (el dropped; its state — with log_a still attached — sits in the pool.)
    assert!(
        snap_a.events.len() >= 2,
        "run A recorded nothing: {snap_a:?}"
    );

    // Run B: a different program (pool work, different site) through the
    // same pool with its own log. Taking the state back resets it, which
    // must clear run A's handle.
    let log_b = EventLogHandle::fresh();
    let mut el = EventLoop::with_scheduler_pooled(
        LoopConfig::seeded(8),
        Box::new(nodefz_rt::VanillaScheduler::new()),
        &pool,
    );
    assert!(
        log_a.snapshot().events.is_empty(),
        "recycling must clear the previously attached event log"
    );
    el.set_event_log(&log_b);
    el.enter(|cx| {
        cx.submit_work(VDur::millis(1), |_| (), |cx, ()| cx.touch_write("b-site"))
            .unwrap();
    });
    el.run();
    let snap_b = log_b.snapshot();

    // Each log describes only its own program.
    assert!(snap_a.sites.iter().any(|s| s == "a-site"));
    assert!(!snap_a.sites.iter().any(|s| s == "b-site"));
    assert!(snap_b.sites.iter().any(|s| s == "b-site"));
    assert!(!snap_b.sites.iter().any(|s| s == "a-site"));
    assert!(snap_b
        .events
        .iter()
        .any(|e| matches!(e.kind, EvKind::Cb(nodefz_rt::CbKind::PoolDone))));
    assert!(!snap_a
        .events
        .iter()
        .any(|e| matches!(e.kind, EvKind::Cb(nodefz_rt::CbKind::PoolDone))));
}
