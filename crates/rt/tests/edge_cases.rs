//! Edge-case tests for the runtime: reentrant cancellation, close-phase
//! corners, pool pressure, and descriptor lifecycle.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_rt::{EventLoop, FdKind, LoopConfig, Termination, VDur, VTime};

#[test]
fn timer_can_cancel_another_expired_timer() {
    // Two timers with the same deadline: the first cancels the second
    // before it runs — even though both were already expired.
    let fired = Rc::new(RefCell::new(Vec::new()));
    let mut el = EventLoop::new(LoopConfig::seeded(1));
    let f = fired.clone();
    el.enter(move |cx| {
        let f2 = f.clone();
        let victim = Rc::new(RefCell::new(None));
        let v = victim.clone();
        let first = cx.set_timeout(VDur::millis(1), move |cx| {
            f2.borrow_mut().push("first");
            if let Some(id) = *v.borrow() {
                assert!(cx.clear_timer(id));
            }
        });
        let _ = first;
        let f3 = f.clone();
        let second = cx.set_timeout(VDur::millis(1), move |_| {
            f3.borrow_mut().push("second");
        });
        *victim.borrow_mut() = Some(second);
    });
    el.run();
    assert_eq!(*fired.borrow(), vec!["first"]);
}

#[test]
fn interval_cancelling_itself_on_first_tick() {
    let ticks = Rc::new(RefCell::new(0u32));
    let mut el = EventLoop::new(LoopConfig::seeded(2));
    let t = ticks.clone();
    el.enter(move |cx| {
        let id = Rc::new(RefCell::new(None));
        let id2 = id.clone();
        let t2 = t.clone();
        let tid = cx.set_interval(VDur::millis(1), move |cx| {
            *t2.borrow_mut() += 1;
            cx.clear_timer(id2.borrow().expect("set below"));
        });
        *id.borrow_mut() = Some(tid);
    });
    let report = el.run();
    assert_eq!(*ticks.borrow(), 1);
    assert_eq!(report.termination, Termination::Quiescent);
}

#[test]
fn close_callback_enqueuing_another_close() {
    let order = Rc::new(RefCell::new(Vec::new()));
    let mut el = EventLoop::new(LoopConfig::seeded(3));
    let o = order.clone();
    el.enter(move |cx| {
        let o1 = o.clone();
        cx.enqueue_close(move |cx| {
            o1.borrow_mut().push("outer");
            let o2 = o1.clone();
            cx.enqueue_close(move |_| o2.borrow_mut().push("inner"));
        });
    });
    let report = el.run();
    assert_eq!(*order.borrow(), vec!["outer", "inner"]);
    assert_eq!(report.termination, Termination::Quiescent);
}

#[test]
fn pool_task_submitting_more_tasks() {
    // A task's done callback submits two more, three levels deep.
    let count = Rc::new(RefCell::new(0u32));
    let mut el = EventLoop::new(LoopConfig::seeded(4));
    let c = count.clone();
    fn spawn(cx: &mut nodefz_rt::Ctx<'_>, depth: u32, count: Rc<RefCell<u32>>) {
        cx.submit_work(
            VDur::micros(100),
            |_| (),
            move |cx, ()| {
                *count.borrow_mut() += 1;
                if depth > 0 {
                    spawn(cx, depth - 1, count.clone());
                    spawn(cx, depth - 1, count.clone());
                }
            },
        )
        .unwrap();
    }
    el.enter(move |cx| spawn(cx, 3, c));
    let report = el.run();
    // 1 + 2 + 4 + 8 = 15 completions.
    assert_eq!(*count.borrow(), 15);
    assert_eq!(report.pool.completed, 15);
}

#[test]
fn closing_an_fd_inside_its_own_watcher() {
    let hits = Rc::new(RefCell::new(0u32));
    let mut el = EventLoop::new(LoopConfig::seeded(5));
    let h = hits.clone();
    el.enter(move |cx| {
        let fd = cx.alloc_fd(FdKind::Other).unwrap();
        let h2 = h.clone();
        cx.register_watcher(fd, move |cx, fd| {
            *h2.borrow_mut() += 1;
            cx.close_fd(fd).unwrap();
        })
        .unwrap();
        // Two marks: only the first dispatch survives; the second entry
        // was dropped when the fd closed.
        cx.schedule_env(VDur::millis(1), move |cx| {
            let _ = cx.mark_ready(fd);
            let _ = cx.mark_ready(fd);
        });
    });
    let report = el.run();
    assert_eq!(*hits.borrow(), 1);
    assert_eq!(report.termination, Termination::Quiescent);
}

#[test]
fn stop_inside_microtask_halts_promptly() {
    let after = Rc::new(RefCell::new(false));
    let mut el = EventLoop::new(LoopConfig::seeded(6));
    let a = after.clone();
    el.enter(move |cx| {
        let a2 = a.clone();
        cx.set_timeout(VDur::millis(1), move |cx| {
            cx.next_tick(|cx| cx.stop());
            let a3 = a2.clone();
            cx.next_tick(move |_| *a3.borrow_mut() = true);
        });
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Stopped);
    assert!(!*after.borrow(), "microtasks after stop() do not run");
}

#[test]
fn zero_delay_timer_runs_once_not_hot() {
    let mut el = EventLoop::new(LoopConfig::seeded(7));
    el.enter(|cx| {
        cx.set_timeout(VDur::ZERO, |cx| cx.report_error("fired", ""));
    });
    let report = el.run();
    assert!(report.has_error("fired"));
    assert_eq!(report.schedule.count(nodefz_rt::CbKind::Timer), 1);
    assert!(report.iterations <= 3, "no hot spin: {}", report.iterations);
}

#[test]
fn zero_period_interval_is_a_busy_timer_not_a_hang() {
    let mut el = EventLoop::new(LoopConfig::seeded(8));
    el.enter(|cx| {
        let ticks = Rc::new(RefCell::new(0u32));
        let t = ticks.clone();
        let id = Rc::new(RefCell::new(None));
        let id2 = id.clone();
        let tid = cx.set_interval(VDur::ZERO, move |cx| {
            let mut n = t.borrow_mut();
            *n += 1;
            if *n >= 100 {
                cx.clear_timer(id2.borrow().expect("set below"));
            }
        });
        *id.borrow_mut() = Some(tid);
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
    assert_eq!(report.schedule.count(nodefz_rt::CbKind::Timer), 100);
}

#[test]
fn env_event_scheduled_in_the_past_runs_now() {
    let mut el = EventLoop::new(LoopConfig::seeded(9));
    el.enter(|cx| {
        cx.set_timeout(VDur::millis(5), |cx| {
            let earlier = VTime::ZERO + VDur::millis(1);
            // Absolute time already passed: clamped to "now".
            cx.schedule_env_at(earlier, |cx| cx.report_error("ran", ""));
        });
    });
    let report = el.run();
    assert!(report.has_error("ran"));
}

#[test]
fn report_counts_match_dispatches() {
    let mut el = EventLoop::new(LoopConfig::seeded(10));
    el.enter(|cx| {
        for i in 1..6u64 {
            cx.set_timeout(VDur::millis(i), |_| {});
        }
        for _ in 0..4 {
            cx.submit_work(VDur::micros(50), |_| (), |_, ()| {})
                .unwrap();
        }
        cx.set_immediate(|_| {});
        cx.defer_pending(|_| {});
    });
    let report = el.run();
    let s = &report.schedule;
    assert_eq!(s.count(nodefz_rt::CbKind::Timer), 5);
    assert_eq!(s.count(nodefz_rt::CbKind::PoolDone), 4);
    assert_eq!(s.count(nodefz_rt::CbKind::PoolTask), 4);
    assert_eq!(s.count(nodefz_rt::CbKind::Check), 1);
    assert_eq!(s.count(nodefz_rt::CbKind::Pending), 1);
    // PoolTask entries are traced but are not loop callbacks; dispatched
    // counts every traced entry.
    assert_eq!(report.dispatched as usize, s.len());
}

#[test]
fn enter_between_runs_extends_the_program() {
    let mut el = EventLoop::new(LoopConfig::seeded(11));
    el.enter(|cx| {
        cx.set_timeout(VDur::millis(1), |cx| cx.report_error("phase1", ""));
    });
    let r1 = el.run();
    assert!(r1.has_error("phase1"));
    // The loop can be re-entered and run again.
    el.enter(|cx| {
        cx.set_timeout(VDur::millis(1), |cx| cx.report_error("phase2", ""));
    });
    let r2 = el.run();
    assert!(r2.has_error("phase2"));
    assert!(r2.end_time >= r1.end_time);
}
