//! Tests for the simulated UNIX signals and child processes (§4.2.1's
//! "Misc." nondeterminism sources).

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_rt::{ChildSpec, Errno, EventLoop, LoopConfig, Signal, Termination, VDur};

#[test]
fn signal_watcher_receives_raised_signal() {
    let got = Rc::new(RefCell::new(Vec::new()));
    let mut el = EventLoop::new(LoopConfig::seeded(1));
    let g = got.clone();
    el.enter(move |cx| {
        cx.on_signal(Signal::Hup, move |cx, sig| {
            g.borrow_mut().push((sig, cx.now()));
        })
        .unwrap();
        cx.raise_signal_after(VDur::millis(3), Signal::Hup);
        // Something must keep the loop alive until then (watchers do not).
        cx.set_timeout(VDur::millis(10), |_| {});
    });
    let report = el.run();
    let got = got.borrow();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, Signal::Hup);
    assert_eq!(report.schedule.count(nodefz_rt::CbKind::Signal), 1);
}

#[test]
fn signals_fan_out_to_all_watchers() {
    let count = Rc::new(RefCell::new(0u32));
    let mut el = EventLoop::new(LoopConfig::seeded(2));
    let c = count.clone();
    el.enter(move |cx| {
        for _ in 0..3 {
            let c = c.clone();
            cx.on_signal(Signal::Usr1, move |_, _| *c.borrow_mut() += 1)
                .unwrap();
        }
        assert_eq!(cx.signal_watchers(Signal::Usr1), 3);
        cx.raise_signal_after(VDur::millis(1), Signal::Usr1);
        cx.set_timeout(VDur::millis(5), |_| {});
    });
    el.run();
    assert_eq!(*count.borrow(), 3);
}

#[test]
fn unwatched_signal_goes_nowhere() {
    let mut el = EventLoop::new(LoopConfig::seeded(3));
    el.enter(|cx| {
        let fd = cx
            .on_signal(Signal::Int, |cx, _| cx.crash("boom", ""))
            .unwrap();
        cx.remove_signal_watcher(fd).unwrap();
        assert_eq!(
            cx.remove_signal_watcher(fd),
            Err(Errno::Ebadf),
            "double removal"
        );
        cx.raise_signal_after(VDur::millis(1), Signal::Int);
        cx.set_timeout(VDur::millis(5), |_| {});
    });
    let report = el.run();
    assert!(!report.crashed());
}

#[test]
fn signal_watchers_do_not_keep_the_loop_alive() {
    let mut el = EventLoop::new(LoopConfig::seeded(4));
    el.enter(|cx| {
        cx.on_signal(Signal::Term, |_, _| {}).unwrap();
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
}

#[test]
fn child_emits_output_then_exit() {
    let events = Rc::new(RefCell::new(Vec::new()));
    let mut el = EventLoop::new(LoopConfig::seeded(5));
    let e = events.clone();
    el.enter(move |cx| {
        let spec = ChildSpec::sleeper(VDur::millis(6))
            .with_output(VDur::millis(1), b"line1".to_vec())
            .with_output(VDur::millis(3), b"line2".to_vec())
            .with_exit_code(7);
        let e1 = e.clone();
        let e2 = e.clone();
        cx.spawn_child(
            spec,
            move |_, bytes| {
                e1.borrow_mut()
                    .push(format!("out:{}", String::from_utf8_lossy(bytes)))
            },
            move |_, code| e2.borrow_mut().push(format!("exit:{code}")),
        )
        .unwrap();
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
    assert_eq!(
        *events.borrow(),
        vec!["out:line1".to_string(), "out:line2".into(), "exit:7".into()]
    );
    assert_eq!(report.schedule.count(nodefz_rt::CbKind::ChildIo), 3);
}

#[test]
fn child_keeps_the_loop_alive_until_exit() {
    let mut el = EventLoop::new(LoopConfig::seeded(6));
    let exit_at = Rc::new(RefCell::new(None));
    let e = exit_at.clone();
    el.enter(move |cx| {
        cx.spawn_child(
            ChildSpec::sleeper(VDur::millis(20)),
            |_, _| {},
            move |cx, _| {
                *e.borrow_mut() = Some(cx.now());
            },
        )
        .unwrap();
    });
    let report = el.run();
    assert!(exit_at.borrow().is_some());
    assert!(report.end_time >= nodefz_rt::VTime::ZERO + VDur::millis(10));
}

#[test]
fn kill_child_reports_code_137() {
    let exit = Rc::new(RefCell::new(None));
    let mut el = EventLoop::new(LoopConfig::seeded(7));
    let e = exit.clone();
    el.enter(move |cx| {
        let pid = cx
            .spawn_child(
                ChildSpec::sleeper(VDur::secs(100)),
                |_, _| {},
                move |_, code| {
                    *e.borrow_mut() = Some(code);
                },
            )
            .unwrap();
        cx.set_timeout(VDur::millis(2), move |cx| {
            cx.kill_child(pid).unwrap();
            // The child is dead: killing again is ESRCH.
            assert_eq!(cx.kill_child(pid), Err(Errno::Esrch));
        });
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
    assert_eq!(*exit.borrow(), Some(137));
}

#[test]
fn sigchld_is_raised_on_child_exit() {
    let order = Rc::new(RefCell::new(Vec::new()));
    let mut el = EventLoop::new(LoopConfig::seeded(8));
    let o = order.clone();
    el.enter(move |cx| {
        let o1 = o.clone();
        cx.on_signal(Signal::Chld, move |_, _| o1.borrow_mut().push("sigchld"))
            .unwrap();
        let o2 = o.clone();
        cx.spawn_child(
            ChildSpec::sleeper(VDur::millis(2)),
            |_, _| {},
            move |_, _| {
                o2.borrow_mut().push("exit-cb");
            },
        )
        .unwrap();
    });
    el.run();
    let order = order.borrow();
    assert!(order.contains(&"sigchld"));
    assert!(order.contains(&"exit-cb"));
}

#[test]
fn output_after_kill_is_suppressed() {
    let outputs = Rc::new(RefCell::new(0u32));
    let mut el = EventLoop::new(LoopConfig::seeded(9));
    let o = outputs.clone();
    el.enter(move |cx| {
        let spec =
            ChildSpec::sleeper(VDur::millis(50)).with_output(VDur::millis(30), b"late".to_vec());
        let pid = cx
            .spawn_child(spec, move |_, _| *o.borrow_mut() += 1, |_, _| {})
            .unwrap();
        cx.set_timeout(VDur::millis(1), move |cx| {
            let _ = cx.kill_child(pid);
        });
    });
    el.run();
    assert_eq!(
        *outputs.borrow(),
        0,
        "output scheduled after kill is dropped"
    );
}

#[test]
fn running_children_counter() {
    let mut el = EventLoop::new(LoopConfig::seeded(10));
    el.enter(|cx| {
        assert_eq!(cx.running_children(), 0);
        cx.spawn_child(ChildSpec::sleeper(VDur::millis(5)), |_, _| {}, |_, _| {})
            .unwrap();
        cx.spawn_child(ChildSpec::sleeper(VDur::millis(9)), |_, _| {}, |_, _| {})
            .unwrap();
        assert_eq!(cx.running_children(), 2);
        cx.set_timeout(VDur::millis(30), |cx| {
            assert_eq!(cx.running_children(), 0);
        });
    });
    el.run();
}

#[test]
fn signals_are_fuzzable_events() {
    // Under the fuzz-style schedulers the signal still arrives exactly once
    // (a §4.4-style legality check at the rt level with a deferring
    // scheduler is done in the core crate; here: vanilla determinism).
    let run = |seed: u64| {
        let hits = Rc::new(RefCell::new(0u32));
        let mut el = EventLoop::new(LoopConfig::seeded(seed));
        let h = hits.clone();
        el.enter(move |cx| {
            cx.on_signal(Signal::Usr2, move |_, _| *h.borrow_mut() += 1)
                .unwrap();
            cx.raise_signal_after(VDur::millis(2), Signal::Usr2);
            cx.raise_signal_after(VDur::millis(4), Signal::Usr2);
            cx.set_timeout(VDur::millis(8), |_| {});
        });
        el.run();
        let n = *hits.borrow();
        n
    };
    for seed in 0..10 {
        assert_eq!(run(seed), 2, "seed {seed}");
    }
}
