//! Integration tests for the event loop's libuv-faithful semantics under the
//! vanilla scheduler: phase ordering, timer guarantees, worker-pool
//! multiplexing, determinism, and termination behaviour.

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_rt::{EventLoop, FdKind, LoopConfig, Termination, VDur, VTime};

type Log = Rc<RefCell<Vec<String>>>;

fn log(l: &Log, s: impl Into<String>) {
    l.borrow_mut().push(s.into());
}

#[test]
fn empty_loop_quiesces_immediately() {
    let mut el = EventLoop::new(LoopConfig::seeded(1));
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
    assert_eq!(report.dispatched, 0);
    assert_eq!(report.end_time, VTime::ZERO);
}

#[test]
fn timer_fires_at_or_after_deadline() {
    let fired_at = Rc::new(RefCell::new(None));
    let mut el = EventLoop::new(LoopConfig::seeded(2));
    let f = fired_at.clone();
    el.enter(move |cx| {
        cx.set_timeout(VDur::millis(10), move |cx| {
            *f.borrow_mut() = Some(cx.now());
        });
    });
    let report = el.run();
    let at = fired_at.borrow().expect("timer must fire");
    assert!(at >= VTime::ZERO + VDur::millis(10), "fired early: {at}");
    assert_eq!(report.termination, Termination::Quiescent);
    assert_eq!(report.schedule.count(nodefz_rt::CbKind::Timer), 1);
}

#[test]
fn timers_fire_in_deadline_then_registration_order() {
    let order: Log = Rc::new(RefCell::new(Vec::new()));
    let mut el = EventLoop::new(LoopConfig::seeded(3));
    let o = order.clone();
    el.enter(move |cx| {
        for (name, ms) in [("c", 30u64), ("a", 10), ("b", 20), ("a2", 10)] {
            let o = o.clone();
            cx.set_timeout(VDur::millis(ms), move |_| log(&o, name));
        }
    });
    el.run();
    assert_eq!(*order.borrow(), vec!["a", "a2", "b", "c"]);
}

#[test]
fn cleared_timer_never_fires() {
    let fired = Rc::new(RefCell::new(false));
    let mut el = EventLoop::new(LoopConfig::seeded(4));
    let f = fired.clone();
    el.enter(move |cx| {
        let id = cx.set_timeout(VDur::millis(5), move |_| *f.borrow_mut() = true);
        assert!(cx.timer_active(id));
        assert!(cx.clear_timer(id));
        assert!(!cx.timer_active(id));
    });
    let report = el.run();
    assert!(!*fired.borrow());
    assert_eq!(report.termination, Termination::Quiescent);
}

#[test]
fn interval_repeats_until_cleared() {
    let count = Rc::new(RefCell::new(0u32));
    let mut el = EventLoop::new(LoopConfig::seeded(5));
    let c = count.clone();
    el.enter(move |cx| {
        let count_in_cb = c.clone();
        let id = Rc::new(RefCell::new(None));
        let id2 = id.clone();
        let tid = cx.set_interval(VDur::millis(5), move |cx| {
            let mut n = count_in_cb.borrow_mut();
            *n += 1;
            if *n == 4 {
                let tid = id2.borrow().expect("interval id set");
                assert!(cx.clear_timer(tid));
            }
        });
        *id.borrow_mut() = Some(tid);
    });
    let report = el.run();
    assert_eq!(*count.borrow(), 4);
    assert_eq!(report.termination, Termination::Quiescent);
}

#[test]
fn next_tick_runs_before_other_callbacks() {
    let order: Log = Rc::new(RefCell::new(Vec::new()));
    let mut el = EventLoop::new(LoopConfig::seeded(6));
    let o = order.clone();
    el.enter(move |cx| {
        let o1 = o.clone();
        let o2 = o.clone();
        let o3 = o.clone();
        cx.set_timeout(VDur::millis(1), move |cx| {
            log(&o1, "timer1");
            let o1b = o1.clone();
            cx.next_tick(move |_| log(&o1b, "tick"));
        });
        cx.set_timeout(VDur::millis(1), move |_| log(&o2, "timer2"));
        let _ = o3;
    });
    el.run();
    // The microtask queued by timer1 drains before timer2 runs.
    assert_eq!(*order.borrow(), vec!["timer1", "tick", "timer2"]);
}

#[test]
fn set_immediate_runs_in_check_phase_after_io() {
    let order: Log = Rc::new(RefCell::new(Vec::new()));
    let mut el = EventLoop::new(LoopConfig::seeded(7));
    let o = order.clone();
    el.enter(move |cx| {
        let o1 = o.clone();
        cx.set_immediate(move |_| log(&o1, "immediate1"));
        let o2 = o.clone();
        cx.set_immediate(move |cx| {
            log(&o2, "immediate2");
            let o2b = o2.clone();
            // Queued during check: must run on the NEXT iteration.
            cx.set_immediate(move |_| log(&o2b, "immediate3"));
        });
    });
    el.run();
    assert_eq!(
        *order.borrow(),
        vec!["immediate1", "immediate2", "immediate3"]
    );
}

#[test]
fn worker_pool_runs_work_then_done() {
    let order: Log = Rc::new(RefCell::new(Vec::new()));
    let mut el = EventLoop::new(LoopConfig::seeded(8));
    let o = order.clone();
    el.enter(move |cx| {
        let o1 = o.clone();
        cx.submit_work(
            VDur::millis(3),
            move |w| {
                // Work executes "on a worker" at a later virtual time.
                assert!(w.now > VTime::ZERO);
                99u32
            },
            move |_, result| {
                assert_eq!(result, 99);
                log(&o1, "done");
            },
        )
        .unwrap();
    });
    let report = el.run();
    assert_eq!(*order.borrow(), vec!["done"]);
    assert_eq!(report.pool.submitted, 1);
    assert_eq!(report.pool.executed, 1);
    assert_eq!(report.pool.completed, 1);
}

#[test]
fn multiplexed_done_queue_drains_back_to_back() {
    // Submit tasks with equal cost; the vanilla pool signals one shared
    // descriptor and drains every completion in a single I/O event, so no
    // timer callback can interleave between done callbacks that completed
    // together.
    let order: Log = Rc::new(RefCell::new(Vec::new()));
    let mut el = EventLoop::new(LoopConfig::seeded(9));
    let o = order.clone();
    el.enter(move |cx| {
        for i in 0..4 {
            let o = o.clone();
            cx.submit_work(
                VDur::millis(5),
                move |_| i,
                move |_, i: i32| log(&o, format!("done{i}")),
            )
            .unwrap();
        }
    });
    let report = el.run();
    let got = order.borrow().clone();
    assert_eq!(got.len(), 4);
    assert_eq!(report.pool.completed, 4);
    // FIFO completion order with a 4-worker pool and identical submission
    // time is not guaranteed (jittered durations), but all must be present.
    let mut sorted = got.clone();
    sorted.sort();
    assert_eq!(sorted, vec!["done0", "done1", "done2", "done3"]);
}

#[test]
fn pool_respects_worker_limit() {
    // With 4 workers and 8 equal tasks, completions come in two waves.
    // Track maximum observed concurrency via completion timestamps.
    let times = Rc::new(RefCell::new(Vec::new()));
    let mut el = EventLoop::new(LoopConfig {
        pool_cost_jitter: 0.0,
        cb_cost_base: VDur::nanos(1),
        cb_cost_jitter: 0.0,
        ..LoopConfig::seeded(10)
    });
    let t = times.clone();
    el.enter(move |cx| {
        for _ in 0..8 {
            let t = t.clone();
            cx.submit_work(
                VDur::millis(10),
                |w| w.now,
                move |_, at: VTime| t.borrow_mut().push(at),
            )
            .unwrap();
        }
    });
    el.run();
    let times = times.borrow();
    assert_eq!(times.len(), 8);
    // First four finish at ~10ms, second four at ~20ms.
    let wave1 = times.iter().filter(|t| t.as_millis() < 15).count();
    let wave2 = times.iter().filter(|t| t.as_millis() >= 15).count();
    assert_eq!(wave1, 4, "first wave should be the 4 workers: {times:?}");
    assert_eq!(wave2, 4);
}

#[test]
fn env_events_drive_io_watchers() {
    let got = Rc::new(RefCell::new(Vec::new()));
    let mut el = EventLoop::new(LoopConfig::seeded(11));
    let g = got.clone();
    el.enter(move |cx| {
        let fd = cx.alloc_fd(FdKind::Other).unwrap();
        let g2 = g.clone();
        cx.register_watcher(fd, move |cx, fd| {
            g2.borrow_mut().push(cx.now());
            if g2.borrow().len() == 2 {
                cx.close_fd(fd).unwrap();
            }
        })
        .unwrap();
        cx.schedule_env(VDur::millis(5), move |cx| {
            cx.mark_ready(fd).unwrap();
        });
        cx.schedule_env(VDur::millis(9), move |cx| {
            let _ = cx.mark_ready(fd);
        });
    });
    let report = el.run();
    assert_eq!(got.borrow().len(), 2);
    assert!(got.borrow()[0] >= VTime::ZERO + VDur::millis(5));
    assert!(got.borrow()[1] >= VTime::ZERO + VDur::millis(9));
    assert_eq!(report.termination, Termination::Quiescent);
}

#[test]
fn close_phase_runs_enqueued_close_callbacks() {
    let order: Log = Rc::new(RefCell::new(Vec::new()));
    let mut el = EventLoop::new(LoopConfig::seeded(12));
    let o = order.clone();
    el.enter(move |cx| {
        let o1 = o.clone();
        cx.set_timeout(VDur::millis(1), move |cx| {
            log(&o1, "timer");
            let o1b = o1.clone();
            cx.enqueue_close(move |_| log(&o1b, "close"));
        });
    });
    let report = el.run();
    assert_eq!(*order.borrow(), vec!["timer", "close"]);
    assert_eq!(report.schedule.count(nodefz_rt::CbKind::Close), 1);
}

#[test]
fn stop_terminates_loop() {
    let mut el = EventLoop::new(LoopConfig::seeded(13));
    el.enter(|cx| {
        cx.set_timeout(VDur::millis(1), |cx| cx.stop());
        // This one would keep the loop alive for an hour otherwise.
        cx.set_timeout(VDur::secs(3_000), |cx| cx.report_error("late", ""));
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Stopped);
    assert!(!report.has_error("late"));
}

#[test]
fn crash_is_fatal_and_recorded() {
    let mut el = EventLoop::new(LoopConfig::seeded(14));
    el.enter(|cx| {
        cx.set_timeout(VDur::millis(1), |cx| {
            cx.crash("TypeError", "cannot read property of undefined");
        });
        cx.set_timeout(VDur::millis(2), |cx| cx.report_error("after", ""));
    });
    let report = el.run();
    assert!(report.crashed());
    assert!(report.has_error("TypeError"));
    assert!(!report.has_error("after"), "loop must die at the crash");
}

#[test]
fn microtask_storm_is_detected() {
    fn spin(cx: &mut nodefz_rt::Ctx<'_>) {
        cx.next_tick(spin);
    }
    let mut el = EventLoop::new(LoopConfig {
        microtask_limit: 100,
        ..LoopConfig::seeded(15)
    });
    el.enter(|cx| {
        cx.set_timeout(VDur::millis(1), spin);
    });
    let report = el.run();
    assert!(report.has_error("microtask-storm"));
    assert!(report.crashed());
}

#[test]
fn fd_limit_yields_emfile() {
    let mut el = EventLoop::new(LoopConfig {
        fd_limit: 4,
        ..LoopConfig::seeded(16)
    });
    el.enter(|cx| {
        for _ in 0..4 {
            cx.alloc_fd(FdKind::Other).unwrap();
        }
        assert_eq!(cx.alloc_fd(FdKind::Other), Err(nodefz_rt::Errno::Emfile));
        assert_eq!(cx.open_fds(), 4);
        cx.stop();
    });
    el.run();
}

#[test]
fn unrefd_fd_does_not_keep_loop_alive() {
    let mut el = EventLoop::new(LoopConfig::seeded(17));
    el.enter(|cx| {
        let fd = cx.alloc_fd(FdKind::NetListener).unwrap();
        cx.register_watcher(fd, |_, _| {}).unwrap();
        cx.set_fd_refd(fd, false).unwrap();
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
    assert_eq!(report.iterations, 0);
}

#[test]
fn refd_fd_with_no_possible_wakeup_hangs() {
    let mut el = EventLoop::new(LoopConfig::seeded(18));
    el.enter(|cx| {
        let fd = cx.alloc_fd(FdKind::NetListener).unwrap();
        cx.register_watcher(fd, |_, _| {}).unwrap();
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Hung);
}

#[test]
fn vtime_cap_terminates() {
    let mut el = EventLoop::new(LoopConfig {
        max_vtime: VTime::ZERO + VDur::millis(100),
        ..LoopConfig::seeded(19)
    });
    el.enter(|cx| {
        cx.set_interval(VDur::millis(30), |_| {});
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::VTimeCap);
}

#[test]
fn same_seed_same_schedule() {
    let run = |seed: u64| {
        let mut el = EventLoop::new(LoopConfig::seeded(seed));
        el.enter(|cx| {
            for i in 1..6u64 {
                cx.set_timeout(VDur::millis(i), move |cx| {
                    cx.submit_work(VDur::millis(i), |_| (), |_, _| {}).unwrap();
                });
            }
        });
        el.run()
    };
    let a = run(123);
    let b = run(123);
    let c = run(124);
    assert_eq!(a.schedule, b.schedule, "same seed must replay identically");
    assert_eq!(a.end_time, b.end_time);
    // A different environment seed almost surely perturbs timing.
    assert!(
        a.schedule != c.schedule || a.end_time != c.end_time,
        "different seeds should differ somewhere"
    );
}

#[test]
fn idle_prepare_check_handles_run_each_iteration() {
    let counts = Rc::new(RefCell::new((0u32, 0u32, 0u32)));
    let mut el = EventLoop::new(LoopConfig::seeded(20));
    let c = counts.clone();
    el.enter(move |cx| {
        let c1 = c.clone();
        let idle_id = Rc::new(RefCell::new(None));
        let idle_id2 = idle_id.clone();
        let id = cx.add_idle(move |cx| {
            let mut t = c1.borrow_mut();
            t.0 += 1;
            if t.0 == 3 {
                let id = idle_id2.borrow().unwrap();
                assert!(cx.remove_idle(id));
            }
        });
        *idle_id.borrow_mut() = Some(id);
        let c2 = c.clone();
        let pid = Rc::new(RefCell::new(None));
        let pid2 = pid.clone();
        let id = cx.add_prepare(move |cx| {
            let mut t = c2.borrow_mut();
            t.1 += 1;
            if t.1 == 3 {
                assert!(cx.remove_prepare(pid2.borrow().unwrap()));
            }
        });
        *pid.borrow_mut() = Some(id);
        let c3 = c.clone();
        let cid = Rc::new(RefCell::new(None));
        let cid2 = cid.clone();
        let id = cx.add_check(move |cx| {
            let mut t = c3.borrow_mut();
            t.2 += 1;
            if t.2 == 3 {
                assert!(cx.remove_check(cid2.borrow().unwrap()));
            }
        });
        *cid.borrow_mut() = Some(id);
    });
    let report = el.run();
    assert_eq!(report.termination, Termination::Quiescent);
    let (i, p, ch) = *counts.borrow();
    assert_eq!((i, p, ch), (3, 3, 3));
}

#[test]
fn busy_advances_time() {
    let mut el = EventLoop::new(LoopConfig::seeded(21));
    el.enter(|cx| {
        cx.set_timeout(VDur::millis(1), |cx| {
            let before = cx.now();
            cx.busy(VDur::millis(50));
            assert_eq!(cx.now(), before + VDur::millis(50));
        });
    });
    let report = el.run();
    assert!(report.end_time >= VTime::ZERO + VDur::millis(51));
}

#[test]
fn chained_timers_preserve_causality() {
    // A chain of 20 timers each scheduling the next: end time must be at
    // least the sum of deadlines, and exactly 20 timer callbacks dispatch.
    fn chain(cx: &mut nodefz_rt::Ctx<'_>, depth: u32) {
        if depth == 0 {
            return;
        }
        cx.set_timeout(VDur::millis(2), move |cx| chain(cx, depth - 1));
    }
    let mut el = EventLoop::new(LoopConfig::seeded(22));
    el.enter(|cx| chain(cx, 20));
    let report = el.run();
    assert_eq!(report.schedule.count(nodefz_rt::CbKind::Timer), 20);
    assert!(report.end_time >= VTime::ZERO + VDur::millis(40));
}

#[test]
fn report_error_is_not_fatal() {
    let mut el = EventLoop::new(LoopConfig::seeded(23));
    el.enter(|cx| {
        cx.set_timeout(VDur::millis(1), |cx| cx.report_error("warn", "x"));
        cx.set_timeout(VDur::millis(2), |cx| cx.report_error("warn", "y"));
    });
    let report = el.run();
    assert!(!report.crashed());
    assert_eq!(report.errors.len(), 2);
    assert_eq!(report.termination, Termination::Quiescent);
}

#[test]
fn pending_phase_runs_deferred_jobs() {
    let order: Log = Rc::new(RefCell::new(Vec::new()));
    let mut el = EventLoop::new(LoopConfig::seeded(24));
    let o = order.clone();
    el.enter(move |cx| {
        let o1 = o.clone();
        cx.set_timeout(VDur::millis(1), move |cx| {
            log(&o1, "timer");
            let o1b = o1.clone();
            cx.defer_pending(move |_| log(&o1b, "pending"));
        });
    });
    let report = el.run();
    assert_eq!(*order.borrow(), vec!["timer", "pending"]);
    assert_eq!(report.schedule.count(nodefz_rt::CbKind::Pending), 1);
}
