//! Integration tests for loop-phase profiling (feature `obs`): phase
//! profiles, per-kind dispatch counts, sink events, and — critically —
//! that attaching observability does not perturb the run itself.
#![cfg(feature = "obs")]

use std::cell::RefCell;
use std::rc::Rc;

use nodefz_rt::obs::{Phase, TraceEvent, TraceEventSink};
use nodefz_rt::{CbKind, EventLoop, LoopConfig, ObsHandle, VDur};

fn program(el: &mut EventLoop) {
    el.enter(|cx| {
        for i in 1..4u64 {
            cx.set_timeout(VDur::millis(i), move |cx| {
                cx.submit_work(VDur::micros(300), |_| (), |_, ()| {})
                    .unwrap();
            });
        }
        cx.set_immediate(|_| {});
    });
}

#[test]
fn profiles_cover_phases_and_dispatches() {
    let mut el = EventLoop::new(LoopConfig::seeded(11));
    let obs = ObsHandle::new();
    el.set_obs(obs.clone());
    program(&mut el);
    let report = el.run();

    let phases = obs.phase_profiles();
    let timers = phases[Phase::Timers.index()];
    assert!(timers.entries > 0, "timer phase never profiled");
    assert!(
        timers.vtime > VDur::ZERO,
        "timer callbacks cost virtual time"
    );
    let poll = phases[Phase::Poll.index()];
    assert!(poll.entries > 0);
    // Demux runs nested inside poll, so its virtual time cannot exceed
    // the poll phase's.
    let demux = phases[Phase::Demux.index()];
    assert!(demux.vtime <= poll.vtime, "{demux:?} vs {poll:?}");
    // Every phase entered at most once per iteration (demux excepted:
    // it re-runs after each poll dispatch).
    for p in [Phase::Timers, Phase::Pending, Phase::Poll, Phase::Check] {
        assert!(
            phases[p.index()].entries <= report.iterations,
            "{p:?} profiled more often than the loop iterated"
        );
    }

    // The handle's per-kind counts must agree with the run report.
    assert_eq!(obs.dispatched(), report.dispatched);
    let counts: std::collections::HashMap<CbKind, u64> = obs.kind_counts().into_iter().collect();
    assert_eq!(counts[&CbKind::Timer], 3);
    assert_eq!(counts[&CbKind::PoolDone], 3);
    assert_eq!(counts[&CbKind::Check], 1);
}

#[test]
fn observed_and_bare_runs_are_identical() {
    let run = |observe: bool| {
        let mut el = EventLoop::new(LoopConfig::seeded(12));
        if observe {
            el.set_obs(ObsHandle::new());
        }
        program(&mut el);
        let r = el.run();
        (r.dispatched, r.end_time, r.iterations, r.schedule)
    };
    assert_eq!(run(false), run(true), "observability perturbed the run");
}

#[test]
fn sink_receives_nested_spans_in_virtual_time() {
    #[derive(Default)]
    struct Collect {
        phases: usize,
        callbacks: usize,
        max_end_ns: u64,
    }
    impl TraceEventSink for Collect {
        fn event(&mut self, ev: &TraceEvent<'_>) {
            match ev.cat {
                "phase" => self.phases += 1,
                "callback" => self.callbacks += 1,
                other => panic!("unexpected category {other}"),
            }
            self.max_end_ns = self.max_end_ns.max(ev.start.as_nanos() + ev.dur.as_nanos());
        }
    }
    let sink = Rc::new(RefCell::new(Collect::default()));
    let mut el = EventLoop::new(LoopConfig::seeded(13));
    el.set_obs(ObsHandle::with_sink(sink.clone()));
    program(&mut el);
    let report = el.run();

    let got = sink.borrow();
    assert!(got.phases > 0, "no phase spans emitted");
    assert_eq!(got.callbacks as u64, report.dispatched);
    assert!(
        got.max_end_ns <= report.end_time.as_nanos(),
        "span past the end of the run"
    );
}

#[test]
fn reset_clears_profiles_between_runs() {
    let mut el = EventLoop::new(LoopConfig::seeded(14));
    let obs = ObsHandle::new();
    el.set_obs(obs.clone());
    program(&mut el);
    el.run();
    assert!(obs.dispatched() > 0);
    obs.reset();
    assert_eq!(obs.dispatched(), 0);
    assert!(obs
        .phase_profiles()
        .iter()
        .all(|p| p.entries == 0 && p.vtime == VDur::ZERO && p.wall_ns == 0));
}
