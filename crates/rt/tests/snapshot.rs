//! Prefix-snapshot semantics: capturing a paused loop is non-invasive,
//! restoring is deterministic (and repeatable for one-shot-free
//! programs), admissibility refuses un-duplicable state, stale snapshots
//! refuse to restore, and a restored loop leaves no live handles behind
//! (the `pool_reuse` guarantee extended to the fork path).

use nodefz_rt::{
    EventLogHandle, EventLoop, LoopConfig, LoopPool, RunReport, Scheduler, Termination,
    TimerVerdict, VDur, VTime, VanillaScheduler,
};

/// A fork-safe program with one-shot timers: a pure timeline whose
/// control flow depends only on immutably captured values. Its one-shots
/// are `FnOnce` callbacks, so a snapshot of it supports exactly one
/// resumed execution.
fn timeline(el: &mut EventLoop) {
    el.enter(|cx| {
        let tick = cx.set_interval(VDur::millis(3), |cx| {
            cx.touch_write("snap:counter");
        });
        cx.set_timeout(VDur::millis(5), |cx| {
            cx.touch_read("snap:counter");
            cx.report_error("mid", "halfway");
            cx.set_timeout(VDur::millis(5), |cx| {
                cx.report_error("late", "nested");
            });
        });
        cx.set_timeout(VDur::millis(14), move |cx| {
            cx.clear_timer(tick);
            cx.report_error("end", "cleared the interval");
        });
    });
}

fn fresh(seed: u64) -> EventLoop {
    let mut el = EventLoop::new(LoopConfig::seeded(seed));
    timeline(&mut el);
    el
}

/// A fully re-runnable fork-safe program: repeating timers only (their
/// callbacks are `FnMut` with no captured mutable state), terminated by
/// the virtual-time cap. Snapshots of it restore any number of times.
fn repeating(seed: u64) -> EventLoop {
    let cfg = LoopConfig {
        max_vtime: VTime::ZERO + VDur::millis(40),
        ..LoopConfig::seeded(seed)
    };
    let mut el = EventLoop::new(cfg);
    el.enter(|cx| {
        cx.set_interval(VDur::millis(3), |cx| {
            cx.touch_write("snap:a");
            cx.report_error("t3", "tick");
        });
        cx.set_interval(VDur::millis(5), |cx| {
            cx.touch_update("snap:b");
            cx.report_error("t5", "tock");
        });
    });
    el
}

fn straight_run(mk: impl Fn() -> EventLoop) -> RunReport {
    mk().run()
}

#[test]
fn snapshot_is_noninvasive() {
    let baseline = straight_run(|| fresh(11));
    assert!(baseline.has_error("end"), "timeline must complete");

    let mut el = fresh(11);
    assert!(
        el.run_bounded(3).is_none(),
        "timeline outlasts 3 iterations"
    );
    assert!(el.fork_admissible(), "paused timer timeline is forkable");
    let snap = el.snapshot().expect("admissible loop snapshots");

    // Capturing must not perturb the interrupted run.
    assert_eq!(el.run(), baseline);

    // The continuation consumed the captured one-shots: the snapshot is
    // stale and must refuse rather than silently replay no-ops.
    assert!(!el.restore(&snap), "stale snapshot must refuse to restore");
}

#[test]
fn restored_run_is_deterministic() {
    let baseline = straight_run(|| fresh(21));

    let mut el = fresh(21);
    assert!(el.run_bounded(3).is_none());
    let snap = el.snapshot().expect("forkable");

    // Fork discipline: abandon the original continuation, resume the
    // snapshot instead. The resumed run completes the identical schedule.
    assert!(el.restore(&snap));
    assert_eq!(el.run(), baseline);

    // That execution spent the shared one-shots; a second resume refuses.
    assert!(!el.restore(&snap));
}

#[test]
fn oneshot_free_snapshots_restore_many_times() {
    let baseline = straight_run(|| repeating(22));
    assert_eq!(baseline.termination, Termination::VTimeCap);
    assert!(baseline.has_error("t3") && baseline.has_error("t5"));

    let mut el = repeating(22);
    assert!(el.run_bounded(4).is_none());
    let snap = el.snapshot().expect("forkable");
    assert_eq!(el.run(), baseline, "capture is non-invasive");
    for _ in 0..3 {
        assert!(el.restore(&snap), "no one-shots, never stale");
        assert_eq!(el.run(), baseline);
    }
}

#[test]
fn run_bounded_zero_reports_an_already_terminated_loop() {
    let mut el = fresh(12);
    let report = el.run();
    // No work left: even a zero-iteration budget yields the report.
    assert_eq!(el.run_bounded(0).unwrap().termination, report.termination);
}

#[test]
fn queued_oneshot_work_blocks_the_snapshot() {
    // An immediate is a queued `FnOnce`: not duplicable.
    let mut el = EventLoop::new(LoopConfig::seeded(13));
    el.enter(|cx| {
        cx.set_immediate(|_| {});
    });
    assert!(!el.fork_admissible());
    assert!(el.snapshot().is_none());

    // A queued worker-pool task carries `FnOnce` work/done closures.
    let mut el = EventLoop::new(LoopConfig::seeded(14));
    el.enter(|cx| {
        cx.submit_work(VDur::millis(1), |_| (), |_, ()| {}).unwrap();
    });
    assert!(!el.fork_admissible());
    assert!(el.snapshot().is_none());

    // A custom environment effect is a scheduled `FnOnce`.
    let mut el = EventLoop::new(LoopConfig::seeded(15));
    el.enter(|cx| {
        cx.schedule_env(VDur::millis(2), |_| {});
    });
    assert!(!el.fork_admissible());
    assert!(el.snapshot().is_none());

    // Draining the offending state restores admissibility.
    let mut el = EventLoop::new(LoopConfig::seeded(16));
    el.enter(|cx| {
        cx.set_immediate(|_| {});
        cx.set_timeout(VDur::millis(50), |_| {});
    });
    assert!(el.run_bounded(1).is_none());
    assert!(
        el.fork_admissible(),
        "immediate drained after one iteration"
    );
}

#[test]
fn schedulers_refusing_to_fork_block_the_snapshot() {
    struct NoFork;
    impl Scheduler for NoFork {
        fn name(&self) -> &'static str {
            "no-fork"
        }
    }
    let mut el = EventLoop::with_scheduler(LoopConfig::seeded(17), Box::new(NoFork));
    timeline(&mut el);
    assert!(!el.fork_admissible(), "default fork_box refuses");
    assert!(el.snapshot().is_none());
}

#[test]
fn restored_pooled_loop_leaves_no_live_handles() {
    let pool = LoopPool::new();
    {
        let mut el = EventLoop::with_scheduler_pooled(
            LoopConfig::seeded(18),
            Box::new(VanillaScheduler::new()),
            &pool,
        );
        timeline(&mut el);
        assert!(el.run_bounded(3).is_none());
        let snap = el.snapshot().expect("forkable");
        assert!(el.restore(&snap));
        let report = el.run();
        assert!(report.has_error("end"));
        // Everything the restored prefix re-registered was consumed.
        assert!(
            el.live_counts().is_zero(),
            "restored run leaked: {:?}",
            el.live_counts()
        );
    }
    // Recycling the restored state must pass the reset debug-asserts and
    // hand back a clean loop.
    let el = EventLoop::with_scheduler_pooled(
        LoopConfig::seeded(19),
        Box::new(VanillaScheduler::new()),
        &pool,
    );
    assert!(el.live_counts().is_zero());
}

#[test]
fn restore_rewinds_an_attached_event_log() {
    // Straight recorded run for reference.
    let reference = {
        let log = EventLogHandle::fresh();
        let mut el = fresh(20);
        el.set_event_log(&log);
        el.run();
        log.snapshot()
    };

    let log = EventLogHandle::fresh();
    let mut el = fresh(20);
    el.set_event_log(&log);
    assert!(el.run_bounded(4).is_none());
    let snap = el.snapshot().expect("forkable");
    let at_snap = log.snapshot().events.len();
    assert!(at_snap > 0, "prefix recorded something");

    // Restoring rewinds the *same* handle to the capture point…
    assert!(el.restore(&snap));
    assert_eq!(log.snapshot().events.len(), at_snap);

    // …and resuming reproduces the reference log exactly.
    el.run();
    let replayed = log.snapshot();
    assert_eq!(replayed.events, reference.events);
    assert_eq!(replayed.sites, reference.sites);
    assert_eq!(replayed.accesses, reference.accesses);
}

/// Defers exactly the `n`-th expired-timer consultation — a minimal
/// "suffix decider" whose parameter steers the resumed schedule.
struct DeferNth {
    n: u32,
    seen: u32,
}

impl Scheduler for DeferNth {
    fn name(&self) -> &'static str {
        "defer-nth"
    }

    fn on_timer(&mut self) -> TimerVerdict {
        self.seen += 1;
        if self.seen == self.n {
            TimerVerdict::Defer {
                delay: VDur::millis(2),
            }
        } else {
            TimerVerdict::Run
        }
    }
}

#[test]
fn replaced_scheduler_varies_the_resumed_suffix() {
    // One captured prefix, many suffix deciders: the fork-exploration
    // pattern. Restore rewinds the state; `replace_scheduler` picks which
    // decisions the resumed run draws.
    let mut el = repeating(23);
    assert!(el.run_bounded(4).is_none());
    let snap = el.snapshot().expect("forkable");

    let mut reports = Vec::new();
    for n in 1..4u32 {
        assert!(el.restore(&snap), "one-shot-free snapshot never staling");
        el.replace_scheduler(Box::new(DeferNth { n, seen: 0 }));
        reports.push(el.run());
    }
    // Determinism: the same suffix decider resumes to the same run.
    assert!(el.restore(&snap));
    el.replace_scheduler(Box::new(DeferNth { n: 1, seen: 0 }));
    assert_eq!(el.run(), reports[0]);
    // Coverage: different deciders explored different schedules.
    assert!(
        reports.iter().any(|r| r.schedule != reports[0].schedule),
        "suffix deciders must be able to diverge the schedule"
    );
}
