//! The callback-side API surface of the event loop.
//!
//! Every callback receives a [`Ctx`], through which it can register timers,
//! queue microtasks and immediates, offload work to the worker pool, interact
//! with the simulated poll layer, schedule environment events, and report
//! application-level errors. This mirrors the API a Node.js program sees
//! (`setTimeout`, `process.nextTick`, `setImmediate`, `uv_queue_work`, …).

use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

use crate::error::{AppError, Errno};
use crate::looper::LoopState;
use crate::poll::{Fd, FdKind, IoCb};
use crate::pool::{QueuedTask, TaskId, WorkCtx};
use crate::proc::{ChildEvent, ChildSpec, ChildState, Pid};
use crate::rng::Rng;
use crate::signal::Signal;
use crate::time::{VDur, VTime};
use crate::timers::TimerId;
use crate::trace::CbKind;

/// Identifier of an idle/prepare/check handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HandleId(pub u64);

/// The loop context handed to every callback.
pub struct Ctx<'a> {
    pub(crate) st: &'a mut LoopState,
}

impl<'a> Ctx<'a> {
    /// Current virtual time.
    pub fn now(&self) -> VTime {
        self.st.now
    }

    /// The environment RNG: the modelled nondeterminism of the outside
    /// world (latencies, durations). Substrates should [`Rng::fork`] their
    /// own sub-stream at setup time.
    pub fn env_rng(&mut self) -> &mut Rng {
        &mut self.st.rng_env
    }

    /// Simulates `dur` of synchronous computation in the current callback.
    pub fn busy(&mut self, dur: VDur) {
        self.st.now += dur;
    }

    // ---- Shared-state access instrumentation --------------------------------
    //
    // Apps mark the accesses their planted races revolve around; with an
    // event log attached (see `EventLoop::set_event_log`) each mark becomes
    // an `Access` row against the currently running event, which is what
    // the nodefz-hb analyzer joins against the happens-before graph. With
    // no log attached all three are no-ops.

    /// Records a read of the named shared site by the current callback.
    pub fn touch_read(&mut self, site: &str) {
        self.st.touch(site, crate::events::AccessKind::Read);
    }

    /// Records a write of the named shared site by the current callback.
    pub fn touch_write(&mut self, site: &str) {
        self.st.touch(site, crate::events::AccessKind::Write);
    }

    /// Records a commutative read-modify-write (e.g. a counter increment)
    /// of the named shared site by the current callback.
    pub fn touch_update(&mut self, site: &str) {
        self.st.touch(site, crate::events::AccessKind::Update);
    }

    // ---- Timers -----------------------------------------------------------

    /// Schedules `cb` to run once, at least `delay` from now (`setTimeout`).
    pub fn set_timeout(&mut self, delay: VDur, cb: impl FnOnce(&mut Ctx<'_>) + 'static) -> TimerId {
        let mut cb = Some(cb);
        // The spent flag is shared with any snapshot clone of this entry:
        // firing the one-shot anywhere marks every copy stale (restores of
        // a snapshot holding it then refuse — see `crate::snapshot`).
        let spent = Rc::new(std::cell::Cell::new(false));
        let flag = spent.clone();
        let wrapped = Rc::new(RefCell::new(move |cx: &mut Ctx<'_>| {
            if let Some(f) = cb.take() {
                flag.set(true);
                f(cx);
            }
        }));
        let id = self
            .st
            .timers
            .insert_with_spent(self.st.now + delay, None, wrapped, Some(spent));
        self.note_timer_cause(id);
        id
    }

    /// Schedules `cb` to run every `period`, starting after `period`
    /// (`setInterval`).
    pub fn set_interval(
        &mut self,
        period: VDur,
        cb: impl FnMut(&mut Ctx<'_>) + 'static,
    ) -> TimerId {
        let wrapped = Rc::new(RefCell::new(cb));
        let id = self
            .st
            .timers
            .insert(self.st.now + period, Some(period), wrapped);
        self.note_timer_cause(id);
        id
    }

    fn note_timer_cause(&mut self, id: TimerId) {
        if let Some(h) = &self.st.events {
            h.0.borrow_mut().set_timer_cause(id.0, self.st.current);
        }
    }

    /// Cancels a timer (`clearTimeout`/`clearInterval`). Returns whether it
    /// was still pending.
    pub fn clear_timer(&mut self, id: TimerId) -> bool {
        self.st.timers.cancel(id)
    }

    /// Whether a timer is still pending.
    pub fn timer_active(&self, id: TimerId) -> bool {
        self.st.timers.is_active(id)
    }

    // ---- Microtasks and phase queues ---------------------------------------

    /// Queues a microtask to run after the current callback completes
    /// (`process.nextTick`).
    pub fn next_tick(&mut self, cb: impl FnOnce(&mut Ctx<'_>) + 'static) {
        self.st.micro.push_back(Box::new(cb));
    }

    /// Queues a callback for the check phase of the next loop iteration
    /// (`setImmediate`).
    pub fn set_immediate(&mut self, cb: impl FnOnce(&mut Ctx<'_>) + 'static) {
        let cause = self.st.current;
        self.st.immediates.push_back((Box::new(cb), cause));
    }

    /// Queues a callback for the pending phase of the next loop iteration.
    pub fn defer_pending(&mut self, cb: impl FnOnce(&mut Ctx<'_>) + 'static) {
        let cause = self.st.current;
        self.st.pending.push_back((Box::new(cb), cause));
    }

    /// Queues a close callback (the loop's close phase), as when a handle is
    /// being torn down.
    pub fn enqueue_close(&mut self, cb: impl FnOnce(&mut Ctx<'_>) + 'static) {
        let cause = self.st.current;
        self.st.closing.push_back((Box::new(cb), cause));
    }

    // ---- Repeating handles -------------------------------------------------

    /// Registers an idle handle, run every iteration while active.
    pub fn add_idle(&mut self, cb: impl FnMut(&mut Ctx<'_>) + 'static) -> HandleId {
        let cause = self.st.current;
        self.st.idle.add(Rc::new(RefCell::new(cb)), cause)
    }

    /// Registers a prepare handle, run just before each poll phase.
    pub fn add_prepare(&mut self, cb: impl FnMut(&mut Ctx<'_>) + 'static) -> HandleId {
        let cause = self.st.current;
        self.st.prepare.add(Rc::new(RefCell::new(cb)), cause)
    }

    /// Registers a check handle, run just after each poll phase.
    pub fn add_check(&mut self, cb: impl FnMut(&mut Ctx<'_>) + 'static) -> HandleId {
        let cause = self.st.current;
        self.st.check.add(Rc::new(RefCell::new(cb)), cause)
    }

    /// Removes an idle handle.
    pub fn remove_idle(&mut self, id: HandleId) -> bool {
        self.st.idle.remove(id)
    }

    /// Removes a prepare handle.
    pub fn remove_prepare(&mut self, id: HandleId) -> bool {
        self.st.prepare.remove(id)
    }

    /// Removes a check handle.
    pub fn remove_check(&mut self, id: HandleId) -> bool {
        self.st.check.remove(id)
    }

    // ---- Worker pool --------------------------------------------------------

    /// Offloads `work` to the worker pool (`uv_queue_work`).
    ///
    /// `cost` is the nominal execution time of the task body; the pool
    /// jitters it. `work` runs "on a worker" at the task's virtual finish
    /// time; its return value is handed to `done`, which runs later on the
    /// event loop.
    ///
    /// # Errors
    ///
    /// Returns `EMFILE` when the done-queue de-multiplexer cannot allocate a
    /// per-task descriptor (§4.4 of the paper).
    pub fn submit_work<T: 'static>(
        &mut self,
        cost: VDur,
        work: impl FnOnce(&mut WorkCtx<'_>) -> T + 'static,
        done: impl FnOnce(&mut Ctx<'_>, T) + 'static,
    ) -> Result<TaskId, Errno> {
        let demux_fd = if self.st.demux_done {
            Some(self.st.poll.alloc(FdKind::TaskDone)?)
        } else {
            None
        };
        let id = self.st.pool.next_task_id();
        let work: crate::pool::WorkFn =
            Box::new(move |wcx: &mut WorkCtx<'_>| Box::new(work(wcx)) as Box<dyn Any>);
        let done: crate::pool::DoneFn = Box::new(move |cx: &mut Ctx<'_>, result| {
            let result = *result
                .downcast::<T>()
                .expect("worker task result type mismatch");
            done(cx, result);
        });
        self.st.pool.queue.push_back(QueuedTask {
            id,
            work,
            done,
            cost,
            demux_fd,
            submitted: self.st.now,
        });
        self.st.stats_submitted();
        if let Some(h) = &self.st.events {
            h.0.borrow_mut().set_task_submit(id.0, self.st.current);
        }
        Ok(id)
    }

    // ---- Poll layer (substrate API) -----------------------------------------

    /// Allocates a simulated file descriptor.
    ///
    /// # Errors
    ///
    /// Returns `EMFILE` at the configured descriptor limit.
    pub fn alloc_fd(&mut self, kind: FdKind) -> Result<Fd, Errno> {
        self.st.poll.alloc(kind)
    }

    /// Installs the watcher callback invoked for each readiness event on
    /// `fd`.
    pub fn register_watcher(
        &mut self,
        fd: Fd,
        cb: impl FnMut(&mut Ctx<'_>, Fd) + 'static,
    ) -> Result<(), Errno> {
        let cb: IoCb = Rc::new(RefCell::new(cb));
        self.st.poll.set_watcher(fd, cb)?;
        self.note_fd_registration(fd);
        Ok(())
    }

    fn note_fd_registration(&mut self, fd: Fd) {
        if let Some(h) = &self.st.events {
            h.0.borrow_mut().set_fd_reg(fd.0, self.st.current);
        }
    }

    /// Marks one readiness event on `fd` at the current time.
    pub fn mark_ready(&mut self, fd: Fd) -> Result<(), Errno> {
        self.st.mark_ready_traced(fd)
    }

    /// Closes a descriptor, dropping its watcher and undelivered events.
    pub fn close_fd(&mut self, fd: Fd) -> Result<(), Errno> {
        self.st.poll.close(fd)
    }

    /// Whether `fd` is open.
    pub fn fd_is_open(&self, fd: Fd) -> bool {
        self.st.poll.is_open(fd)
    }

    /// Number of open descriptors.
    pub fn open_fds(&self) -> usize {
        self.st.poll.open_count()
    }

    /// Sets whether `fd` keeps the loop alive (libuv `uv_ref`/`uv_unref`).
    pub fn set_fd_refd(&mut self, fd: Fd, refd: bool) -> Result<(), Errno> {
        self.st.poll.set_refd(fd, refd)
    }

    /// Overrides the trace kind recorded for events on `fd`.
    pub fn set_fd_trace_kind(&mut self, fd: Fd, kind: CbKind) -> Result<(), Errno> {
        self.st.poll.set_kind_override(fd, kind)
    }

    // ---- Signals -------------------------------------------------------------

    /// Registers a watcher for `sig` (`process.on('SIGINT', …)`).
    ///
    /// The watcher owns a descriptor (signalfd-style) whose readiness flows
    /// through the poll phase, so signal delivery is fuzzable like any other
    /// event. Signal watchers do not keep the loop alive, as in Node.js.
    ///
    /// # Errors
    ///
    /// Returns `EMFILE` at the descriptor limit.
    pub fn on_signal(
        &mut self,
        sig: Signal,
        mut cb: impl FnMut(&mut Ctx<'_>, Signal) + 'static,
    ) -> Result<Fd, Errno> {
        let fd = self.st.poll.alloc(FdKind::Other)?;
        self.st.poll.set_kind_override(fd, CbKind::Signal)?;
        self.st.poll.set_refd(fd, false)?;
        let wrapped: IoCb = Rc::new(RefCell::new(move |cx: &mut Ctx<'_>, _fd| cb(cx, sig)));
        self.st.poll.set_watcher(fd, wrapped)?;
        self.note_fd_registration(fd);
        self.st.signals.register(sig, fd);
        Ok(fd)
    }

    /// Removes a signal watcher registered with [`Ctx::on_signal`].
    pub fn remove_signal_watcher(&mut self, fd: Fd) -> Result<(), Errno> {
        if !self.st.signals.unregister(fd) {
            return Err(Errno::Ebadf);
        }
        self.st.poll.close(fd)
    }

    /// Raises a signal from the environment after `delay` (a `kill(1)`).
    pub fn raise_signal_after(&mut self, delay: VDur, sig: Signal) {
        self.schedule_env(delay, move |cx| cx.deliver_signal(sig));
    }

    /// Delivers a signal to every registered watcher right now.
    pub(crate) fn deliver_signal(&mut self, sig: Signal) {
        let fds = self.st.signals.watchers_of(sig);
        for fd in fds {
            if self.st.mark_ready_traced(fd).is_ok() {
                self.st.signals.delivered += 1;
            }
        }
    }

    /// Signal watchers currently registered for `sig`.
    pub fn signal_watchers(&self, sig: Signal) -> usize {
        self.st.signals.watcher_count(sig)
    }

    // ---- Child processes -------------------------------------------------------

    /// Spawns a simulated child process (`child_process.spawn`).
    ///
    /// `on_output` runs per output chunk; `on_exit` runs once with the exit
    /// code. Both arrive through the child's pipe descriptor in the poll
    /// phase. The child keeps the loop alive until its exit is delivered;
    /// `SIGCHLD` is raised when it terminates.
    ///
    /// # Errors
    ///
    /// Returns `EMFILE` at the descriptor limit.
    pub fn spawn_child(
        &mut self,
        spec: ChildSpec,
        mut on_output: impl FnMut(&mut Ctx<'_>, &[u8]) + 'static,
        on_exit: impl FnOnce(&mut Ctx<'_>, i32) + 'static,
    ) -> Result<Pid, Errno> {
        let fd = self.st.poll.alloc(FdKind::Other)?;
        self.st.poll.set_kind_override(fd, CbKind::ChildIo)?;
        let pid = self.st.procs.next_pid();
        self.st.procs.children.push(ChildState {
            pid,
            fd,
            inbox: Default::default(),
            killed: false,
            exited: false,
        });
        let mut on_exit = Some(on_exit);
        let watcher: IoCb = Rc::new(RefCell::new(move |cx: &mut Ctx<'_>, fd: Fd| {
            let event = cx.st.procs.by_fd(fd).and_then(|c| c.inbox.pop_front());
            match event {
                Some(ChildEvent::Output(bytes)) => on_output(cx, &bytes),
                Some(ChildEvent::Exit(code)) => {
                    cx.st.procs.remove(pid);
                    let _ = cx.st.poll.close(fd);
                    if let Some(f) = on_exit.take() {
                        f(cx, code);
                    }
                }
                None => {}
            }
        }));
        self.st.poll.set_watcher(fd, watcher)?;
        self.note_fd_registration(fd);
        // Schedule the child's environment-side life.
        let runtime = self.st.rng_env.jitter(spec.runtime, 0.3);
        for (offset, bytes) in spec.output {
            let at = offset.min(runtime);
            self.schedule_env(at, move |cx| {
                let fd = match cx.st.procs.get_mut(pid) {
                    Some(c) if !c.exited && !c.killed => {
                        c.inbox.push_back(ChildEvent::Output(bytes));
                        Some(c.fd)
                    }
                    _ => None,
                };
                if let Some(fd) = fd {
                    let _ = cx.mark_ready(fd);
                }
            });
        }
        let exit_code = spec.exit_code;
        self.schedule_env(runtime, move |cx| {
            cx.finish_child(pid, exit_code);
        });
        Ok(pid)
    }

    /// Kills a running child (`child.kill()`); its exit event reports code
    /// 137 and `SIGCHLD` is raised.
    ///
    /// # Errors
    ///
    /// Returns `ESRCH` if the child already exited or never existed.
    pub fn kill_child(&mut self, pid: Pid) -> Result<(), Errno> {
        match self.st.procs.get_mut(pid) {
            Some(c) if !c.exited => {
                c.killed = true;
            }
            _ => return Err(Errno::Esrch),
        }
        self.finish_child(pid, 137);
        Ok(())
    }

    fn finish_child(&mut self, pid: Pid, exit_code: i32) {
        let fd = match self.st.procs.get_mut(pid) {
            Some(c) if !c.exited => {
                c.exited = true;
                c.inbox.push_back(ChildEvent::Exit(exit_code));
                Some(c.fd)
            }
            _ => None,
        };
        if let Some(fd) = fd {
            let _ = self.st.mark_ready_traced(fd);
            self.deliver_signal(Signal::Chld);
        }
    }

    /// Children spawned and not yet exited.
    pub fn running_children(&self) -> usize {
        self.st.procs.running()
    }

    // ---- Environment --------------------------------------------------------

    /// Schedules an environment effect `delay` from now.
    ///
    /// Environment effects model the outside world; they run with a loop
    /// context but are not traced as application callbacks.
    pub fn schedule_env(&mut self, delay: VDur, f: impl FnOnce(&mut Ctx<'_>) + 'static) {
        let at = self.st.now + delay;
        self.schedule_env_at(at, f);
    }

    /// Schedules an environment effect at an absolute virtual time.
    pub fn schedule_env_at(&mut self, at: VTime, f: impl FnOnce(&mut Ctx<'_>) + 'static) {
        let at = at.max(self.st.now);
        let cause = self.st.current;
        self.st
            .env
            .schedule(at, crate::envq::EnvAction::Custom(Box::new(f), cause));
    }

    // ---- Errors and control ---------------------------------------------------

    /// Records a non-fatal application error (a thrown-and-caught error).
    pub fn report_error(&mut self, code: &str, message: impl Into<String>) {
        let err = AppError {
            at: self.st.now,
            code: code.to_string(),
            message: message.into(),
            fatal: false,
        };
        self.st.errors.push(err);
    }

    /// Records a fatal error and stops the loop (an uncaught exception).
    pub fn crash(&mut self, code: &str, message: impl Into<String>) {
        let err = AppError {
            at: self.st.now,
            code: code.to_string(),
            message: message.into(),
            fatal: true,
        };
        self.st.errors.push(err);
        self.st.stopped = true;
    }

    /// Stops the loop after the current callback (like `process.exit`, but
    /// orderly).
    pub fn stop(&mut self) {
        self.st.stopped = true;
    }

    /// Number of callbacks dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.st.trace.dispatched()
    }
}
