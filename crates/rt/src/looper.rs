//! The event loop driver.
//!
//! [`EventLoop::run`] executes libuv's iteration structure in virtual time:
//! timers → pending → idle → prepare → poll → check → close, consulting the
//! installed [`Scheduler`] at every point of legal nondeterminism. The loop
//! terminates when nothing can keep it alive (no timers, no ref'd
//! descriptors, no queued work, no scheduled environment events), when a
//! callback calls [`Ctx::stop`]/[`Ctx::crash`], or at a configured safety
//! cap.

use std::cell::RefCell;
use std::rc::Rc;

#[cfg(feature = "obs")]
use crate::obs::{ObsHandle, ObsSpan, Phase};

use crate::ctx::{Ctx, HandleId};
use crate::envq::{EnvAction, EnvQueue};
use crate::error::AppError;
use crate::events::{CbId, EvDetail, EvKind, EventLogHandle};
use crate::poll::{Fd, FdKind, PollState, ReadyEntry};
use crate::pool::{CompletedTask, PoolState, PoolStats, RunningTask, TaskId, WorkCtx};
use crate::proc::ProcTable;
use crate::rng::Rng;
use crate::sched::{PoolMode, Scheduler, TimerVerdict, VanillaScheduler};
use crate::signal::SignalState;
use crate::snapshot::LoopSnapshot;
use crate::time::{VDur, VTime};
use crate::timers::TimerHeap;
use crate::trace::{CbKind, TraceRecorder, TypeSchedule};

/// Wraps a loop-phase body in an observability span (feature `obs`).
/// With the feature off this expands to the bare body: the hot path
/// compiles exactly as before.
#[cfg(feature = "obs")]
macro_rules! phased {
    ($self:ident, $phase:ident, $body:expr) => {{
        let span = $self.obs_enter();
        $body;
        $self.obs_exit_phase(span, Phase::$phase);
    }};
}

#[cfg(not(feature = "obs"))]
macro_rules! phased {
    ($self:ident, $phase:ident, $body:expr) => {
        $body
    };
}

/// Wraps one callback dispatch in an observability span (feature `obs`).
#[cfg(feature = "obs")]
macro_rules! cb_span {
    ($self:ident, $kind:expr, $body:expr) => {{
        let kind = $kind;
        let span = $self.obs_enter();
        $body;
        $self.obs_exit_dispatch(span, kind);
    }};
}

#[cfg(not(feature = "obs"))]
macro_rules! cb_span {
    ($self:ident, $kind:expr, $body:expr) => {
        $body
    };
}

/// A one-shot queued callback.
pub(crate) type Job = Box<dyn FnOnce(&mut Ctx<'_>)>;

/// A one-shot queued callback with its registering event (provenance).
pub(crate) type CausedJob = (Job, Option<CbId>);

type RepeatCb = Rc<RefCell<dyn FnMut(&mut Ctx<'_>)>>;

/// Registry for idle/prepare/check handles.
///
/// Cloning shares the callback `Rc`s with the original (see the
/// fork-safety note on `TimerEntry`).
#[derive(Clone, Default)]
pub(crate) struct RepeatHandles {
    items: Vec<(HandleId, RepeatCb, Option<CbId>)>,
    next: u64,
}

impl RepeatHandles {
    pub fn add(&mut self, cb: RepeatCb, cause: Option<CbId>) -> HandleId {
        let id = HandleId(self.next);
        self.next += 1;
        self.items.push((id, cb, cause));
        id
    }

    pub fn remove(&mut self, id: HandleId) -> bool {
        let before = self.items.len();
        self.items.retain(|(hid, _, _)| *hid != id);
        self.items.len() != before
    }

    pub fn active(&self) -> usize {
        self.items.len()
    }

    fn snapshot_into(&self, out: &mut Vec<(RepeatCb, Option<CbId>)>) {
        out.extend(self.items.iter().map(|(_, cb, cause)| (cb.clone(), *cause)));
    }

    /// Clears all handles for a fresh run, keeping allocated capacity.
    fn reset(&mut self) {
        self.items.clear();
        self.next = 0;
    }
}

/// Event loop configuration.
#[derive(Clone, Debug)]
pub struct LoopConfig {
    /// Seed for the environment RNG (latencies, durations, costs).
    pub env_seed: u64,
    /// Per-process descriptor limit (`ulimit -n` analog).
    pub fd_limit: usize,
    /// Jitter fraction applied to worker-task cost hints.
    pub pool_cost_jitter: f64,
    /// Nominal virtual execution cost of one callback.
    pub cb_cost_base: VDur,
    /// Jitter fraction applied to callback costs.
    pub cb_cost_jitter: f64,
    /// Safety cap on loop iterations.
    pub max_iterations: u64,
    /// Safety cap on virtual time.
    pub max_vtime: VTime,
    /// Cap on microtasks drained after one callback (storm guard).
    pub microtask_limit: usize,
    /// Whether to record the full type schedule (counts are always kept).
    pub trace: bool,
}

impl Default for LoopConfig {
    fn default() -> LoopConfig {
        LoopConfig {
            env_seed: 0,
            fd_limit: 10_240,
            pool_cost_jitter: 0.4,
            cb_cost_base: VDur::micros(20),
            cb_cost_jitter: 0.5,
            max_iterations: 10_000_000,
            max_vtime: VTime::ZERO + VDur::secs(3_600),
            microtask_limit: 10_000,
            trace: true,
        }
    }
}

impl LoopConfig {
    /// Default configuration with the given environment seed.
    pub fn seeded(env_seed: u64) -> LoopConfig {
        LoopConfig {
            env_seed,
            ..LoopConfig::default()
        }
    }
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Termination {
    /// Nothing left to do: no live handles, work, or environment events.
    Quiescent,
    /// A callback called [`Ctx::stop`] or [`Ctx::crash`].
    Stopped,
    /// The iteration safety cap was hit.
    IterationCap,
    /// The virtual-time safety cap was hit.
    VTimeCap,
    /// The loop is alive (e.g. a ref'd descriptor is open) but no event can
    /// ever arrive: a real libuv loop would block in epoll forever. This is
    /// how "request hangs" impacts manifest.
    Hung,
}

/// The outcome of one [`EventLoop::run`].
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Loop iterations executed.
    pub iterations: u64,
    /// Final virtual time.
    pub end_time: VTime,
    /// Total callbacks dispatched.
    pub dispatched: u64,
    /// Application errors reported during the run.
    pub errors: Vec<AppError>,
    /// The recorded type schedule (empty if tracing was disabled).
    pub schedule: TypeSchedule,
    /// Worker pool statistics.
    pub pool: PoolStats,
    /// Why the run ended.
    pub termination: Termination,
}

impl RunReport {
    /// Whether any error with the given code was reported.
    pub fn has_error(&self, code: &str) -> bool {
        self.errors.iter().any(|e| e.code == code)
    }

    /// Whether any fatal error (crash) was reported.
    pub fn crashed(&self) -> bool {
        self.errors.iter().any(|e| e.fatal)
    }
}

/// Live-resource counts for one loop, as used by the loop's liveness
/// check and by the [`LoopPool`] reuse guard.
///
/// Everything here must be zero immediately after `LoopState::reset`: a
/// recycled loop that still holds a handle, watcher, or queued job would
/// leak one run's state into the next run's schedule (and into any
/// attached telemetry). [`EventLoop::live_counts`] exposes the same view
/// for tests and diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveCounts {
    /// Armed timers.
    pub timers: usize,
    /// Open descriptors (watchers, pool descriptors, signal fds, …).
    pub open_fds: usize,
    /// Queued microtasks (`next_tick`).
    pub microtasks: usize,
    /// Queued immediates (`set_immediate`).
    pub immediates: usize,
    /// Queued pending-phase callbacks.
    pub pending: usize,
    /// Queued close callbacks.
    pub closing: usize,
    /// Active idle handles.
    pub idle: usize,
    /// Active prepare handles.
    pub prepare: usize,
    /// Active check handles.
    pub check: usize,
    /// Scheduled environment events.
    pub env_events: usize,
    /// Worker-pool tasks waiting to start.
    pub pool_queued: usize,
    /// Worker-pool tasks in flight.
    pub pool_running: usize,
    /// Worker-pool completions awaiting delivery (mux + demux).
    pub pool_done: usize,
    /// Running child processes.
    pub children: usize,
}

impl LiveCounts {
    /// Whether nothing is live.
    pub fn is_zero(&self) -> bool {
        *self == LiveCounts::default()
    }
}

pub(crate) struct LoopState {
    pub cfg: LoopConfig,
    pub now: VTime,
    pub rng_env: Rng,
    pub rng_cost: Rng,
    pub timers: TimerHeap,
    pub micro: std::collections::VecDeque<Job>,
    pub immediates: std::collections::VecDeque<CausedJob>,
    pub pending: std::collections::VecDeque<CausedJob>,
    pub closing: std::collections::VecDeque<CausedJob>,
    pub idle: RepeatHandles,
    pub prepare: RepeatHandles,
    pub check: RepeatHandles,
    pub poll: PollState,
    pub pool: PoolState,
    pub env: EnvQueue,
    pub signals: SignalState,
    pub procs: ProcTable,
    pub trace: TraceRecorder,
    pub errors: Vec<AppError>,
    pub stopped: bool,
    pub hung: bool,
    pub demux_done: bool,
    pub iter: u64,
    /// Dispatch-provenance log, when one is attached (see
    /// [`EventLoop::set_event_log`]). `None` costs nothing.
    pub events: Option<EventLogHandle>,
    /// The event currently executing (provenance source for registrations).
    pub current: Option<CbId>,
    /// Scratch for the poll phase's ready list; reused across iterations.
    ready_scratch: Vec<ReadyEntry>,
    /// Scratch for repeat-phase handle snapshots; reused across iterations.
    repeat_scratch: Vec<(RepeatCb, Option<CbId>)>,
}

impl LoopState {
    fn new(cfg: LoopConfig, demux_done: bool) -> LoopState {
        let mut root = Rng::new(cfg.env_seed);
        let rng_env = root.fork();
        let rng_cost = root.fork();
        let rng_pool = root.fork();
        LoopState {
            now: VTime::ZERO,
            rng_env,
            rng_cost,
            timers: TimerHeap::default(),
            micro: Default::default(),
            immediates: Default::default(),
            pending: Default::default(),
            closing: Default::default(),
            idle: RepeatHandles::default(),
            prepare: RepeatHandles::default(),
            check: RepeatHandles::default(),
            poll: PollState::new(cfg.fd_limit),
            pool: PoolState::new(rng_pool, cfg.pool_cost_jitter),
            env: EnvQueue::default(),
            signals: SignalState::default(),
            procs: ProcTable::default(),
            trace: TraceRecorder::new(cfg.trace),
            errors: Vec::new(),
            stopped: false,
            hung: false,
            demux_done,
            iter: 0,
            events: None,
            current: None,
            ready_scratch: Vec::new(),
            repeat_scratch: Vec::new(),
            cfg,
        }
    }

    /// Re-initializes a recycled state for a fresh run, keeping every
    /// collection's allocated capacity. Must leave the state exactly as
    /// [`LoopState::new`] would, apart from spare capacity.
    fn reset(&mut self, cfg: LoopConfig, demux_done: bool) {
        // The RNG fork order must match `new` exactly: replayed runs depend
        // on the env/cost/pool streams being identical.
        let mut root = Rng::new(cfg.env_seed);
        self.rng_env = root.fork();
        self.rng_cost = root.fork();
        let rng_pool = root.fork();
        self.now = VTime::ZERO;
        self.timers.reset();
        self.micro.clear();
        self.immediates.clear();
        self.pending.clear();
        self.closing.clear();
        self.idle.reset();
        self.prepare.reset();
        self.check.reset();
        self.poll.reset(cfg.fd_limit);
        self.pool.reset(rng_pool, cfg.pool_cost_jitter);
        self.env.reset();
        self.signals.reset();
        self.procs.reset();
        self.trace.reset(cfg.trace);
        self.errors.clear();
        self.stopped = false;
        self.hung = false;
        self.demux_done = demux_done;
        self.iter = 0;
        // An attached event log is owned jointly with whoever holds the
        // other end of the handle: clear it on recycle so one run's
        // provenance can never leak into (or be misread as) the next
        // pooled run's. Callers wanting the log must snapshot it before
        // the state is recycled.
        if let Some(h) = self.events.take() {
            h.reset();
        }
        self.current = None;
        self.ready_scratch.clear();
        self.repeat_scratch.clear();
        self.cfg = cfg;
        // Pool-reuse guard: a reset that leaves any handle, watcher, or
        // queued job live would leak one run's state into the next. Each
        // sub-reset above is supposed to clear its module; this checks the
        // composition whenever a loop is recycled in a debug build.
        debug_assert!(
            self.live_counts().is_zero(),
            "LoopState::reset left live resources: {:?}",
            self.live_counts()
        );
        debug_assert!(
            self.events.is_none(),
            "LoopState::reset left an event log attached"
        );
    }

    fn live_counts(&self) -> LiveCounts {
        LiveCounts {
            timers: self.timers.len(),
            open_fds: self.poll.open_count(),
            microtasks: self.micro.len(),
            immediates: self.immediates.len(),
            pending: self.pending.len(),
            closing: self.closing.len(),
            idle: self.idle.active(),
            prepare: self.prepare.active(),
            check: self.check.active(),
            env_events: self.env.len(),
            pool_queued: self.pool.queue.len(),
            pool_running: self.pool.running.len(),
            pool_done: self.pool.done_mux.len() + self.pool.done_demux.len(),
            children: self.procs.running(),
        }
    }

    pub fn stats_submitted(&mut self) {
        self.pool.stats.submitted += 1;
    }

    /// Records a shared-state access against the currently running event.
    /// No-op when no event log is attached.
    pub fn touch(&mut self, site: &str, kind: crate::events::AccessKind) {
        if let (Some(h), Some(cur)) = (&self.events, self.current) {
            h.0.borrow_mut().touch(cur, site, kind);
        }
    }

    /// Marks `fd` ready, crediting the currently running event as the
    /// readiness producer in the attached event log (if any). All
    /// app-facing readiness must go through here; the loop's internal
    /// pool-descriptor marks bypass it because pool completions thread
    /// their provenance through the task tables instead.
    pub fn mark_ready_traced(&mut self, fd: Fd) -> Result<(), crate::error::Errno> {
        let now = self.now;
        let r = self.poll.mark_ready(fd, now);
        if r.is_ok() {
            if let Some(h) = &self.events {
                h.0.borrow_mut().push_fd_ready(fd.0, self.current);
            }
        }
        r
    }

    fn cb_cost(&mut self) -> VDur {
        let base = self.cfg.cb_cost_base;
        self.rng_cost.jitter(base, self.cfg.cb_cost_jitter)
    }

    fn alive(&self) -> bool {
        self.timers.len() > 0
            || self.poll.any_refd()
            || self.poll.has_pending()
            || self.pool.busy()
            || !self.env.is_empty()
            || !self.micro.is_empty()
            || !self.pending.is_empty()
            || !self.immediates.is_empty()
            || !self.closing.is_empty()
            || self.idle.active() > 0
            || self.prepare.active() > 0
            || self.check.active() > 0
    }
}

/// A reusable slab of recycled loop state.
///
/// Fuzzing campaigns run millions of short loops; building each one from
/// scratch re-grows every internal collection (timer heap, watcher slab,
/// queues, trace buffer) from zero. A pool keeps the state of finished
/// loops — reset but with capacity intact — and hands it to the next run,
/// making steady-state loop construction allocation-free.
///
/// Clones share the same slot. The pool holds exactly one state — campaign
/// workers run one loop at a time, and a single slot avoids unbounded
/// retention. State moves in and out by `mem::swap`, so recycling itself
/// never touches the heap.
#[derive(Clone)]
pub struct LoopPool {
    slot: Rc<RefCell<PoolSlot>>,
}

struct PoolSlot {
    st: LoopState,
    /// Whether `st` came back from a finished loop (vs. the initial dummy).
    primed: bool,
}

impl LoopPool {
    /// Creates an empty pool.
    pub fn new() -> LoopPool {
        LoopPool {
            slot: Rc::new(RefCell::new(PoolSlot {
                st: LoopState::new(LoopConfig::default(), false),
                primed: false,
            })),
        }
    }

    /// Swaps the pooled state into `dst`; returns whether it was recycled.
    fn take_into(&self, dst: &mut LoopState) -> bool {
        let mut slot = self.slot.borrow_mut();
        std::mem::swap(&mut slot.st, dst);
        std::mem::replace(&mut slot.primed, false)
    }

    /// Swaps a finished loop's state into the pool for the next run.
    fn put_from(&self, src: &mut LoopState) {
        let mut slot = self.slot.borrow_mut();
        std::mem::swap(&mut slot.st, src);
        slot.primed = true;
    }

    /// Whether a recycled state is currently available.
    pub fn is_primed(&self) -> bool {
        self.slot.borrow().primed
    }
}

impl Default for LoopPool {
    fn default() -> LoopPool {
        LoopPool::new()
    }
}

impl std::fmt::Debug for LoopPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopPool")
            .field("primed", &self.is_primed())
            .finish()
    }
}

/// A deterministic, virtual-time event loop with a pluggable scheduler.
///
/// # Examples
///
/// ```
/// use nodefz_rt::{EventLoop, LoopConfig, VDur};
///
/// let mut el = EventLoop::new(LoopConfig::seeded(1));
/// el.enter(|cx| {
///     cx.set_timeout(VDur::millis(5), |cx| {
///         cx.report_error("done", "timer fired");
///     });
/// });
/// let report = el.run();
/// assert!(report.has_error("done"));
/// ```
pub struct EventLoop {
    st: LoopState,
    sched: Box<dyn Scheduler>,
    pool_mode: PoolMode,
    /// Pool the state returns to when the loop is dropped.
    home: Option<LoopPool>,
    /// Attached observability, if any (compile-time feature `obs`).
    #[cfg(feature = "obs")]
    obs: Option<ObsHandle>,
}

impl EventLoop {
    /// Creates a loop with the faithful [`VanillaScheduler`].
    pub fn new(cfg: LoopConfig) -> EventLoop {
        EventLoop::with_scheduler(cfg, Box::new(VanillaScheduler::new()))
    }

    /// Creates a loop driven by the given scheduler.
    pub fn with_scheduler(cfg: LoopConfig, sched: Box<dyn Scheduler>) -> EventLoop {
        let pool_mode = sched.pool_mode();
        let demux = sched.demux_done();
        EventLoop {
            st: LoopState::new(cfg, demux),
            sched,
            pool_mode,
            home: None,
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    /// Creates a loop driven by the given scheduler, reusing recycled state
    /// from `pool` when available. The state returns to the pool on drop.
    ///
    /// Behaviorally identical to [`EventLoop::with_scheduler`]: a recycled
    /// state is fully reset (RNG streams included), only spare collection
    /// capacity carries over.
    pub fn with_scheduler_pooled(
        cfg: LoopConfig,
        sched: Box<dyn Scheduler>,
        pool: &LoopPool,
    ) -> EventLoop {
        let pool_mode = sched.pool_mode();
        let demux = sched.demux_done();
        let mut st = LoopState::new(cfg.clone(), demux);
        // The swap always happens (primed or not), so reset unconditionally:
        // what came out of the slot was built for some other run's config.
        pool.take_into(&mut st);
        st.reset(cfg, demux);
        EventLoop {
            st,
            sched,
            pool_mode,
            home: Some(pool.clone()),
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    /// Name of the installed scheduler.
    pub fn scheduler_name(&self) -> &'static str {
        self.sched.name()
    }

    /// Counts of everything currently keeping this loop alive.
    ///
    /// Freshly constructed (or pool-recycled) loops report all zeros;
    /// the [`LoopPool`] reuse guard asserts exactly that in debug builds.
    pub fn live_counts(&self) -> LiveCounts {
        self.st.live_counts()
    }

    /// Attaches an observability handle: subsequent phases and dispatches
    /// are profiled into it (and forwarded to its sink, if any).
    ///
    /// Only available with the `obs` feature; without it the loop carries
    /// no instrumentation at all.
    #[cfg(feature = "obs")]
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = Some(obs);
    }

    /// Detaches the observability handle, if one was attached.
    #[cfg(feature = "obs")]
    pub fn clear_obs(&mut self) {
        self.obs = None;
    }

    #[cfg(feature = "obs")]
    fn obs_enter(&self) -> ObsSpan {
        self.obs
            .as_ref()
            .map(|_| (self.st.now, std::time::Instant::now()))
    }

    #[cfg(feature = "obs")]
    fn obs_exit_phase(&mut self, span: ObsSpan, phase: Phase) {
        if let (Some(obs), Some((start, wall))) = (&self.obs, span) {
            let wall_ns = wall.elapsed().as_nanos() as u64;
            obs.record_phase(phase, start, self.st.now, wall_ns);
        }
    }

    #[cfg(feature = "obs")]
    fn obs_exit_dispatch(&mut self, span: ObsSpan, kind: CbKind) {
        if let (Some(obs), Some((start, wall))) = (&self.obs, span) {
            let wall_ns = wall.elapsed().as_nanos() as u64;
            obs.record_dispatch(kind, start, self.st.now, wall_ns);
        }
    }

    /// Attaches (or replaces) a dispatch-provenance event log.
    ///
    /// The handle is reset and seeded with the synthetic `Setup` event
    /// (id 0), to which everything registered via [`EventLoop::enter`] is
    /// attributed. Every subsequently dispatched callback is recorded with
    /// its causal provenance; `nodefz-hb` consumes the result.
    pub fn set_event_log(&mut self, handle: &EventLogHandle) {
        handle.reset();
        let decisions = self.sched.decision_count();
        let id = handle.0.borrow_mut().push_event(
            EvKind::Setup,
            None,
            None,
            EvDetail::None,
            decisions,
            self.st.iter,
        );
        self.st.events = Some(handle.clone());
        self.st.current = Some(id);
    }

    /// Starts a provenance record for a dispatch and makes it current.
    /// Callers save and restore `st.current` around the dispatch body.
    fn begin_event(
        &mut self,
        kind: EvKind,
        cause: Option<CbId>,
        cause2: Option<CbId>,
        detail: EvDetail,
    ) {
        if let Some(h) = &self.st.events {
            let decisions = self.sched.decision_count();
            let id =
                h.0.borrow_mut()
                    .push_event(kind, cause, cause2, detail, decisions, self.st.iter);
            self.st.current = Some(id);
        }
    }

    /// Runs a setup closure with a loop context before (or between) runs.
    pub fn enter<R>(&mut self, f: impl FnOnce(&mut Ctx<'_>) -> R) -> R {
        let mut cx = Ctx { st: &mut self.st };
        let r = f(&mut cx);
        self.drain_micro();
        r
    }

    /// Runs the loop to completion and returns the run report.
    pub fn run(&mut self) -> RunReport {
        self.run_bounded(u64::MAX)
            .expect("unbounded run terminates")
    }

    /// Runs at most `max` more iterations. Returns the run report if the
    /// loop terminated within them, or `None` if it paused mid-run — a
    /// paused loop is a candidate [`EventLoop::snapshot`] point and
    /// resumes with another `run_bounded` (or `run`) call.
    pub fn run_bounded(&mut self, max: u64) -> Option<RunReport> {
        // A previous run's hang verdict does not carry over: re-entering
        // may have scheduled new work. (At a mid-run pause the loop is
        // never hung — a hang verdict terminates — so clearing here
        // cannot change a resumed run's behavior.)
        self.st.hung = false;
        let mut left = max;
        let termination = loop {
            if self.st.stopped {
                break Termination::Stopped;
            }
            if !self.st.alive() {
                break Termination::Quiescent;
            }
            if self.st.hung {
                break Termination::Hung;
            }
            if self.st.iter >= self.st.cfg.max_iterations {
                break Termination::IterationCap;
            }
            if self.st.now > self.st.cfg.max_vtime {
                break Termination::VTimeCap;
            }
            if left == 0 {
                return None;
            }
            left -= 1;
            self.iterate();
        };
        Some(RunReport {
            iterations: self.st.iter,
            end_time: self.st.now,
            dispatched: self.st.trace.dispatched(),
            errors: self.st.errors.clone(),
            schedule: self.st.trace.schedule().clone(),
            pool: self.st.pool.stats,
            termination,
        })
    }

    /// Whether the loop is at a forkable point: no queued one-shot
    /// callbacks (microtasks, immediates, pending/close queues, pool
    /// tasks, custom environment effects) and a scheduler that implements
    /// [`Scheduler::fork_box`]. See [`crate::snapshot`] for the full
    /// admissibility and fork-safety story.
    pub fn fork_admissible(&self) -> bool {
        crate::snapshot::fork_admissible(&self.st, self.sched.as_ref())
    }

    /// Captures a snapshot of the (paused) loop, or `None` if it is not at
    /// a forkable point ([`EventLoop::fork_admissible`]).
    ///
    /// The snapshot owns a fork of the scheduler and a deep copy of any
    /// attached event log; it can be restored any number of times.
    pub fn snapshot(&self) -> Option<LoopSnapshot> {
        LoopSnapshot::capture(&self.st, self.sched.as_ref(), self.pool_mode)
    }

    /// Replaces the loop's scheduler, returning the previous one.
    ///
    /// Only meaningful while the loop is paused at an iteration boundary
    /// (after [`EventLoop::run_bounded`] returned `None`, or right after
    /// [`EventLoop::restore`]): swapping mid-phase would hand related
    /// decisions to two different deciders. Fork exploration uses this to
    /// resume one captured prefix under many differently-seeded suffix
    /// schedulers — restore rewinds the state, this picks the suffix.
    pub fn replace_scheduler(&mut self, sched: Box<dyn Scheduler>) -> Box<dyn Scheduler> {
        std::mem::replace(&mut self.sched, sched)
    }

    /// Rewinds the loop to a snapshot, replacing its scheduler with a
    /// fresh fork of the captured one. Returns `false` (leaving the loop
    /// untouched) if the snapshot cannot be soundly resumed: its scheduler
    /// refuses to fork again, or a captured one-shot timer was already
    /// consumed by another run sharing it (stale snapshot).
    ///
    /// The restored loop resumes with [`EventLoop::run`] /
    /// [`EventLoop::run_bounded`] exactly as the original would have. If
    /// the loop has an event log attached, the snapshot's log content is
    /// written into that same handle, so external holders observe the
    /// rewind.
    pub fn restore(&mut self, snap: &LoopSnapshot) -> bool {
        match snap.restore_into(&mut self.st) {
            Some(sched) => {
                self.sched = sched;
                self.pool_mode = snap.pool_mode;
                true
            }
            None => false,
        }
    }

    // ---- Internals -----------------------------------------------------------

    fn iterate(&mut self) {
        self.st.iter += 1;
        phased!(self, Timers, self.timer_phase());
        if self.st.stopped {
            return;
        }
        phased!(self, Pending, self.pending_phase());
        phased!(self, Idle, self.repeat_phase(CbKind::Idle));
        phased!(self, Prepare, self.repeat_phase(CbKind::Prepare));
        if self.st.stopped {
            return;
        }
        phased!(self, Poll, self.poll_phase());
        if self.st.stopped {
            return;
        }
        phased!(self, Check, {
            self.check_phase();
            self.repeat_phase(CbKind::Check);
        });
        if self.st.stopped {
            return;
        }
        phased!(self, Close, self.close_phase());
    }

    fn run_traced_job(&mut self, kind: CbKind, job: Job, cause: Option<CbId>) {
        self.st.trace.record(kind);
        // Microtasks drained below are absorbed into this event, so the
        // restore deliberately happens after the whole span.
        let prev = self.st.current;
        self.begin_event(EvKind::Cb(kind), cause, None, EvDetail::None);
        cb_span!(self, kind, {
            {
                let mut cx = Ctx { st: &mut self.st };
                job(&mut cx);
            }
            let cost = self.st.cb_cost();
            self.st.now += cost;
            self.drain_micro();
        });
        self.st.current = prev;
    }

    fn run_traced_repeat(
        &mut self,
        kind: CbKind,
        cb: RepeatCb,
        cause: Option<CbId>,
        detail: EvDetail,
    ) {
        self.st.trace.record(kind);
        let prev = self.st.current;
        self.begin_event(EvKind::Cb(kind), cause, None, detail);
        cb_span!(self, kind, {
            {
                let mut cx = Ctx { st: &mut self.st };
                (cb.borrow_mut())(&mut cx);
            }
            let cost = self.st.cb_cost();
            self.st.now += cost;
            self.drain_micro();
        });
        self.st.current = prev;
    }

    fn drain_micro(&mut self) {
        let mut drained = 0usize;
        while let Some(job) = self.st.micro.pop_front() {
            {
                let mut cx = Ctx { st: &mut self.st };
                job(&mut cx);
            }
            drained += 1;
            if drained > self.st.cfg.microtask_limit {
                let at = self.st.now;
                self.st.errors.push(AppError {
                    at,
                    code: "microtask-storm".into(),
                    message: format!("more than {} microtasks drained", drained),
                    fatal: true,
                });
                self.st.stopped = true;
                self.st.micro.clear();
                return;
            }
            if self.st.stopped {
                return;
            }
        }
    }

    fn timer_phase(&mut self) {
        loop {
            if self.st.stopped {
                return;
            }
            let Some(entry) = self.st.timers.pop_due(self.st.now) else {
                return;
            };
            match self.sched.on_timer() {
                TimerVerdict::Run => {
                    let cb = entry.cb.clone();
                    let detail = EvDetail::Timer {
                        deadline: entry.deadline,
                        seq: entry.seq,
                    };
                    let cause = self
                        .st
                        .events
                        .as_ref()
                        .and_then(|h| h.0.borrow().timer_cause(entry.id.0));
                    if let Some(period) = entry.period {
                        let next = self.st.now + period;
                        self.st.timers.reinsert(entry, next);
                    }
                    self.run_traced_repeat(CbKind::Timer, cb, cause, detail);
                }
                TimerVerdict::Defer { delay } => {
                    // Short-circuit: put the timer back untouched (keeping
                    // its seq via reinsert_deferred) and stop timer
                    // processing for this iteration, injecting the delay.
                    let deadline = entry.deadline;
                    self.st.timers.reinsert_deferred(entry, deadline);
                    self.st.now += delay;
                    return;
                }
            }
        }
    }

    fn pending_phase(&mut self) {
        let n = self.st.pending.len();
        for _ in 0..n {
            if self.st.stopped {
                return;
            }
            let Some((job, cause)) = self.st.pending.pop_front() else {
                return;
            };
            self.run_traced_job(CbKind::Pending, job, cause);
        }
    }

    fn check_phase(&mut self) {
        // Snapshot: immediates queued during the check phase run on the next
        // iteration (Node.js `setImmediate` semantics).
        let n = self.st.immediates.len();
        for _ in 0..n {
            if self.st.stopped {
                return;
            }
            let Some((job, cause)) = self.st.immediates.pop_front() else {
                return;
            };
            self.run_traced_job(CbKind::Check, job, cause);
        }
    }

    fn repeat_phase(&mut self, kind: CbKind) {
        // Snapshot into the reusable scratch: callbacks may add or remove
        // handles mid-phase, and the phase runs the set as of phase entry.
        let mut handles = std::mem::take(&mut self.st.repeat_scratch);
        handles.clear();
        match kind {
            CbKind::Idle => self.st.idle.snapshot_into(&mut handles),
            CbKind::Prepare => self.st.prepare.snapshot_into(&mut handles),
            CbKind::Check => self.st.check.snapshot_into(&mut handles),
            _ => unreachable!("repeat_phase called with {kind:?}"),
        };
        for (cb, cause) in handles.drain(..) {
            if self.st.stopped {
                break;
            }
            self.run_traced_repeat(kind, cb, cause, EvDetail::None);
        }
        handles.clear();
        self.st.repeat_scratch = handles;
    }

    fn close_phase(&mut self) {
        let n = self.st.closing.len();
        for _ in 0..n {
            if self.st.stopped {
                return;
            }
            let Some((job, cause)) = self.st.closing.pop_front() else {
                return;
            };
            if self.sched.defer_close() {
                self.st.closing.push_back((job, cause));
                continue;
            }
            self.run_traced_job(CbKind::Close, job, cause);
        }
    }

    /// Delivers every environment event due at or before the current time.
    ///
    /// Profiled as [`Phase::Demux`]; note it runs nested inside the poll
    /// phase, so its time is a subset of the poll profile's.
    fn drain_env(&mut self) {
        phased!(self, Demux, {
            while let Some(entry) = self.st.env.pop_due(self.st.now) {
                debug_assert!(entry.at <= self.st.now);
                match entry.action {
                    EnvAction::TaskFinish(id) => self.finish_task(id),
                    EnvAction::PoolWakeup => { /* pump below */ }
                    EnvAction::Custom(job, cause) => {
                        let prev = self.st.current;
                        self.begin_event(EvKind::Env, cause, None, EvDetail::None);
                        {
                            let mut cx = Ctx { st: &mut self.st };
                            job(&mut cx);
                        }
                        self.st.current = prev;
                    }
                }
            }
            self.pump_pool();
        });
    }

    /// Executes a finished task's body and stages its done callback.
    fn finish_task(&mut self, id: TaskId) {
        let Some(task) = self.st.pool.take_running(id) else {
            return;
        };
        let RunningTask {
            id,
            work,
            done,
            demux_fd,
            ..
        } = task;
        self.st.trace.record(CbKind::PoolTask);
        let prev = self.st.current;
        if self.st.events.is_some() {
            let cause = self
                .st
                .events
                .as_ref()
                .and_then(|h| h.0.borrow().task_submit(id.0));
            self.begin_event(
                EvKind::Cb(CbKind::PoolTask),
                cause,
                None,
                EvDetail::Task(id.0),
            );
            if let Some(h) = &self.st.events {
                h.0.borrow_mut().set_task_event(id.0, self.st.current);
            }
        }
        let result;
        cb_span!(self, CbKind::PoolTask, {
            let mut wcx = WorkCtx {
                now: self.st.now,
                rng: &mut self.st.pool.rng,
            };
            result = work(&mut wcx);
        });
        self.st.current = prev;
        self.st.pool.stats.executed += 1;
        let completed = CompletedTask { id, done, result };
        match demux_fd {
            Some(fd) => {
                // De-multiplexed: private descriptor per task (§4.3.3).
                if self.st.poll.is_open(fd) {
                    self.st.pool.put_done_demux(fd, completed);
                    let now = self.st.now;
                    let _ = self.st.poll.mark_ready(fd, now);
                }
            }
            None => {
                // Multiplexed: shared descriptor, drained in one event.
                self.st.pool.done_mux.push_back(completed);
                let fd = self.ensure_pool_fd();
                if !self.st.pool.pool_fd_armed {
                    self.st.pool.pool_fd_armed = true;
                    let now = self.st.now;
                    let _ = self.st.poll.mark_ready(fd, now);
                }
            }
        }
    }

    fn ensure_pool_fd(&mut self) -> Fd {
        if let Some(fd) = self.st.pool.pool_fd {
            return fd;
        }
        let fd = self
            .st
            .poll
            .alloc(FdKind::PoolDone)
            .expect("descriptor limit too low for the worker pool descriptor");
        // The shared pool descriptor never keeps the loop alive by itself.
        let _ = self.st.poll.set_refd(fd, false);
        self.st.pool.pool_fd = Some(fd);
        fd
    }

    /// Starts queued tasks according to the pool mode.
    fn pump_pool(&mut self) {
        match self.pool_mode {
            PoolMode::Concurrent { workers } => {
                while self.st.pool.running.len() < workers && !self.st.pool.queue.is_empty() {
                    self.start_task(0);
                }
            }
            PoolMode::Serialized {
                lookahead,
                max_delay,
            } => {
                if !self.st.pool.running.is_empty() {
                    return;
                }
                if self.st.pool.queue.is_empty() {
                    self.st.pool.wait_since = None;
                    return;
                }
                let filled = self.st.pool.queue.len() >= lookahead;
                if !filled {
                    let since = *self.st.pool.wait_since.get_or_insert(self.st.now);
                    let deadline = since + max_delay;
                    if self.st.now < deadline {
                        self.st.env.schedule(deadline, EnvAction::PoolWakeup);
                        return;
                    }
                }
                self.st.pool.wait_since = None;
                let window = lookahead.min(self.st.pool.queue.len()).max(1);
                let idx = self.sched.pick_task(window);
                debug_assert!(idx < window);
                self.start_task(idx.min(self.st.pool.queue.len() - 1));
            }
        }
    }

    fn start_task(&mut self, idx: usize) {
        let Some(task) = self.st.pool.queue.remove(idx) else {
            return;
        };
        let cost = self.st.pool.rng.jitter(task.cost, self.st.pool.cost_jitter);
        let finish = self.st.now + cost;
        self.st.env.schedule(finish, EnvAction::TaskFinish(task.id));
        self.st.pool.running.push(RunningTask {
            id: task.id,
            work: task.work,
            done: task.done,
            demux_fd: task.demux_fd,
            finish,
        });
    }

    fn poll_phase(&mut self) {
        self.drain_env();
        // Block (advance virtual time) only when nothing is ready and no
        // other phase has queued work; an active idle handle forces a
        // zero-timeout poll, as in libuv.
        let can_block = !self.st.poll.has_pending()
            && self.st.idle.active() == 0
            && self.st.micro.is_empty()
            && self.st.pending.is_empty()
            && self.st.immediates.is_empty()
            && self.st.closing.is_empty();
        if can_block {
            self.advance_to_next_wakeup();
            // If nothing became ready and no future wakeup exists, the loop
            // would block in epoll forever: report a hang instead of
            // spinning.
            if !self.st.poll.has_pending()
                && self.st.env.is_empty()
                && self.st.timers.len() == 0
                && !self.st.pool.busy()
                && self.st.micro.is_empty()
                && self.st.pending.is_empty()
                && self.st.immediates.is_empty()
                && self.st.closing.is_empty()
                && self.st.idle.active() == 0
                && self.st.prepare.active() == 0
                && self.st.check.active() == 0
            {
                self.st.hung = true;
                return;
            }
        }
        if self.st.stopped {
            return;
        }
        let mut list = std::mem::take(&mut self.st.ready_scratch);
        list.clear();
        self.st.poll.drain_ready_into(&mut list);
        if list.len() > 1 {
            self.sched.shuffle_ready(&mut list);
        }
        for entry in list.drain(..) {
            if self.st.stopped {
                break;
            }
            if !self.st.poll.is_open(entry.fd) {
                continue;
            }
            if self.sched.defer_ready(&entry) {
                self.st.poll.defer(entry);
                continue;
            }
            self.dispatch_fd(entry.fd);
            self.drain_env();
        }
        list.clear();
        self.st.ready_scratch = list;
    }

    /// Advances virtual time to the next environment event or timer
    /// deadline, delivering environment events until something is ready.
    fn advance_to_next_wakeup(&mut self) {
        loop {
            if self.st.poll.has_pending() || self.st.stopped {
                return;
            }
            let te = self.st.env.next_time();
            let td = self.st.timers.next_deadline();
            match (te, td) {
                (None, None) => return,
                (Some(te), Some(td)) if td < te => {
                    self.st.now = self.st.now.max(td);
                    return;
                }
                (Some(te), _) => {
                    self.st.now = self.st.now.max(te);
                    self.drain_env();
                }
                (None, Some(td)) => {
                    self.st.now = self.st.now.max(td);
                    return;
                }
            }
            if self.st.now > self.st.cfg.max_vtime {
                return;
            }
        }
    }

    fn dispatch_fd(&mut self, fd: Fd) {
        match self.st.poll.fd_kind(fd) {
            Some(FdKind::PoolDone) => {
                // Drain the multiplexed done queue back-to-back: this is the
                // atomicity the fuzzer's de-multiplexing breaks (§4.3.1).
                self.st.pool.pool_fd_armed = false;
                while let Some(task) = self.st.pool.done_mux.pop_front() {
                    if self.st.stopped {
                        return;
                    }
                    self.run_done(task);
                }
            }
            Some(FdKind::TaskDone) => {
                if let Some(task) = self.st.pool.take_done_demux(fd) {
                    let _ = self.st.poll.close(fd);
                    self.run_done(task);
                }
            }
            _ => {
                let kind = self.st.poll.event_kind(fd);
                if let Some(cb) = self.st.poll.watcher_cb(fd) {
                    self.st.trace.record(kind);
                    let prev = self.st.current;
                    if let Some(h) = &self.st.events {
                        // Primary cause: whoever produced this readiness
                        // (FIFO per fd — one mark is one dispatch).
                        // Secondary: whoever registered the watcher, so
                        // "accept before anything else on this fd" is an
                        // HB edge the analyzer can rely on.
                        let (cause, reg) = {
                            let mut log = h.0.borrow_mut();
                            (log.pop_fd_ready(fd.0), log.fd_reg(fd.0))
                        };
                        self.begin_event(EvKind::Cb(kind), cause, reg, EvDetail::Fd(fd.0));
                    }
                    cb_span!(self, kind, {
                        {
                            let mut cx = Ctx { st: &mut self.st };
                            (cb.borrow_mut())(&mut cx, fd);
                        }
                        let cost = self.st.cb_cost();
                        self.st.now += cost;
                        self.drain_micro();
                    });
                    self.st.current = prev;
                }
            }
        }
    }

    fn run_done(&mut self, task: CompletedTask) {
        self.st.pool.stats.completed += 1;
        self.st.trace.record(CbKind::PoolDone);
        let prev = self.st.current;
        if self.st.events.is_some() {
            let cause = self
                .st
                .events
                .as_ref()
                .and_then(|h| h.0.borrow().task_event(task.id.0));
            self.begin_event(
                EvKind::Cb(CbKind::PoolDone),
                cause,
                None,
                EvDetail::Task(task.id.0),
            );
        }
        cb_span!(self, CbKind::PoolDone, {
            {
                let mut cx = Ctx { st: &mut self.st };
                (task.done)(&mut cx, task.result);
            }
            let cost = self.st.cb_cost();
            self.st.now += cost;
            self.drain_micro();
        });
        self.st.current = prev;
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        if let Some(home) = self.home.take() {
            home.put_from(&mut self.st);
        }
    }
}
