//! The timer subsystem.
//!
//! Timers mirror libuv's: a binary heap ordered by `(deadline, registration
//! sequence)`. That secondary ordering is undocumented but relied upon by
//! real test suites, which is why the fuzz scheduler's timer deferral
//! short-circuits instead of reordering (§4.3.4 of the paper).

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use crate::ctx::Ctx;
use crate::time::{VDur, VTime};

/// Identifier of a registered timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

/// A timer callback. Receives the loop context; periodic timers keep their
/// callback across firings.
pub type TimerCb = Rc<RefCell<dyn FnMut(&mut Ctx<'_>)>>;

/// Cloning shares the callback `Rc` with the original: a snapshot fork
/// re-fires the same closure object, which is sound exactly when the
/// closure's captured state is not mutated across runs (fork-safe
/// programs — see `crate::snapshot`).
#[derive(Clone)]
pub(crate) struct TimerEntry {
    pub id: TimerId,
    pub deadline: VTime,
    pub period: Option<VDur>,
    pub cb: TimerCb,
    pub seq: u64,
    /// One-shot (`setTimeout`) callbacks are `FnOnce` closures consumed on
    /// first fire; this flag — shared with every snapshot clone of the
    /// entry — flips when that happens, so a restore can detect that a
    /// captured one-shot has gone stale and refuse instead of silently
    /// firing a no-op. `None` for repeating (`setInterval`) timers.
    pub spent: Option<Rc<std::cell::Cell<bool>>>,
}

#[derive(Clone, Default)]
pub(crate) struct TimerHeap {
    heap: BinaryHeap<Reverse<(VTime, u64, TimerId)>>,
    /// Timer slab, indexed by `TimerId` (ids are allocated sequentially
    /// from 0). `None` marks a cancelled or currently-popped timer.
    entries: Vec<Option<TimerEntry>>,
    /// Count of `Some` slots.
    live: usize,
    next_seq: u64,
}

impl TimerHeap {
    /// Clears all state for a fresh run, keeping allocated capacity.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.entries.clear();
        self.live = 0;
        self.next_seq = 0;
    }

    fn slot_of(&mut self, id: TimerId) -> Option<&mut Option<TimerEntry>> {
        self.entries.get_mut(id.0 as usize)
    }

    pub fn insert(&mut self, deadline: VTime, period: Option<VDur>, cb: TimerCb) -> TimerId {
        self.insert_with_spent(deadline, period, cb, None)
    }

    /// Inserts a timer carrying a consumed-once flag (see
    /// [`TimerEntry::spent`]).
    pub fn insert_with_spent(
        &mut self,
        deadline: VTime,
        period: Option<VDur>,
        cb: TimerCb,
        spent: Option<Rc<std::cell::Cell<bool>>>,
    ) -> TimerId {
        let id = TimerId(self.entries.len() as u64);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((deadline, seq, id)));
        self.entries.push(Some(TimerEntry {
            id,
            deadline,
            period,
            cb,
            seq,
            spent,
        }));
        self.live += 1;
        id
    }

    /// Whether any live one-shot timer's callback has already been
    /// consumed by another loop sharing it (a stale snapshot — see
    /// [`TimerEntry::spent`]).
    pub fn any_spent_oneshot(&self) -> bool {
        self.entries
            .iter()
            .flatten()
            .any(|e| e.spent.as_ref().is_some_and(|s| s.get()))
    }

    /// Cancels a timer. Returns whether it was still registered.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        match self.slot_of(id).and_then(Option::take) {
            Some(_) => {
                self.live -= 1;
                true
            }
            None => false,
        }
    }

    /// Returns whether the timer is still registered.
    pub fn is_active(&self, id: TimerId) -> bool {
        self.entries.get(id.0 as usize).is_some_and(Option::is_some)
    }

    /// Number of live timers.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Earliest live deadline, if any.
    pub fn next_deadline(&mut self) -> Option<VTime> {
        self.compact_top();
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Pops the next timer due at or before `now`, in (deadline, seq) order.
    pub fn pop_due(&mut self, now: VTime) -> Option<TimerEntry> {
        loop {
            self.compact_top();
            match self.heap.peek() {
                Some(Reverse((t, _, _))) if *t <= now => {
                    let Reverse((_, _, id)) = self.heap.pop().expect("peeked");
                    if let Some(entry) = self.slot_of(id).and_then(Option::take) {
                        self.live -= 1;
                        return Some(entry);
                    }
                    // Cancelled while queued: keep looking.
                }
                _ => return None,
            }
        }
    }

    /// Re-inserts a (periodic or deferred) entry keeping its identity.
    pub fn reinsert(&mut self, mut entry: TimerEntry, deadline: VTime) {
        entry.deadline = deadline;
        // A fresh sequence number: libuv's repeat timers re-enqueue at the
        // back among equal deadlines.
        entry.seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((deadline, entry.seq, entry.id)));
        self.restore(entry);
    }

    /// Re-inserts a deferred entry, preserving its sequence number so the
    /// libuv {timeout, registration} ordering is unchanged (§4.3.4).
    pub fn reinsert_deferred(&mut self, mut entry: TimerEntry, deadline: VTime) {
        entry.deadline = deadline;
        self.heap.push(Reverse((deadline, entry.seq, entry.id)));
        self.restore(entry);
    }

    /// Puts a popped entry back into its slab slot.
    fn restore(&mut self, entry: TimerEntry) {
        let idx = entry.id.0 as usize;
        debug_assert!(self.entries[idx].is_none(), "restoring a live timer");
        self.entries[idx] = Some(entry);
        self.live += 1;
    }

    /// Drops heap slots whose timers were cancelled.
    fn compact_top(&mut self) {
        while let Some(Reverse((_, seq, id))) = self.heap.peek() {
            match self.entries.get(id.0 as usize).and_then(Option::as_ref) {
                Some(e) if e.seq == *seq => break,
                _ => {
                    self.heap.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> TimerCb {
        Rc::new(RefCell::new(|_: &mut Ctx<'_>| {}))
    }

    #[test]
    fn pops_in_deadline_order() {
        let mut h = TimerHeap::default();
        let b = h.insert(VTime(200), None, noop());
        let a = h.insert(VTime(100), None, noop());
        assert_eq!(h.next_deadline(), Some(VTime(100)));
        assert_eq!(h.pop_due(VTime(500)).unwrap().id, a);
        assert_eq!(h.pop_due(VTime(500)).unwrap().id, b);
        assert!(h.pop_due(VTime(500)).is_none());
    }

    #[test]
    fn equal_deadlines_pop_in_registration_order() {
        let mut h = TimerHeap::default();
        let first = h.insert(VTime(100), None, noop());
        let second = h.insert(VTime(100), None, noop());
        assert_eq!(h.pop_due(VTime(100)).unwrap().id, first);
        assert_eq!(h.pop_due(VTime(100)).unwrap().id, second);
    }

    #[test]
    fn not_due_not_popped() {
        let mut h = TimerHeap::default();
        h.insert(VTime(100), None, noop());
        assert!(h.pop_due(VTime(99)).is_none());
        assert!(h.pop_due(VTime(100)).is_some());
    }

    #[test]
    fn cancel_prevents_pop() {
        let mut h = TimerHeap::default();
        let id = h.insert(VTime(10), None, noop());
        assert!(h.is_active(id));
        assert!(h.cancel(id));
        assert!(!h.is_active(id));
        assert!(!h.cancel(id));
        assert!(h.pop_due(VTime(100)).is_none());
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn cancel_updates_next_deadline() {
        let mut h = TimerHeap::default();
        let early = h.insert(VTime(10), None, noop());
        h.insert(VTime(20), None, noop());
        h.cancel(early);
        assert_eq!(h.next_deadline(), Some(VTime(20)));
    }

    #[test]
    fn reinsert_keeps_id_new_deadline() {
        let mut h = TimerHeap::default();
        let id = h.insert(VTime(10), Some(VDur(5)), noop());
        let e = h.pop_due(VTime(10)).unwrap();
        h.reinsert(e, VTime(15));
        assert!(h.is_active(id));
        assert_eq!(h.next_deadline(), Some(VTime(15)));
        assert_eq!(h.pop_due(VTime(15)).unwrap().id, id);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut h = TimerHeap::default();
        let id = h.insert(VTime(10), None, noop());
        h.insert(VTime(20), Some(VDur(5)), noop());
        h.reset();
        assert_eq!(h.len(), 0);
        assert!(!h.is_active(id));
        assert!(h.next_deadline().is_none());
        // Ids restart from zero after a reset.
        assert_eq!(h.insert(VTime(5), None, noop()), TimerId(0));
        assert_eq!(h.pop_due(VTime(5)).unwrap().id, TimerId(0));
    }

    #[test]
    fn reinserted_ties_go_last() {
        let mut h = TimerHeap::default();
        let a = h.insert(VTime(10), Some(VDur::ZERO), noop());
        let e = h.pop_due(VTime(10)).unwrap();
        h.reinsert(e, VTime(20));
        let b = h.insert(VTime(20), None, noop());
        // `b` registered after the reinsert, so `a` still pops first at the
        // shared deadline.
        assert_eq!(h.pop_due(VTime(20)).unwrap().id, a);
        assert_eq!(h.pop_due(VTime(20)).unwrap().id, b);
    }
}
