//! The scheduler extension point.
//!
//! The event loop consults a [`Scheduler`] at every point of legal
//! nondeterminism: which expired timers to run now, the order of the epoll
//! ready list, whether to defer individual ready descriptors or close
//! events, how the worker pool picks and completes tasks. The stock
//! [`VanillaScheduler`] reproduces libuv's deterministic choices; the Node.fz
//! fuzz scheduler (in the `nodefz` crate) perturbs them within the bounds the
//! documentation permits (§4.4 "Node.fz fidelity").

use crate::poll::ReadyEntry;
use crate::time::VDur;

/// How the worker pool executes tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolMode {
    /// libuv-style pool: `workers` threads consume the task queue FIFO and
    /// completions are multiplexed onto a single done descriptor.
    Concurrent {
        /// Number of simulated worker threads (libuv default: 4).
        workers: usize,
    },
    /// Node.fz-style pool (§4.3.3): a single serialized worker that waits for
    /// the task queue to hold `lookahead` entries (up to `max_delay`) and
    /// then lets the scheduler pick among them; each completion gets a
    /// private descriptor (de-multiplexed done queue).
    Serialized {
        /// Task-queue lookahead ("worker pool degrees of freedom").
        /// `usize::MAX` means unlimited.
        lookahead: usize,
        /// Maximum time the worker waits for the queue to fill.
        max_delay: VDur,
    },
}

/// What to do with the remaining expired timers after examining one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimerVerdict {
    /// Run this timer now.
    Run,
    /// Defer this timer (and, by short-circuit, all later expired timers) to
    /// the next loop iteration, injecting the given loop delay.
    ///
    /// The short-circuit preserves libuv's undocumented-but-relied-upon
    /// {timeout, registration} ordering (§4.3.4).
    Defer {
        /// Extra virtual delay injected before the next iteration.
        delay: VDur,
    },
}

/// A pluggable dispatch policy for the event loop and worker pool.
///
/// All methods take `&mut self` so implementations can carry their own
/// deterministic PRNG state.
pub trait Scheduler {
    /// Short human-readable name ("vanilla", "nodefz", …).
    fn name(&self) -> &'static str;

    /// Returns the pool execution mode. Consulted once per loop start.
    fn pool_mode(&self) -> PoolMode {
        PoolMode::Concurrent { workers: 4 }
    }

    /// Whether worker-pool completions are de-multiplexed onto per-task
    /// descriptors (§4.3.3). Consulted once per loop start.
    fn demux_done(&self) -> bool {
        false
    }

    /// Decides whether to run or defer an expired timer.
    fn on_timer(&mut self) -> TimerVerdict {
        TimerVerdict::Run
    }

    /// Reorders the epoll ready list before dispatch.
    fn shuffle_ready(&mut self, _ready: &mut Vec<ReadyEntry>) {}

    /// Decides whether to defer one ready descriptor to the next iteration.
    fn defer_ready(&mut self, _entry: &ReadyEntry) -> bool {
        false
    }

    /// Decides whether to defer one close event to the next iteration.
    fn defer_close(&mut self) -> bool {
        false
    }

    /// Picks the queue index of the next worker-pool task to execute.
    ///
    /// `window` is the number of candidate tasks visible to the worker (the
    /// head of the queue, bounded by the lookahead). Must return a value in
    /// `0..window`.
    fn pick_task(&mut self, window: usize) -> usize {
        let _ = window;
        0
    }

    /// Number of scheduling decisions this scheduler has made so far.
    ///
    /// Recording/replaying schedulers override this so the event log can
    /// stamp each dispatch with the decision-trace prefix that reproduces
    /// it (race-directed scheduling keys on that prefix length). Stateless
    /// schedulers report zero.
    fn decision_count(&self) -> u64 {
        0
    }

    /// Duplicates this scheduler — current PRNG position, decision
    /// counters and all — for a prefix-snapshot fork (see
    /// [`crate::LoopSnapshot`]). A fork resumed from the duplicate draws
    /// exactly the decisions the original would have drawn from this
    /// point on.
    ///
    /// The default refuses (`None`), which makes loops driven by such a
    /// scheduler snapshot-inadmissible: schedulers holding shared handles
    /// (recording sinks, replay cursors) must opt in explicitly.
    fn fork_box(&self) -> Option<Box<dyn Scheduler>> {
        None
    }
}

/// The libuv-faithful scheduler: FIFO everything, multiplexed done queue,
/// four concurrent workers.
#[derive(Clone, Debug, Default)]
pub struct VanillaScheduler {
    workers: usize,
}

impl VanillaScheduler {
    /// Creates the default vanilla scheduler (4 workers, like libuv).
    pub fn new() -> VanillaScheduler {
        VanillaScheduler { workers: 4 }
    }

    /// Creates a vanilla scheduler with a custom worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_workers(workers: usize) -> VanillaScheduler {
        assert!(workers > 0, "worker pool needs at least one worker");
        VanillaScheduler { workers }
    }
}

impl Scheduler for VanillaScheduler {
    fn name(&self) -> &'static str {
        "vanilla"
    }

    fn pool_mode(&self) -> PoolMode {
        PoolMode::Concurrent {
            workers: self.workers,
        }
    }

    fn fork_box(&self) -> Option<Box<dyn Scheduler>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::Fd;
    use crate::time::VTime;

    #[test]
    fn vanilla_defaults() {
        let mut s = VanillaScheduler::new();
        assert_eq!(s.name(), "vanilla");
        assert_eq!(s.pool_mode(), PoolMode::Concurrent { workers: 4 });
        assert!(!s.demux_done());
        assert_eq!(s.on_timer(), TimerVerdict::Run);
        assert!(!s.defer_close());
        assert_eq!(s.pick_task(5), 0);
    }

    #[test]
    fn vanilla_never_reorders() {
        let mut s = VanillaScheduler::new();
        let mut ready: Vec<ReadyEntry> = (0..5)
            .map(|i| ReadyEntry {
                fd: Fd(i),
                at: VTime(i as u64),
                seq: i as u64,
            })
            .collect();
        let orig = ready.clone();
        s.shuffle_ready(&mut ready);
        assert_eq!(ready, orig);
        assert!(!s.defer_ready(&orig[0]));
    }

    #[test]
    fn custom_worker_count() {
        let s = VanillaScheduler::with_workers(2);
        assert_eq!(s.pool_mode(), PoolMode::Concurrent { workers: 2 });
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = VanillaScheduler::with_workers(0);
    }
}
