//! Simulated UNIX signals.
//!
//! §4.2.1 of the paper lists signal delivery among the nondeterminism
//! sources unique to server-side JavaScript ("Linux Node.js applications
//! can spawn child processes, send and receive UNIX signals…"). Signals are
//! modelled like libuv models them: each watcher owns a descriptor
//! (signalfd-style) whose readiness flows through the poll phase — and is
//! therefore shuffleable and deferrable by the fuzzer like any other event.

use std::collections::HashMap;

use crate::poll::Fd;

/// The simulated signal set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Interrupt (Ctrl-C).
    Int,
    /// Termination request.
    Term,
    /// Hang-up (often: reload configuration).
    Hup,
    /// User-defined signal 1.
    Usr1,
    /// User-defined signal 2.
    Usr2,
    /// Child state change.
    Chld,
}

impl Signal {
    /// Conventional name.
    pub fn name(self) -> &'static str {
        match self {
            Signal::Int => "SIGINT",
            Signal::Term => "SIGTERM",
            Signal::Hup => "SIGHUP",
            Signal::Usr1 => "SIGUSR1",
            Signal::Usr2 => "SIGUSR2",
            Signal::Chld => "SIGCHLD",
        }
    }
}

/// Registry mapping signals to their watcher descriptors.
#[derive(Clone, Default)]
pub(crate) struct SignalState {
    watchers: HashMap<Signal, Vec<Fd>>,
    pub delivered: u64,
}

impl SignalState {
    pub fn register(&mut self, sig: Signal, fd: Fd) {
        self.watchers.entry(sig).or_default().push(fd);
    }

    pub fn unregister(&mut self, fd: Fd) -> bool {
        let mut removed = false;
        for fds in self.watchers.values_mut() {
            let before = fds.len();
            fds.retain(|&f| f != fd);
            removed |= fds.len() != before;
        }
        removed
    }

    pub fn watchers_of(&self, sig: Signal) -> Vec<Fd> {
        self.watchers.get(&sig).cloned().unwrap_or_default()
    }

    pub fn watcher_count(&self, sig: Signal) -> usize {
        self.watchers.get(&sig).map_or(0, Vec::len)
    }

    /// Clears all state for a fresh run, keeping allocated capacity.
    pub fn reset(&mut self) {
        // Keep the per-signal buckets (and their Vec capacity); just empty
        // them.
        for fds in self.watchers.values_mut() {
            fds.clear();
        }
        self.delivered = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_conventional() {
        assert_eq!(Signal::Int.name(), "SIGINT");
        assert_eq!(Signal::Chld.name(), "SIGCHLD");
    }

    #[test]
    fn register_unregister_roundtrip() {
        let mut st = SignalState::default();
        st.register(Signal::Term, Fd(4));
        st.register(Signal::Term, Fd(5));
        st.register(Signal::Hup, Fd(6));
        assert_eq!(st.watchers_of(Signal::Term), vec![Fd(4), Fd(5)]);
        assert_eq!(st.watcher_count(Signal::Hup), 1);
        assert!(st.unregister(Fd(4)));
        assert!(!st.unregister(Fd(4)));
        assert_eq!(st.watchers_of(Signal::Term), vec![Fd(5)]);
        assert!(st.watchers_of(Signal::Usr1).is_empty());
    }
}
