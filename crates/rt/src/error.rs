//! Error model for the simulated runtime.
//!
//! The runtime exposes a small errno-style error set mirroring the subset of
//! POSIX errors the paper's bug study turns on (`EEXIST` in MKD, `EMFILE` in
//! the §4.4 fidelity incident, …), plus an application-level error report
//! used by bug oracles to observe crashes and thrown errors.

use std::fmt;

use crate::time::VTime;

/// POSIX-style error codes surfaced by the simulated OS substrates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Errno {
    /// The path already exists (`mkdir` on an existing directory).
    Eexist,
    /// A path component does not exist.
    Enoent,
    /// The per-process file descriptor limit was reached.
    Emfile,
    /// The target is not a directory.
    Enotdir,
    /// The target is a directory (e.g. `unlink` on a directory).
    Eisdir,
    /// The directory is not empty.
    Enotempty,
    /// The file descriptor is invalid or already closed.
    Ebadf,
    /// The connection was refused (no listener on the port).
    Econnrefused,
    /// The connection was reset by the peer.
    Econnreset,
    /// The address (port) is already in use.
    Eaddrinuse,
    /// The socket is not connected.
    Enotconn,
    /// The operation timed out.
    Etimedout,
    /// The resource is temporarily busy (e.g. a held lock).
    Ebusy,
    /// Invalid argument.
    Einval,
    /// No such process.
    Esrch,
}

impl Errno {
    /// Returns the conventional upper-case errno name.
    pub fn name(self) -> &'static str {
        match self {
            Errno::Eexist => "EEXIST",
            Errno::Enoent => "ENOENT",
            Errno::Emfile => "EMFILE",
            Errno::Enotdir => "ENOTDIR",
            Errno::Eisdir => "EISDIR",
            Errno::Enotempty => "ENOTEMPTY",
            Errno::Ebadf => "EBADF",
            Errno::Econnrefused => "ECONNREFUSED",
            Errno::Econnreset => "ECONNRESET",
            Errno::Eaddrinuse => "EADDRINUSE",
            Errno::Enotconn => "ENOTCONN",
            Errno::Etimedout => "ETIMEDOUT",
            Errno::Ebusy => "EBUSY",
            Errno::Einval => "EINVAL",
            Errno::Esrch => "ESRCH",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::error::Error for Errno {}

/// An application-level error observed during a run.
///
/// Bug oracles inspect the [`RunReport`](crate::RunReport) error list to
/// decide whether a race manifested; `fatal` entries model uncaught
/// exceptions (a Node.js process crash).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppError {
    /// Virtual time at which the error was reported.
    pub at: VTime,
    /// Short machine-readable code, e.g. `"null-deref"`.
    pub code: String,
    /// Human-readable description.
    pub message: String,
    /// Whether the error terminated the loop (uncaught exception).
    pub fatal: bool,
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}{}: {}",
            self.at,
            self.code,
            if self.fatal { " (fatal)" } else { "" },
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_names_roundtrip() {
        let all = [
            Errno::Eexist,
            Errno::Enoent,
            Errno::Emfile,
            Errno::Enotdir,
            Errno::Eisdir,
            Errno::Enotempty,
            Errno::Ebadf,
            Errno::Econnrefused,
            Errno::Econnreset,
            Errno::Eaddrinuse,
            Errno::Enotconn,
            Errno::Etimedout,
            Errno::Ebusy,
            Errno::Einval,
            Errno::Esrch,
        ];
        for e in all {
            assert!(e.name().starts_with('E'));
            assert_eq!(format!("{e}"), e.name());
        }
    }

    #[test]
    fn app_error_display() {
        let e = AppError {
            at: VTime(2_000_000),
            code: "null-deref".into(),
            message: "pad was destroyed".into(),
            fatal: true,
        };
        let s = format!("{e}");
        assert!(s.contains("null-deref"));
        assert!(s.contains("(fatal)"));
    }
}
