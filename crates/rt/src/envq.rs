//! The environment timeline.
//!
//! Everything that happens "outside" the process — packets arriving, worker
//! tasks finishing, back-end servers replying — is a timestamped entry in a
//! virtual-time priority queue. Substrates schedule entries (with jittered
//! delays drawn from the environment RNG) and the poll phase drains them,
//! which is how virtual time advances while the loop would block in epoll.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::ctx::Ctx;
use crate::pool::TaskId;
use crate::time::VTime;

/// A scheduled environment occurrence.
pub(crate) enum EnvAction {
    /// A running worker-pool task reaches its finish time.
    TaskFinish(TaskId),
    /// Re-examine the worker pool (used by the serialized worker's
    /// lookahead wait, §4.3.4 "max delay").
    PoolWakeup,
    /// An arbitrary environment effect (packet delivery, back-end reply…).
    /// Runs with loop context but is not traced as an application callback.
    /// Carries the event that scheduled it (provenance for the event log;
    /// `None` when no log is attached or the scheduling code was untracked).
    Custom(Box<dyn FnOnce(&mut Ctx<'_>)>, Option<crate::events::CbId>),
}

pub(crate) struct EnvEntry {
    pub at: VTime,
    pub seq: u64,
    pub action: EnvAction,
}

impl PartialEq for EnvEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for EnvEntry {}
impl PartialOrd for EnvEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EnvEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Default)]
pub(crate) struct EnvQueue {
    heap: BinaryHeap<EnvEntry>,
    next_seq: u64,
}

impl EnvQueue {
    pub fn schedule(&mut self, at: VTime, action: EnvAction) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EnvEntry { at, seq, action });
    }

    /// Earliest scheduled time, if any.
    pub fn next_time(&self) -> Option<VTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the next entry if it is due at or before `now`.
    pub fn pop_due(&mut self, now: VTime) -> Option<EnvEntry> {
        if self.heap.peek().is_some_and(|e| e.at <= now) {
            self.heap.pop()
        } else {
            None
        }
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Clears all state for a fresh run, keeping allocated capacity.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }

    /// Scheduled entries (due or not).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether any scheduled entry is an [`EnvAction::Custom`] — the one
    /// action kind that cannot be duplicated into a snapshot (its closure
    /// is one-shot).
    pub fn has_custom(&self) -> bool {
        self.heap
            .iter()
            .any(|e| matches!(e.action, EnvAction::Custom(..)))
    }

    /// Clones the queue for a snapshot. Refuses (returns `None`) if any
    /// entry is an [`EnvAction::Custom`]: its `FnOnce` closure cannot be
    /// duplicated, so a loop with pending custom environment effects is
    /// not forkable.
    pub fn try_clone(&self) -> Option<EnvQueue> {
        let mut heap = BinaryHeap::with_capacity(self.heap.len());
        for e in self.heap.iter() {
            let action = match &e.action {
                EnvAction::TaskFinish(id) => EnvAction::TaskFinish(*id),
                EnvAction::PoolWakeup => EnvAction::PoolWakeup,
                EnvAction::Custom(..) => return None,
            };
            heap.push(EnvEntry {
                at: e.at,
                seq: e.seq,
                action,
            });
        }
        Some(EnvQueue {
            heap,
            next_seq: self.next_seq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_earliest_first() {
        let mut q = EnvQueue::default();
        q.schedule(VTime(30), EnvAction::PoolWakeup);
        q.schedule(VTime(10), EnvAction::PoolWakeup);
        q.schedule(VTime(20), EnvAction::PoolWakeup);
        assert_eq!(q.next_time(), Some(VTime(10)));
        assert_eq!(q.pop_due(VTime(100)).unwrap().at, VTime(10));
        assert_eq!(q.pop_due(VTime(100)).unwrap().at, VTime(20));
        assert_eq!(q.pop_due(VTime(100)).unwrap().at, VTime(30));
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EnvQueue::default();
        q.schedule(VTime(10), EnvAction::TaskFinish(TaskId(1)));
        q.schedule(VTime(10), EnvAction::TaskFinish(TaskId(2)));
        let first = q.pop_due(VTime(10)).unwrap();
        let second = q.pop_due(VTime(10)).unwrap();
        match (first.action, second.action) {
            (EnvAction::TaskFinish(a), EnvAction::TaskFinish(b)) => {
                assert_eq!(a, TaskId(1));
                assert_eq!(b, TaskId(2));
            }
            _ => panic!("unexpected actions"),
        }
    }

    #[test]
    fn not_due_stays_queued() {
        let mut q = EnvQueue::default();
        q.schedule(VTime(50), EnvAction::PoolWakeup);
        assert!(q.pop_due(VTime(49)).is_none());
        assert_eq!(q.len(), 1);
        assert!(q.pop_due(VTime(50)).is_some());
    }
}
