//! # nodefz-rt — a deterministic event-driven runtime
//!
//! This crate is the substrate of the Node.fz reproduction: a from-scratch,
//! virtual-time re-implementation of the Asymmetric Multi-Process
//! Event-Driven (AMPED) architecture that libuv gives Node.js — a
//! single-threaded event loop plus a worker pool — with every source of
//! nondeterminism modelled explicitly and driven by seeds.
//!
//! ## Architecture
//!
//! * [`EventLoop`] executes libuv's iteration phases (timers → pending →
//!   idle → prepare → poll → check → close) in virtual time ([`VTime`]).
//! * Callbacks receive a [`Ctx`] exposing the Node-style API: `set_timeout`,
//!   `set_interval`, `next_tick`, `set_immediate`, `submit_work`, and the
//!   poll-layer primitives substrates (network, file system, key-value
//!   store) build on.
//! * The worker pool ([`Ctx::submit_work`]) models libuv's threadpool with
//!   either a multiplexed done queue (vanilla) or a de-multiplexed,
//!   per-task-descriptor done queue (Node.fz mode).
//! * A [`Scheduler`] is consulted at every point of legal nondeterminism.
//!   [`VanillaScheduler`] reproduces libuv's choices; the `nodefz` crate
//!   provides the fuzzing scheduler of the paper.
//! * Every run records a [`TypeSchedule`] — the sequence of callback types —
//!   used by the schedule-diversity experiments (§5.3 of the paper).
//!
//! ## Determinism
//!
//! A run is a pure function of `(program, LoopConfig::env_seed, scheduler)`.
//! The environment seed drives modelled latencies, task durations and
//! callback costs; the fuzz scheduler carries its own decision seed.
//!
//! ## Example
//!
//! ```
//! use nodefz_rt::{EventLoop, LoopConfig, VDur};
//!
//! let mut el = EventLoop::new(LoopConfig::seeded(42));
//! el.enter(|cx| {
//!     cx.set_timeout(VDur::millis(10), |cx| {
//!         let t = cx.now();
//!         cx.submit_work(
//!             VDur::millis(2),
//!             |_work| 21u64 * 2,
//!             move |cx, answer| {
//!                 assert_eq!(answer, 42);
//!                 assert!(cx.now() > t);
//!             },
//!         )
//!         .unwrap();
//!     });
//! });
//! let report = el.run();
//! assert_eq!(report.pool.completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod combinators;
mod ctx;
mod envq;
mod error;
mod events;
mod looper;
#[cfg(feature = "obs")]
pub mod obs;
mod poll;
mod pool;
mod proc;
mod rng;
mod sched;
mod signal;
pub mod snapshot;
mod time;
mod timers;
mod trace;

pub use combinators::{series, Barrier, Emitter, ListenerId, SeriesNext, SeriesStep};
pub use ctx::{Ctx, HandleId};
pub use error::{AppError, Errno};
pub use events::{
    Access, AccessKind, CbId, EvDetail, EvKind, EventLog, EventLogHandle, EventRecord,
};
pub use looper::{EventLoop, LiveCounts, LoopConfig, LoopPool, RunReport, Termination};
#[cfg(feature = "obs")]
pub use obs::{LoopObs, ObsHandle, Phase, PhaseProfile, TraceEvent, TraceEventSink};
pub use poll::{Fd, FdKind, ReadyEntry};
pub use pool::{PoolStats, TaskId, WorkCtx};
pub use proc::{ChildSpec, Pid};
pub use rng::{Rng, ShuffleScratch};
pub use sched::{PoolMode, Scheduler, TimerVerdict, VanillaScheduler};
pub use signal::Signal;
pub use snapshot::LoopSnapshot;
pub use time::{VDur, VTime};
pub use timers::TimerId;
pub use trace::{CbKind, TraceRecorder, TypeSchedule};
