//! The simulated poll (epoll) subsystem.
//!
//! Substrate crates (network, file system, key-value store, the worker
//! pool's done queue) allocate descriptors, register watcher callbacks, and
//! mark descriptors ready from environment events. The poll phase of the
//! loop collects ready entries in FIFO `(time, seq)` order — exactly what a
//! level-triggered epoll would deliver — and hands the list to the scheduler
//! for (legal) shuffling and deferral.
//!
//! Descriptors are a finite resource: allocation fails with `EMFILE` beyond
//! the configured limit, reproducing the incident the paper hit when
//! de-multiplexing the done queue of a 10 240-task test (§4.4).

use std::cell::RefCell;
use std::rc::Rc;

use crate::ctx::Ctx;
use crate::error::Errno;
use crate::time::VTime;
use crate::trace::CbKind;

/// A simulated file descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u32);

/// What a descriptor is attached to; determines the trace kind of its events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FdKind {
    /// A listening server socket.
    NetListener,
    /// An established connection.
    NetConn,
    /// A key-value store client connection.
    KvConn,
    /// The worker pool's multiplexed done descriptor.
    PoolDone,
    /// A per-task done descriptor (de-multiplexed mode).
    TaskDone,
    /// A file-system completion descriptor.
    FsDone,
    /// An internal wakeup descriptor.
    Wakeup,
    /// Anything else.
    Other,
}

impl FdKind {
    /// The trace kind recorded when an event on this descriptor dispatches.
    pub fn event_kind(self) -> CbKind {
        match self {
            FdKind::NetListener => CbKind::NetAccept,
            FdKind::NetConn => CbKind::NetRead,
            FdKind::KvConn => CbKind::KvReply,
            FdKind::PoolDone => CbKind::PoolDone,
            FdKind::TaskDone => CbKind::PoolDone,
            FdKind::FsDone => CbKind::FsDone,
            FdKind::Wakeup => CbKind::Wakeup,
            FdKind::Other => CbKind::IoOther,
        }
    }
}

/// An I/O watcher callback: receives the context and the ready descriptor.
pub type IoCb = Rc<RefCell<dyn FnMut(&mut Ctx<'_>, Fd)>>;

/// One entry of the epoll ready list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadyEntry {
    /// The ready descriptor.
    pub fd: Fd,
    /// When it became ready.
    pub at: VTime,
    /// FIFO tiebreaker.
    pub seq: u64,
}

/// Cloning shares the callback `Rc` with the original (see the fork-safety
/// note on `TimerEntry`).
#[derive(Clone)]
pub(crate) struct Watcher {
    pub kind: FdKind,
    pub cb: Option<IoCb>,
    /// Whether this descriptor keeps the loop alive (libuv ref/unref).
    pub refd: bool,
    /// Override for the trace kind of events on this descriptor.
    pub kind_override: Option<CbKind>,
}

/// First descriptor handed out: 0/1/2 are "taken", as on a real process.
const FD_BASE: u32 = 3;

#[derive(Clone)]
pub(crate) struct PollState {
    next_fd: u32,
    pub limit: usize,
    /// Watcher slab, indexed by `fd - FD_BASE`. Descriptors are allocated
    /// sequentially, so a `Vec<Option<_>>` replaces the hash map on the
    /// poll phase's per-event lookups; closed slots stay `None`.
    watchers: Vec<Option<Watcher>>,
    /// Count of open (`Some`) slots — the EMFILE limit check.
    open: usize,
    /// Count of open slots whose watcher is ref'd, so the loop's per-
    /// iteration liveness probe is O(1) instead of a slab scan.
    refd_open: usize,
    /// Events marked ready, FIFO.
    pub ready: Vec<ReadyEntry>,
    /// Events deferred by the scheduler to the next iteration.
    pub carried: Vec<ReadyEntry>,
    next_seq: u64,
}

impl PollState {
    pub fn new(limit: usize) -> PollState {
        PollState {
            next_fd: FD_BASE,
            limit,
            watchers: Vec::new(),
            open: 0,
            refd_open: 0,
            ready: Vec::new(),
            carried: Vec::new(),
            next_seq: 0,
        }
    }

    /// Clears all state for a fresh run, keeping allocated capacity.
    pub fn reset(&mut self, limit: usize) {
        self.next_fd = FD_BASE;
        self.limit = limit;
        self.watchers.clear();
        self.open = 0;
        self.refd_open = 0;
        self.ready.clear();
        self.carried.clear();
        self.next_seq = 0;
    }

    fn slot(&self, fd: Fd) -> Option<&Watcher> {
        let idx = fd.0.checked_sub(FD_BASE)? as usize;
        self.watchers.get(idx)?.as_ref()
    }

    fn slot_mut(&mut self, fd: Fd) -> Option<&mut Watcher> {
        let idx = fd.0.checked_sub(FD_BASE)? as usize;
        self.watchers.get_mut(idx)?.as_mut()
    }

    pub fn alloc(&mut self, kind: FdKind) -> Result<Fd, Errno> {
        if self.open >= self.limit {
            return Err(Errno::Emfile);
        }
        let fd = Fd(self.next_fd);
        self.next_fd += 1;
        self.watchers.push(Some(Watcher {
            kind,
            cb: None,
            refd: true,
            kind_override: None,
        }));
        self.open += 1;
        self.refd_open += 1;
        Ok(fd)
    }

    pub fn set_watcher(&mut self, fd: Fd, cb: IoCb) -> Result<(), Errno> {
        match self.slot_mut(fd) {
            Some(w) => {
                w.cb = Some(cb);
                Ok(())
            }
            None => Err(Errno::Ebadf),
        }
    }

    pub fn set_refd(&mut self, fd: Fd, refd: bool) -> Result<(), Errno> {
        match self.slot_mut(fd) {
            Some(w) => {
                let was = w.refd;
                w.refd = refd;
                match (was, refd) {
                    (false, true) => self.refd_open += 1,
                    (true, false) => self.refd_open -= 1,
                    _ => {}
                }
                Ok(())
            }
            None => Err(Errno::Ebadf),
        }
    }

    pub fn set_kind_override(&mut self, fd: Fd, kind: CbKind) -> Result<(), Errno> {
        match self.slot_mut(fd) {
            Some(w) => {
                w.kind_override = Some(kind);
                Ok(())
            }
            None => Err(Errno::Ebadf),
        }
    }

    pub fn close(&mut self, fd: Fd) -> Result<(), Errno> {
        let Some(idx) = fd.0.checked_sub(FD_BASE).map(|i| i as usize) else {
            return Err(Errno::Ebadf);
        };
        match self.watchers.get_mut(idx).and_then(Option::take) {
            Some(w) => {
                self.open -= 1;
                if w.refd {
                    self.refd_open -= 1;
                }
            }
            None => return Err(Errno::Ebadf),
        }
        self.ready.retain(|e| e.fd != fd);
        self.carried.retain(|e| e.fd != fd);
        Ok(())
    }

    pub fn is_open(&self, fd: Fd) -> bool {
        self.slot(fd).is_some()
    }

    pub fn open_count(&self) -> usize {
        self.open
    }

    /// Marks one readiness event on `fd` at time `at`.
    ///
    /// Each mark is one dispatch: a connection with three undelivered
    /// messages has three entries in the ready list.
    pub fn mark_ready(&mut self, fd: Fd, at: VTime) -> Result<(), Errno> {
        if self.slot(fd).is_none() {
            return Err(Errno::Ebadf);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ready.push(ReadyEntry { fd, at, seq });
        Ok(())
    }

    /// Takes the current ready list (carried-over entries first, then fresh
    /// ones, both in FIFO order). The loop itself uses the allocation-free
    /// [`drain_ready_into`]; this stays as the convenient test-facing form.
    ///
    /// [`drain_ready_into`]: PollState::drain_ready_into
    #[cfg(test)]
    pub fn take_ready(&mut self) -> Vec<ReadyEntry> {
        let mut out = std::mem::take(&mut self.carried);
        out.append(&mut self.ready);
        out
    }

    /// Drains the ready list (carried first, then fresh, both FIFO) into a
    /// caller-owned scratch buffer — the allocation-free [`take_ready`].
    ///
    /// [`take_ready`]: PollState::take_ready
    pub fn drain_ready_into(&mut self, out: &mut Vec<ReadyEntry>) {
        out.append(&mut self.carried);
        out.append(&mut self.ready);
    }

    pub fn defer(&mut self, entry: ReadyEntry) {
        self.carried.push(entry);
    }

    pub fn has_pending(&self) -> bool {
        !self.ready.is_empty() || !self.carried.is_empty()
    }

    pub fn watcher_cb(&self, fd: Fd) -> Option<IoCb> {
        self.slot(fd).and_then(|w| w.cb.clone())
    }

    pub fn event_kind(&self, fd: Fd) -> CbKind {
        self.slot(fd)
            .map(|w| w.kind_override.unwrap_or(w.kind.event_kind()))
            .unwrap_or(CbKind::IoOther)
    }

    pub fn fd_kind(&self, fd: Fd) -> Option<FdKind> {
        self.slot(fd).map(|w| w.kind)
    }

    /// Whether any ref'd watcher keeps the loop alive.
    pub fn any_refd(&self) -> bool {
        self.refd_open > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_limit() {
        let mut p = PollState::new(2);
        assert!(p.alloc(FdKind::Other).is_ok());
        assert!(p.alloc(FdKind::Other).is_ok());
        assert_eq!(p.alloc(FdKind::Other), Err(Errno::Emfile));
    }

    #[test]
    fn close_frees_slot() {
        let mut p = PollState::new(1);
        let fd = p.alloc(FdKind::Other).unwrap();
        assert_eq!(p.alloc(FdKind::Other), Err(Errno::Emfile));
        p.close(fd).unwrap();
        assert!(p.alloc(FdKind::Other).is_ok());
        assert_eq!(p.close(fd), Err(Errno::Ebadf));
    }

    #[test]
    fn fds_are_unique_and_start_at_3() {
        let mut p = PollState::new(16);
        let a = p.alloc(FdKind::Other).unwrap();
        let b = p.alloc(FdKind::Other).unwrap();
        assert_eq!(a, Fd(3));
        assert_eq!(b, Fd(4));
    }

    #[test]
    fn mark_ready_orders_fifo() {
        let mut p = PollState::new(8);
        let a = p.alloc(FdKind::NetConn).unwrap();
        let b = p.alloc(FdKind::NetConn).unwrap();
        p.mark_ready(b, VTime(5)).unwrap();
        p.mark_ready(a, VTime(7)).unwrap();
        let ready = p.take_ready();
        assert_eq!(ready.len(), 2);
        assert_eq!(ready[0].fd, b);
        assert_eq!(ready[1].fd, a);
        assert!(ready[0].seq < ready[1].seq);
        assert!(!p.has_pending());
    }

    #[test]
    fn mark_ready_on_closed_fd_fails() {
        let mut p = PollState::new(8);
        let fd = p.alloc(FdKind::Other).unwrap();
        p.close(fd).unwrap();
        assert_eq!(p.mark_ready(fd, VTime(1)), Err(Errno::Ebadf));
    }

    #[test]
    fn close_drops_pending_events() {
        let mut p = PollState::new(8);
        let fd = p.alloc(FdKind::NetConn).unwrap();
        p.mark_ready(fd, VTime(1)).unwrap();
        p.mark_ready(fd, VTime(2)).unwrap();
        p.close(fd).unwrap();
        assert!(p.take_ready().is_empty());
    }

    #[test]
    fn carried_entries_come_first() {
        let mut p = PollState::new(8);
        let a = p.alloc(FdKind::NetConn).unwrap();
        let b = p.alloc(FdKind::NetConn).unwrap();
        p.mark_ready(a, VTime(1)).unwrap();
        p.mark_ready(b, VTime(2)).unwrap();
        let ready = p.take_ready();
        p.defer(ready[1]); // Defer b.
        p.mark_ready(a, VTime(3)).unwrap();
        let next = p.take_ready();
        assert_eq!(next[0].fd, b, "carried entry first");
        assert_eq!(next[1].fd, a);
    }

    #[test]
    fn multiple_marks_multiple_events() {
        let mut p = PollState::new(8);
        let fd = p.alloc(FdKind::NetConn).unwrap();
        p.mark_ready(fd, VTime(1)).unwrap();
        p.mark_ready(fd, VTime(1)).unwrap();
        assert_eq!(p.take_ready().len(), 2);
    }

    #[test]
    fn unref_affects_liveness() {
        let mut p = PollState::new(8);
        let fd = p.alloc(FdKind::NetListener).unwrap();
        assert!(p.any_refd());
        p.set_refd(fd, false).unwrap();
        assert!(!p.any_refd());
        assert_eq!(p.set_refd(Fd(99), false), Err(Errno::Ebadf));
    }

    #[test]
    fn event_kind_follows_fd_kind_and_override() {
        let mut p = PollState::new(8);
        let fd = p.alloc(FdKind::FsDone).unwrap();
        assert_eq!(p.event_kind(fd), CbKind::FsDone);
        p.set_kind_override(fd, CbKind::KvReply).unwrap();
        assert_eq!(p.event_kind(fd), CbKind::KvReply);
        assert_eq!(p.event_kind(Fd(99)), CbKind::IoOther);
    }

    #[test]
    fn refd_count_survives_close_and_redundant_sets() {
        let mut p = PollState::new(8);
        let a = p.alloc(FdKind::Other).unwrap();
        let b = p.alloc(FdKind::Other).unwrap();
        p.set_refd(a, false).unwrap();
        p.set_refd(a, false).unwrap(); // Redundant: must not double-count.
        assert!(p.any_refd());
        p.close(b).unwrap(); // Closing the ref'd one.
        assert!(!p.any_refd());
        p.set_refd(a, true).unwrap();
        assert!(p.any_refd());
    }

    #[test]
    fn drain_ready_into_matches_take_ready_order() {
        let mut p = PollState::new(8);
        let a = p.alloc(FdKind::NetConn).unwrap();
        let b = p.alloc(FdKind::NetConn).unwrap();
        p.mark_ready(a, VTime(1)).unwrap();
        p.mark_ready(b, VTime(2)).unwrap();
        let first = p.take_ready();
        p.defer(first[1]);
        p.mark_ready(a, VTime(3)).unwrap();
        let mut scratch = Vec::new();
        p.drain_ready_into(&mut scratch);
        assert_eq!(scratch[0].fd, b, "carried entry first");
        assert_eq!(scratch[1].fd, a);
        assert!(!p.has_pending());
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut p = PollState::new(2);
        let fd = p.alloc(FdKind::NetConn).unwrap();
        p.alloc(FdKind::Other).unwrap();
        p.mark_ready(fd, VTime(1)).unwrap();
        p.reset(4);
        assert_eq!(p.open_count(), 0);
        assert!(!p.any_refd());
        assert!(!p.has_pending());
        assert!(!p.is_open(fd));
        assert_eq!(p.alloc(FdKind::Other).unwrap(), Fd(3));
    }

    #[test]
    fn kind_mapping_is_sensible() {
        assert_eq!(FdKind::NetListener.event_kind(), CbKind::NetAccept);
        assert_eq!(FdKind::NetConn.event_kind(), CbKind::NetRead);
        assert_eq!(FdKind::TaskDone.event_kind(), CbKind::PoolDone);
        assert_eq!(FdKind::PoolDone.event_kind(), CbKind::PoolDone);
    }
}
