//! Dispatch provenance: the event log behind happens-before analysis.
//!
//! When an [`EventLog`] is attached to a loop (see
//! [`EventLoop::set_event_log`](crate::EventLoop::set_event_log)), every
//! dispatched callback becomes an [`EventRecord`] carrying *who caused it*:
//! the callback that registered the timer, submitted the pool task, armed
//! the fd watcher, or scheduled the environment action. Application code
//! marks shared-state accesses through [`Ctx::touch_read`] /
//! [`Ctx::touch_write`] / [`Ctx::touch_update`], which append [`Access`]
//! rows against the currently running event. The `nodefz-hb` crate turns
//! the two tables into a vector-clock happens-before graph and predicts
//! racing callback pairs from a single recorded run.
//!
//! With no log attached every hook is a no-op on an `Option` that is
//! `None` — the default build pays nothing.
//!
//! Microtasks (`next_tick`) are *absorbed into their parent event*: the
//! loop drains the microtask queue to completion after each callback with
//! no scheduling point in between, so attributing their accesses to the
//! dispatching callback is exact, and the microtask-FIFO happens-before
//! edges are implied by the containment.
//!
//! [`Ctx::touch_read`]: crate::Ctx::touch_read
//! [`Ctx::touch_write`]: crate::Ctx::touch_write
//! [`Ctx::touch_update`]: crate::Ctx::touch_update

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::time::VTime;
use crate::trace::CbKind;

/// A dense identifier for one dispatched event within a single run.
///
/// Event `0` is always the synthetic `Setup` event covering the closures
/// passed to [`EventLoop::enter`](crate::EventLoop::enter).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CbId(pub u32);

/// What category of event a record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvKind {
    /// The synthetic setup event (program registration code).
    Setup,
    /// A dispatched callback of the given type-schedule kind.
    Cb(CbKind),
    /// An environment action (simulated external input firing).
    Env,
}

/// Kind-specific detail attached to an event record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EvDetail {
    /// No extra detail.
    #[default]
    None,
    /// A timer dispatch: the entry's deadline and registration sequence.
    Timer {
        /// The (possibly deferred) deadline the entry fired under.
        deadline: VTime,
        /// Registration sequence number (ties broken FIFO).
        seq: u64,
    },
    /// A worker-pool event; payload is the [`TaskId`](crate::TaskId) index.
    Task(u64),
    /// An fd dispatch; payload is the [`Fd`](crate::Fd) index.
    Fd(u32),
}

/// One dispatched event with its causal provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Dense per-run id (index into [`EventLog::events`]).
    pub id: CbId,
    /// Event category.
    pub kind: EvKind,
    /// The event that caused this one (registered the timer, submitted
    /// the task, marked the fd ready, scheduled the env action, …).
    pub cause: Option<CbId>,
    /// Secondary cause: for fd dispatches, the event that *registered*
    /// the watcher (the readiness producer is `cause`).
    pub cause2: Option<CbId>,
    /// Scheduler decisions consumed before this event started — the
    /// replay-prefix length that reproduces everything up to (but not
    /// including) this dispatch.
    pub decisions: u64,
    /// The loop iteration the event dispatched in (`0` for the synthetic
    /// `Setup` event, which runs before the first iteration). Within one
    /// iteration events follow libuv's phase order — timers, pending,
    /// idle, prepare, poll, check, close — which is exactly what the
    /// `nodefz-conform` ordering oracle checks against.
    pub iter: u64,
    /// Kind-specific detail.
    pub detail: EvDetail,
}

/// How an instrumented access touches its site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Observes shared state.
    Read,
    /// Replaces shared state.
    Write,
    /// A commutative read-modify-write (e.g. `+= 1`): write-ish for race
    /// candidacy, but two Updates against each other commute.
    Update,
}

impl AccessKind {
    /// Whether this access can invalidate another (is write-ish).
    pub fn is_write(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// One instrumented shared-state access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// The event that performed the access.
    pub event: CbId,
    /// Index into [`EventLog::sites`].
    pub site: u32,
    /// Read / Write / Update.
    pub kind: AccessKind,
}

/// The recorded event + access tables for one run, plus the provenance
/// maps the loop uses to thread causes through handles it hands out.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    /// Every dispatched event, in dispatch order (`events[i].id == CbId(i)`).
    pub events: Vec<EventRecord>,
    /// Every instrumented access, in program order.
    pub accesses: Vec<Access>,
    /// Distinct site names, indexed by [`Access::site`].
    pub sites: Vec<String>,
    /// Registering event per `TimerId` index.
    pub(crate) timer_cause: Vec<Option<CbId>>,
    /// Submitting event per `TaskId` index.
    pub(crate) task_submit: Vec<Option<CbId>>,
    /// The `PoolTask` event per `TaskId` index (set when the work runs).
    pub(crate) task_event: Vec<Option<CbId>>,
    /// Watcher-registering event per fd index (fds are never reused).
    pub(crate) fd_reg: Vec<Option<CbId>>,
    /// FIFO of readiness-producing events per fd index.
    pub(crate) fd_ready: Vec<VecDeque<Option<CbId>>>,
}

fn slot<T: Default>(v: &mut Vec<T>, idx: usize) -> &mut T {
    if v.len() <= idx {
        v.resize_with(idx + 1, T::default);
    }
    &mut v[idx]
}

impl EventLog {
    /// Appends an event record and returns its id.
    pub(crate) fn push_event(
        &mut self,
        kind: EvKind,
        cause: Option<CbId>,
        cause2: Option<CbId>,
        detail: EvDetail,
        decisions: u64,
        iter: u64,
    ) -> CbId {
        let id = CbId(u32::try_from(self.events.len()).expect("event log overflow"));
        self.events.push(EventRecord {
            id,
            kind,
            cause,
            cause2,
            decisions,
            iter,
            detail,
        });
        id
    }

    /// Appends an access row, interning `site`.
    pub(crate) fn touch(&mut self, event: CbId, site: &str, kind: AccessKind) {
        let site = self.intern(site);
        self.accesses.push(Access { event, site, kind });
    }

    /// Linear-scan intern: apps declare a handful of sites, so a scan
    /// beats a hash map here.
    fn intern(&mut self, site: &str) -> u32 {
        if let Some(i) = self.sites.iter().position(|s| s == site) {
            return u32::try_from(i).expect("site table overflow");
        }
        let i = u32::try_from(self.sites.len()).expect("site table overflow");
        self.sites.push(site.to_string());
        i
    }

    /// Resolves a site index to its name.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range for this log.
    pub fn site_name(&self, site: u32) -> &str {
        &self.sites[site as usize]
    }

    pub(crate) fn set_timer_cause(&mut self, timer: u64, cause: Option<CbId>) {
        *slot(
            &mut self.timer_cause,
            usize::try_from(timer).expect("timer id"),
        ) = cause;
    }

    pub(crate) fn timer_cause(&self, timer: u64) -> Option<CbId> {
        self.timer_cause
            .get(usize::try_from(timer).expect("timer id"))
            .copied()
            .flatten()
    }

    pub(crate) fn set_task_submit(&mut self, task: u64, cause: Option<CbId>) {
        *slot(
            &mut self.task_submit,
            usize::try_from(task).expect("task id"),
        ) = cause;
    }

    pub(crate) fn task_submit(&self, task: u64) -> Option<CbId> {
        self.task_submit
            .get(usize::try_from(task).expect("task id"))
            .copied()
            .flatten()
    }

    pub(crate) fn set_task_event(&mut self, task: u64, event: Option<CbId>) {
        *slot(
            &mut self.task_event,
            usize::try_from(task).expect("task id"),
        ) = event;
    }

    pub(crate) fn task_event(&self, task: u64) -> Option<CbId> {
        self.task_event
            .get(usize::try_from(task).expect("task id"))
            .copied()
            .flatten()
    }

    pub(crate) fn set_fd_reg(&mut self, fd: u32, cause: Option<CbId>) {
        *slot(&mut self.fd_reg, fd as usize) = cause;
    }

    pub(crate) fn fd_reg(&self, fd: u32) -> Option<CbId> {
        self.fd_reg.get(fd as usize).copied().flatten()
    }

    pub(crate) fn push_fd_ready(&mut self, fd: u32, cause: Option<CbId>) {
        slot(&mut self.fd_ready, fd as usize).push_back(cause);
    }

    pub(crate) fn pop_fd_ready(&mut self, fd: u32) -> Option<CbId> {
        self.fd_ready
            .get_mut(fd as usize)
            .and_then(VecDeque::pop_front)
            .flatten()
    }
}

/// Shared handle to an [`EventLog`], for attaching to a loop and reading
/// the result back after the run.
#[derive(Clone, Debug, Default)]
pub struct EventLogHandle(pub(crate) Rc<RefCell<EventLog>>);

impl EventLogHandle {
    /// Creates a handle around an empty log.
    pub fn fresh() -> EventLogHandle {
        EventLogHandle::default()
    }

    /// Clones out the current log contents.
    pub fn snapshot(&self) -> EventLog {
        self.0.borrow().clone()
    }

    /// Runs `f` against the live log without cloning it — the read path
    /// for per-run analyses (canonical-key folding) that would otherwise
    /// pay a full log copy on every execution.
    pub fn with<R>(&self, f: impl FnOnce(&EventLog) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Resets the log in place (so a handle can be reused across runs).
    pub(crate) fn reset(&self) {
        let mut log = self.0.borrow_mut();
        log.events.clear();
        log.accesses.clear();
        log.sites.clear();
        log.timer_cause.clear();
        log.task_submit.clear();
        log.task_event.clear();
        log.fd_reg.clear();
        log.fd_ready.clear();
    }
}

impl PartialEq for EventLogHandle {
    fn eq(&self, other: &EventLogHandle) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_dense() {
        let mut log = EventLog::default();
        let e = log.push_event(EvKind::Setup, None, None, EvDetail::None, 0, 0);
        log.touch(e, "a", AccessKind::Read);
        log.touch(e, "b", AccessKind::Write);
        log.touch(e, "a", AccessKind::Update);
        assert_eq!(log.sites, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(log.accesses[0].site, 0);
        assert_eq!(log.accesses[1].site, 1);
        assert_eq!(log.accesses[2].site, 0);
        assert_eq!(log.site_name(1), "b");
    }

    #[test]
    fn provenance_maps_grow_on_demand() {
        let mut log = EventLog::default();
        let e = CbId(0);
        log.set_timer_cause(5, Some(e));
        assert_eq!(log.timer_cause(5), Some(e));
        assert_eq!(log.timer_cause(4), None);
        assert_eq!(log.timer_cause(99), None);
        log.push_fd_ready(3, Some(e));
        log.push_fd_ready(3, None);
        assert_eq!(log.pop_fd_ready(3), Some(e));
        assert_eq!(log.pop_fd_ready(3), None);
        assert_eq!(log.pop_fd_ready(3), None);
    }

    #[test]
    fn handle_reset_clears_everything() {
        let h = EventLogHandle::fresh();
        {
            let mut log = h.0.borrow_mut();
            let e = log.push_event(EvKind::Env, None, None, EvDetail::None, 2, 1);
            log.touch(e, "x", AccessKind::Write);
            log.set_task_submit(0, Some(e));
        }
        h.reset();
        let log = h.snapshot();
        assert!(log.events.is_empty());
        assert!(log.accesses.is_empty());
        assert!(log.sites.is_empty());
        assert!(log.task_submit.is_empty());
    }

    #[test]
    fn write_ish_classification() {
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(AccessKind::Update.is_write());
    }
}
