//! Loop-phase observability (compile-time feature `obs`).
//!
//! When the `obs` feature is enabled the event loop can carry an
//! [`ObsHandle`]: per-phase virtual-time and wall-time profiles, per-
//! [`CbKind`] dispatch counts, and an optional [`TraceEventSink`] that
//! receives one event per completed phase span and per dispatched
//! callback (the nodefz-obs crate turns those into chrome://tracing
//! JSON). Without the feature none of this module exists and the loop's
//! hot path compiles exactly as before — zero overhead when off.
//!
//! The handle is `Rc`-based, like the loop itself: observability is
//! attached per loop on its owning thread, and only aggregated numbers
//! (plain copies) leave it.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use crate::time::{VDur, VTime};
use crate::trace::CbKind;

/// A loop phase, in execution order.
///
/// [`Phase::Demux`] is the environment-event drain (done-queue delivery,
/// §4.3.1); structurally it runs *inside* the poll phase, so its time is
/// a subset of [`Phase::Poll`]'s, not a disjoint slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Expired-timer dispatch.
    Timers,
    /// Pending-callback dispatch.
    Pending,
    /// Idle-handle dispatch.
    Idle,
    /// Prepare-handle dispatch.
    Prepare,
    /// I/O readiness dispatch (including blocking in virtual time).
    Poll,
    /// Environment-event delivery nested inside the poll phase.
    Demux,
    /// Check phase: `set_immediate` callbacks plus check handles.
    Check,
    /// Close-callback dispatch.
    Close,
}

impl Phase {
    /// Every phase, in execution order.
    pub fn all() -> &'static [Phase; 8] {
        &[
            Phase::Timers,
            Phase::Pending,
            Phase::Idle,
            Phase::Prepare,
            Phase::Poll,
            Phase::Demux,
            Phase::Check,
            Phase::Close,
        ]
    }

    /// A stable lowercase label (used as the metric / trace-event name).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Timers => "timers",
            Phase::Pending => "pending",
            Phase::Idle => "idle",
            Phase::Prepare => "prepare",
            Phase::Poll => "poll",
            Phase::Demux => "demux",
            Phase::Check => "check",
            Phase::Close => "close",
        }
    }

    /// Index into [`Phase::all`] order.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Accumulated timing for one phase across a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// How many times the phase was entered.
    pub entries: u64,
    /// Total virtual time spent in the phase.
    pub vtime: VDur,
    /// Total wall-clock time spent in the phase, in nanoseconds.
    pub wall_ns: u64,
}

/// One completed span: a phase or a dispatched callback.
///
/// Timestamps are virtual — that is what makes traces of the same seed
/// comparable — with the measured wall time carried alongside as an
/// argument.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent<'a> {
    /// Span name (phase label or callback-kind label).
    pub name: &'a str,
    /// `"phase"` or `"callback"`.
    pub cat: &'static str,
    /// Virtual start time.
    pub start: VTime,
    /// Virtual duration.
    pub dur: VDur,
    /// Measured wall-clock duration in nanoseconds.
    pub wall_ns: u64,
}

/// A consumer of [`TraceEvent`]s, e.g. nodefz-obs's chrome-trace
/// exporter.
pub trait TraceEventSink {
    /// Receives one completed span. Called synchronously from the loop.
    fn event(&mut self, ev: &TraceEvent<'_>);
}

/// Observability state for one loop run.
#[derive(Default)]
pub struct LoopObs {
    /// Per-phase profiles, indexed by [`Phase::index`].
    pub phases: [PhaseProfile; 8],
    /// Dispatch counts indexed by [`CbKind::index`].
    pub kind_counts: [u64; CbKind::COUNT],
    /// Optional per-span event consumer.
    pub sink: Option<Rc<RefCell<dyn TraceEventSink>>>,
}

/// A cloneable handle onto a loop's [`LoopObs`].
///
/// Attach with `EventLoop::set_obs`; keep a clone to read the profile
/// back after the run. Not `Send` — create it on the thread that owns
/// the loop.
#[derive(Clone, Default)]
pub struct ObsHandle {
    inner: Rc<RefCell<LoopObs>>,
}

impl ObsHandle {
    /// A fresh handle with no sink.
    pub fn new() -> ObsHandle {
        ObsHandle::default()
    }

    /// A fresh handle forwarding every span to `sink`.
    pub fn with_sink(sink: Rc<RefCell<dyn TraceEventSink>>) -> ObsHandle {
        let handle = ObsHandle::new();
        handle.inner.borrow_mut().sink = Some(sink);
        handle
    }

    /// Copies out the per-phase profiles, in [`Phase::all`] order.
    pub fn phase_profiles(&self) -> [PhaseProfile; 8] {
        self.inner.borrow().phases
    }

    /// Copies out the per-kind dispatch counts, in [`CbKind::all`] order.
    pub fn kind_counts(&self) -> Vec<(CbKind, u64)> {
        let obs = self.inner.borrow();
        CbKind::all()
            .iter()
            .map(|&k| (k, obs.kind_counts[k.index()]))
            .collect()
    }

    /// Total dispatched callbacks seen by this handle.
    pub fn dispatched(&self) -> u64 {
        self.inner.borrow().kind_counts.iter().sum()
    }

    /// Clears profiles and counts (the sink, if any, stays attached).
    pub fn reset(&self) {
        let mut obs = self.inner.borrow_mut();
        obs.phases = Default::default();
        obs.kind_counts = [0; CbKind::COUNT];
    }

    pub(crate) fn record_phase(&self, phase: Phase, start: VTime, end: VTime, wall_ns: u64) {
        let mut obs = self.inner.borrow_mut();
        let p = &mut obs.phases[phase.index()];
        p.entries += 1;
        p.vtime += end.since(start);
        p.wall_ns += wall_ns;
        if let Some(sink) = obs.sink.clone() {
            drop(obs);
            sink.borrow_mut().event(&TraceEvent {
                name: phase.label(),
                cat: "phase",
                start,
                dur: end.since(start),
                wall_ns,
            });
        }
    }

    pub(crate) fn record_dispatch(&self, kind: CbKind, start: VTime, end: VTime, wall_ns: u64) {
        let mut obs = self.inner.borrow_mut();
        obs.kind_counts[kind.index()] += 1;
        if let Some(sink) = obs.sink.clone() {
            drop(obs);
            sink.borrow_mut().event(&TraceEvent {
                name: kind.label(),
                cat: "callback",
                start,
                dur: end.since(start),
                wall_ns,
            });
        }
    }
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHandle")
            .field("dispatched", &self.dispatched())
            .finish()
    }
}

/// An open span: virtual start plus the wall-clock stopwatch.
pub(crate) type ObsSpan = Option<(VTime, Instant)>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indexes_match_all_order() {
        for (i, p) in Phase::all().iter().enumerate() {
            assert_eq!(p.index(), i, "{p:?}");
        }
    }

    #[test]
    fn phase_labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in Phase::all() {
            assert!(seen.insert(p.label()), "duplicate label for {p:?}");
        }
    }

    #[test]
    fn handle_accumulates_phases_and_dispatches() {
        let h = ObsHandle::new();
        h.record_phase(Phase::Poll, VTime(100), VTime(400), 55);
        h.record_phase(Phase::Poll, VTime(500), VTime(600), 5);
        h.record_dispatch(CbKind::Timer, VTime(0), VTime(10), 1);
        h.record_dispatch(CbKind::Timer, VTime(10), VTime(20), 1);
        h.record_dispatch(CbKind::NetRead, VTime(20), VTime(30), 1);
        let polls = h.phase_profiles()[Phase::Poll.index()];
        assert_eq!(polls.entries, 2);
        assert_eq!(polls.vtime, VDur(400));
        assert_eq!(polls.wall_ns, 60);
        assert_eq!(h.dispatched(), 3);
        let counts: std::collections::HashMap<CbKind, u64> = h.kind_counts().into_iter().collect();
        assert_eq!(counts[&CbKind::Timer], 2);
        assert_eq!(counts[&CbKind::NetRead], 1);
        h.reset();
        assert_eq!(h.dispatched(), 0);
        assert_eq!(h.phase_profiles()[Phase::Poll.index()].entries, 0);
    }

    #[test]
    fn sink_sees_every_span() {
        struct Collect(Vec<(String, &'static str, u64)>);
        impl TraceEventSink for Collect {
            fn event(&mut self, ev: &TraceEvent<'_>) {
                self.0
                    .push((ev.name.to_string(), ev.cat, ev.dur.as_nanos()));
            }
        }
        let sink = Rc::new(RefCell::new(Collect(Vec::new())));
        let h = ObsHandle::with_sink(sink.clone());
        h.record_phase(Phase::Timers, VTime(0), VTime(7), 1);
        h.record_dispatch(CbKind::Close, VTime(2), VTime(5), 1);
        let got = &sink.borrow().0;
        assert_eq!(
            got,
            &[
                ("timers".to_string(), "phase", 7),
                ("close".to_string(), "callback", 3)
            ]
        );
    }
}
