//! Callback-composition utilities.
//!
//! These mirror the ordering tools the Node.js community uses to *fix* the
//! ordering violations in the paper's bug study (§3.4): the `async` module's
//! barrier (`async.barrier` / `Promise.all`), explicit completion counters
//! (the MGS patch in Figure 4), sequential waterfalls (nested callbacks, the
//! KUE patch in Figure 3), and the `EventEmitter` whose synchronous,
//! registration-ordered listener dispatch the fuzzer must preserve (§4.3.1).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::ctx::Ctx;

/// An asynchronous barrier: runs `done` once `n` parties have arrived.
///
/// The EDA analogue of `MPI_Barrier` the paper mentions for the RST fix; also
/// equivalent to `Promise.all` over `n` promises.
///
/// # Examples
///
/// ```
/// use nodefz_rt::{Barrier, EventLoop, LoopConfig, VDur};
///
/// let mut el = EventLoop::new(LoopConfig::seeded(3));
/// el.enter(|cx| {
///     let barrier = Barrier::new(2, |cx| cx.report_error("all-done", ""));
///     for i in 0..2u64 {
///         let b = barrier.clone();
///         cx.set_timeout(VDur::millis(i + 1), move |cx| b.arrive(cx));
///     }
/// });
/// assert!(el.run().has_error("all-done"));
/// ```
#[derive(Clone)]
pub struct Barrier {
    inner: Rc<RefCell<BarrierState>>,
}

type BarrierCb = Box<dyn FnOnce(&mut Ctx<'_>)>;

struct BarrierState {
    remaining: usize,
    done: Option<BarrierCb>,
}

impl Barrier {
    /// Creates a barrier expecting `n` arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (an empty barrier has no well-defined firing
    /// point in callback code; call `done` directly instead).
    pub fn new(n: usize, done: impl FnOnce(&mut Ctx<'_>) + 'static) -> Barrier {
        assert!(n > 0, "Barrier::new requires at least one party");
        Barrier {
            inner: Rc::new(RefCell::new(BarrierState {
                remaining: n,
                done: Some(Box::new(done)),
            })),
        }
    }

    /// Records one arrival; the last arrival runs the completion callback
    /// synchronously.
    pub fn arrive(&self, cx: &mut Ctx<'_>) {
        let done = {
            let mut st = self.inner.borrow_mut();
            if st.remaining == 0 {
                return; // Extra arrivals are ignored.
            }
            st.remaining -= 1;
            if st.remaining == 0 {
                st.done.take()
            } else {
                None
            }
        };
        if let Some(done) = done {
            done(cx);
        }
    }

    /// Parties still awaited.
    pub fn remaining(&self) -> usize {
        self.inner.borrow().remaining
    }
}

/// A step in a [`series`]: receives the context and a `next` continuation.
pub type SeriesStep = Box<dyn FnOnce(&mut Ctx<'_>, SeriesNext)>;

/// The continuation a series step calls to advance to the next step.
pub struct SeriesNext {
    rest: Rc<RefCell<Vec<SeriesStep>>>,
}

impl SeriesNext {
    /// Runs the next step (or nothing, if the series is exhausted).
    pub fn call(self, cx: &mut Ctx<'_>) {
        let step = self.rest.borrow_mut().pop();
        if let Some(step) = step {
            let next = SeriesNext { rest: self.rest };
            step(cx, next);
        }
    }
}

/// Runs asynchronous steps strictly in order, each advancing via its `next`
/// continuation — the "nested callbacks" fix pattern (KUE, Figure 3) without
/// the nesting.
pub fn series(cx: &mut Ctx<'_>, steps: Vec<SeriesStep>) {
    let mut rest = steps;
    rest.reverse();
    let next = SeriesNext {
        rest: Rc::new(RefCell::new(rest)),
    };
    next.call(cx);
}

type ListenerCb<E> = Rc<RefCell<dyn FnMut(&mut Ctx<'_>, &E)>>;

/// Identifier of a registered listener.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ListenerId(u64);

type ListenerEntry<E> = (ListenerId, ListenerCb<E>, bool);

struct EmitterState<E> {
    listeners: HashMap<&'static str, Vec<ListenerEntry<E>>>,
    next: u64,
}

/// A Node.js-style `EventEmitter`.
///
/// `emit` invokes every listener for the event *successively, synchronously,
/// and in registration order* — the documented contract the paper's fuzzer
/// explicitly refuses to break (§4.3.1), and which our fidelity tests check.
pub struct Emitter<E> {
    inner: Rc<RefCell<EmitterState<E>>>,
}

impl<E> Clone for Emitter<E> {
    fn clone(&self) -> Self {
        Emitter {
            inner: self.inner.clone(),
        }
    }
}

impl<E> Default for Emitter<E> {
    fn default() -> Self {
        Emitter::new()
    }
}

impl<E> Emitter<E> {
    /// Creates an emitter with no listeners.
    pub fn new() -> Emitter<E> {
        Emitter {
            inner: Rc::new(RefCell::new(EmitterState {
                listeners: HashMap::new(),
                next: 0,
            })),
        }
    }

    /// Registers a persistent listener; returns its id.
    pub fn on(
        &self,
        event: &'static str,
        cb: impl FnMut(&mut Ctx<'_>, &E) + 'static,
    ) -> ListenerId {
        self.add(event, cb, false)
    }

    /// Registers a listener removed after its first invocation.
    pub fn once(
        &self,
        event: &'static str,
        cb: impl FnMut(&mut Ctx<'_>, &E) + 'static,
    ) -> ListenerId {
        self.add(event, cb, true)
    }

    fn add(
        &self,
        event: &'static str,
        cb: impl FnMut(&mut Ctx<'_>, &E) + 'static,
        once: bool,
    ) -> ListenerId {
        let mut st = self.inner.borrow_mut();
        let id = ListenerId(st.next);
        st.next += 1;
        st.listeners
            .entry(event)
            .or_default()
            .push((id, Rc::new(RefCell::new(cb)), once));
        id
    }

    /// Removes a listener. Returns whether it was registered.
    pub fn remove_listener(&self, event: &'static str, id: ListenerId) -> bool {
        let mut st = self.inner.borrow_mut();
        if let Some(list) = st.listeners.get_mut(event) {
            let before = list.len();
            list.retain(|(lid, _, _)| *lid != id);
            return list.len() != before;
        }
        false
    }

    /// Number of listeners currently registered for `event`.
    pub fn listener_count(&self, event: &'static str) -> usize {
        self.inner
            .borrow()
            .listeners
            .get(event)
            .map_or(0, |l| l.len())
    }

    /// Invokes all listeners for `event` in registration order.
    ///
    /// Returns the number of listeners invoked.
    pub fn emit(&self, cx: &mut Ctx<'_>, event: &'static str, payload: &E) -> usize {
        let snapshot: Vec<(ListenerId, ListenerCb<E>, bool)> = {
            let st = self.inner.borrow();
            st.listeners.get(event).cloned().unwrap_or_default()
        };
        for (id, cb, once) in &snapshot {
            if *once {
                self.remove_listener(event, *id);
            }
            (cb.borrow_mut())(cx, payload);
        }
        snapshot.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::looper::{EventLoop, LoopConfig};
    use crate::time::VDur;

    #[test]
    fn barrier_fires_after_all_arrivals() {
        let mut el = EventLoop::new(LoopConfig::seeded(1));
        el.enter(|cx| {
            let b = Barrier::new(3, |cx| cx.report_error("fired", ""));
            for i in 0..3u64 {
                let b = b.clone();
                cx.set_timeout(VDur::millis(i + 1), move |cx| b.arrive(cx));
            }
        });
        let report = el.run();
        assert!(report.has_error("fired"));
        assert_eq!(
            report.errors.iter().filter(|e| e.code == "fired").count(),
            1
        );
    }

    #[test]
    fn barrier_does_not_fire_early() {
        let mut el = EventLoop::new(LoopConfig::seeded(2));
        el.enter(|cx| {
            let b = Barrier::new(2, |cx| cx.report_error("fired", ""));
            assert_eq!(b.remaining(), 2);
            let b2 = b.clone();
            cx.set_timeout(VDur::millis(1), move |cx| {
                b2.arrive(cx);
                assert_eq!(b2.remaining(), 1);
            });
        });
        assert!(!el.run().has_error("fired"));
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn barrier_zero_rejected() {
        let _ = Barrier::new(0, |_| {});
    }

    #[test]
    fn series_runs_in_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut el = EventLoop::new(LoopConfig::seeded(3));
        el.enter(|cx| {
            let mk = |tag: u32, order: Rc<RefCell<Vec<u32>>>| -> SeriesStep {
                Box::new(move |cx: &mut Ctx<'_>, next: SeriesNext| {
                    // Each step completes via an async hop of varying delay;
                    // the series must still run 1, 2, 3.
                    cx.set_timeout(VDur::millis((4 - tag) as u64), move |cx| {
                        order.borrow_mut().push(tag);
                        next.call(cx);
                    });
                })
            };
            series(
                cx,
                vec![
                    mk(1, order.clone()),
                    mk(2, order.clone()),
                    mk(3, order.clone()),
                ],
            );
        });
        el.run();
        assert_eq!(*order.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn emitter_in_registration_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut el = EventLoop::new(LoopConfig::seeded(4));
        el.enter(|cx| {
            let em: Emitter<u32> = Emitter::new();
            for tag in 0..5u32 {
                let order = order.clone();
                em.on("evt", move |_, payload| {
                    order.borrow_mut().push((tag, *payload));
                });
            }
            assert_eq!(em.emit(cx, "evt", &7), 5);
        });
        let got = order.borrow().clone();
        assert_eq!(got, (0..5).map(|t| (t, 7)).collect::<Vec<_>>());
    }

    #[test]
    fn emitter_once_runs_once() {
        let count = Rc::new(RefCell::new(0));
        let mut el = EventLoop::new(LoopConfig::seeded(5));
        el.enter(|cx| {
            let em: Emitter<()> = Emitter::new();
            let c = count.clone();
            em.once("evt", move |_, _| *c.borrow_mut() += 1);
            em.emit(cx, "evt", &());
            em.emit(cx, "evt", &());
            assert_eq!(em.listener_count("evt"), 0);
        });
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn emitter_remove_listener() {
        let mut el = EventLoop::new(LoopConfig::seeded(6));
        el.enter(|cx| {
            let em: Emitter<()> = Emitter::new();
            let id = em.on("evt", |_, _| panic!("should not run"));
            assert!(em.remove_listener("evt", id));
            assert!(!em.remove_listener("evt", id));
            assert!(!em.remove_listener("other", id));
            assert_eq!(em.emit(cx, "evt", &()), 0);
        });
    }

    #[test]
    fn emitter_unknown_event_is_noop() {
        let mut el = EventLoop::new(LoopConfig::seeded(7));
        el.enter(|cx| {
            let em: Emitter<u8> = Emitter::new();
            assert_eq!(em.emit(cx, "nothing", &0), 0);
            assert_eq!(em.listener_count("nothing"), 0);
        });
    }
}
