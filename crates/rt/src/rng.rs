//! A small, self-contained deterministic PRNG.
//!
//! The runtime embeds xoshiro256++ (seeded through SplitMix64) instead of
//! depending on the `rand` crate so that the simulator's determinism can
//! never be broken by an upstream algorithm change. Every source of modelled
//! nondeterminism — message latencies, task durations, callback costs, and
//! the fuzz scheduler's choices — draws from an instance of [`Rng`], so a run
//! is a pure function of its seeds.

use crate::time::VDur;

/// Reusable buffers for [`Rng::shuffle_bounded_with`].
#[derive(Clone, Debug, Default)]
pub struct ShuffleScratch {
    keys: Vec<u64>,
    order: Vec<usize>,
}

impl ShuffleScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> ShuffleScratch {
        ShuffleScratch::default()
    }
}

/// Deterministic xoshiro256++ pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Identical seeds always produce identical streams.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator.
    ///
    /// Used to hand sub-streams to subsystems (network latency, pool
    /// durations, …) so that adding draws in one subsystem does not shift
    /// another subsystem's stream.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below requires a positive bound");
        // Debiased multiply-shift (Lemire).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng::range requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `pct` percent.
    ///
    /// `pct <= 0` never fires; `pct >= 100` always fires.
    pub fn chance_pct(&mut self, pct: f64) -> bool {
        if pct <= 0.0 {
            return false;
        }
        if pct >= 100.0 {
            return true;
        }
        self.unit() * 100.0 < pct
    }

    /// Returns `dur` scaled by a uniform factor in `[1-jitter, 1+jitter]`.
    ///
    /// `jitter` is a fraction (0.5 means ±50%). The result is never zero for
    /// a nonzero input so that causality (strictly increasing completion
    /// times for chained events) is preserved.
    pub fn jitter(&mut self, dur: VDur, jitter: f64) -> VDur {
        if dur.is_zero() || jitter <= 0.0 {
            return dur;
        }
        let factor = 1.0 + jitter * (2.0 * self.unit() - 1.0);
        let scaled = dur.mul_f64(factor.max(0.0));
        if scaled.is_zero() {
            VDur(1)
        } else {
            scaled
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        let n = items.len();
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Bounded shuffle: no element moves more than `max_dist` positions.
    ///
    /// This is the "degrees of freedom" shuffle from §4.3.4 of the paper: a
    /// trade-off between extreme fuzzing and realistic schedules. A
    /// `max_dist` of `usize::MAX` degenerates to a full Fisher–Yates shuffle.
    pub fn shuffle_bounded<T>(&mut self, items: &mut [T], max_dist: usize) {
        let mut scratch = ShuffleScratch::new();
        self.shuffle_bounded_with(items, max_dist, &mut scratch);
    }

    /// [`shuffle_bounded`] with caller-owned scratch, for hot paths that
    /// shuffle once per loop iteration. Draws the same random sequence as
    /// the scratch-free version, so recorded schedules are unaffected.
    ///
    /// [`shuffle_bounded`]: Rng::shuffle_bounded
    pub fn shuffle_bounded_with<T>(
        &mut self,
        items: &mut [T],
        max_dist: usize,
        scratch: &mut ShuffleScratch,
    ) {
        let n = items.len();
        if n < 2 {
            return;
        }
        if max_dist >= n {
            self.shuffle(items);
            return;
        }
        // Sort by jittered index: element `i` gets key `i + U[0, max_dist]`,
        // then a stable insertion sort by key. Any element moves at most
        // `max_dist` positions in either direction: an element `j` can only
        // pass elements `i` with `key_i > key_j`, and `key_i <= i + max_dist`
        // while `key_j >= j`, so passing requires `|i - j| <= max_dist`.
        let ShuffleScratch { keys, order } = scratch;
        keys.clear();
        keys.extend((0..n).map(|i| i as u64 + self.below(max_dist as u64 + 1)));
        order.clear();
        order.extend(0..n);
        for i in 1..n {
            let mut j = i;
            while j > 0 && keys[order[j - 1]] > keys[order[j]] {
                order.swap(j - 1, j);
                items.swap(j - 1, j);
                j -= 1;
            }
        }
    }

    /// Picks a uniform index into a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn pick_index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn below_covers_all_values() {
        let mut r = Rng::new(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..1_000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn unit_in_unit_interval() {
        let mut r = Rng::new(5);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_pct_extremes() {
        let mut r = Rng::new(11);
        for _ in 0..100 {
            assert!(!r.chance_pct(0.0));
            assert!(r.chance_pct(100.0));
            assert!(!r.chance_pct(-5.0));
            assert!(r.chance_pct(150.0));
        }
    }

    #[test]
    fn chance_pct_roughly_calibrated() {
        let mut r = Rng::new(13);
        let hits = (0..100_000).filter(|_| r.chance_pct(20.0)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((0.18..0.22).contains(&rate), "rate was {rate}");
    }

    #[test]
    fn jitter_preserves_nonzero() {
        let mut r = Rng::new(17);
        for _ in 0..1_000 {
            assert!(!r.jitter(VDur::nanos(2), 0.99).is_zero());
        }
        assert!(r.jitter(VDur::ZERO, 0.5).is_zero());
    }

    #[test]
    fn jitter_within_bounds() {
        let mut r = Rng::new(19);
        let base = VDur::micros(100);
        for _ in 0..1_000 {
            let j = r.jitter(base, 0.5);
            assert!(j >= VDur::micros(50) && j <= VDur::micros(150), "{j:?}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_bounded_respects_distance() {
        let mut r = Rng::new(29);
        for _ in 0..100 {
            let mut v: Vec<usize> = (0..30).collect();
            r.shuffle_bounded(&mut v, 3);
            for (pos, &orig) in v.iter().enumerate() {
                let dist = pos.abs_diff(orig);
                assert!(dist <= 3, "element {orig} moved {dist} > bound");
            }
        }
    }

    #[test]
    fn shuffle_bounded_zero_is_identity() {
        let mut r = Rng::new(31);
        let mut v: Vec<usize> = (0..10).collect();
        r.shuffle_bounded(&mut v, 0);
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_bounded_large_bound_full_shuffle() {
        let mut r = Rng::new(37);
        let mut v: Vec<usize> = (0..20).collect();
        r.shuffle_bounded(&mut v, usize::MAX);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_bounded_with_scratch_matches_scratch_free() {
        let mut scratch = ShuffleScratch::new();
        for seed in 0..20 {
            let mut a = Rng::new(seed);
            let mut b = Rng::new(seed);
            let mut va: Vec<usize> = (0..25).collect();
            let mut vb = va.clone();
            a.shuffle_bounded(&mut va, 4);
            b.shuffle_bounded_with(&mut vb, 4, &mut scratch);
            assert_eq!(va, vb, "seed {seed}");
            assert_eq!(a.next_u64(), b.next_u64(), "rng streams diverged");
        }
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng::new(41);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..16).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }
}
