//! Virtual time primitives.
//!
//! The runtime is a discrete-event simulation: all timestamps are virtual
//! nanoseconds ([`VTime`]) and all durations are virtual nanosecond spans
//! ([`VDur`]). Virtual time only advances at well-defined points (callback
//! execution cost, blocking in the poll phase, explicit [`busy`] work), which
//! is what makes every run bit-for-bit reproducible from its seeds.
//!
//! [`busy`]: crate::Ctx::busy

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, in nanoseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VDur(pub u64);

impl VTime {
    /// The zero point: the instant the event loop starts running.
    pub const ZERO: VTime = VTime(0);

    /// Returns the number of whole virtual nanoseconds since the start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the number of whole virtual milliseconds since the start.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// Saturates to zero if `earlier` is later than `self`.
    pub fn since(self, earlier: VTime) -> VDur {
        VDur(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of the two instants.
    pub fn max(self, other: VTime) -> VTime {
        VTime(self.0.max(other.0))
    }

    /// Returns the earlier of the two instants.
    pub fn min(self, other: VTime) -> VTime {
        VTime(self.0.min(other.0))
    }
}

impl VDur {
    /// The zero-length span.
    pub const ZERO: VDur = VDur(0);

    /// Creates a span from virtual nanoseconds.
    pub const fn nanos(n: u64) -> VDur {
        VDur(n)
    }

    /// Creates a span from virtual microseconds.
    pub const fn micros(us: u64) -> VDur {
        VDur(us * 1_000)
    }

    /// Creates a span from virtual milliseconds.
    pub const fn millis(ms: u64) -> VDur {
        VDur(ms * 1_000_000)
    }

    /// Creates a span from virtual seconds.
    pub const fn secs(s: u64) -> VDur {
        VDur(s * 1_000_000_000)
    }

    /// Returns the number of whole virtual nanoseconds in the span.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the number of whole virtual microseconds in the span.
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the number of whole virtual milliseconds in the span.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the span scaled by a floating-point factor, saturating at zero.
    pub fn mul_f64(self, factor: f64) -> VDur {
        let scaled = (self.0 as f64 * factor).max(0.0);
        VDur(scaled as u64)
    }

    /// Returns whether this is the zero-length span.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<VDur> for VTime {
    type Output = VTime;
    fn add(self, rhs: VDur) -> VTime {
        VTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<VDur> for VTime {
    fn add_assign(&mut self, rhs: VDur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<VTime> for VTime {
    type Output = VDur;
    fn sub(self, rhs: VTime) -> VDur {
        VDur(self.0.saturating_sub(rhs.0))
    }
}

impl Add for VDur {
    type Output = VDur;
    fn add(self, rhs: VDur) -> VDur {
        VDur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for VDur {
    fn add_assign(&mut self, rhs: VDur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for VDur {
    type Output = VDur;
    fn sub(self, rhs: VDur) -> VDur {
        VDur(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for VDur {
    type Output = VDur;
    fn mul(self, rhs: u64) -> VDur {
        VDur(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for VDur {
    type Output = VDur;
    fn div(self, rhs: u64) -> VDur {
        VDur(self.0 / rhs)
    }
}

impl fmt::Debug for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0 / 1_000)
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e6)
    }
}

impl fmt::Debug for VDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0 / 1_000)
    }
}

impl fmt::Display for VDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtime_add_dur() {
        let t = VTime::ZERO + VDur::millis(3);
        assert_eq!(t.as_nanos(), 3_000_000);
        assert_eq!(t.as_millis(), 3);
    }

    #[test]
    fn vtime_sub_saturates() {
        let a = VTime(5);
        let b = VTime(9);
        assert_eq!(a - b, VDur::ZERO);
        assert_eq!(b - a, VDur(4));
    }

    #[test]
    fn since_matches_sub() {
        let a = VTime(1_000);
        let b = VTime(4_000);
        assert_eq!(b.since(a), b - a);
        assert_eq!(a.since(b), VDur::ZERO);
    }

    #[test]
    fn dur_constructors_agree() {
        assert_eq!(VDur::secs(1), VDur::millis(1_000));
        assert_eq!(VDur::millis(1), VDur::micros(1_000));
        assert_eq!(VDur::micros(1), VDur::nanos(1_000));
    }

    #[test]
    fn dur_mul_f64_scales() {
        assert_eq!(VDur::millis(10).mul_f64(1.5), VDur::millis(15));
        assert_eq!(VDur::millis(10).mul_f64(0.0), VDur::ZERO);
        // Negative factors saturate at zero rather than wrapping.
        assert_eq!(VDur::millis(10).mul_f64(-2.0), VDur::ZERO);
    }

    #[test]
    fn dur_arith() {
        assert_eq!(VDur(3) + VDur(4), VDur(7));
        assert_eq!(VDur(4) - VDur(3), VDur(1));
        assert_eq!(VDur(3) - VDur(4), VDur::ZERO);
        assert_eq!(VDur(3) * 4, VDur(12));
        assert_eq!(VDur(12) / 4, VDur(3));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(VTime(1) < VTime(2));
        assert!(VDur::millis(1) < VDur::millis(2));
        assert_eq!(VTime(7).max(VTime(3)), VTime(7));
        assert_eq!(VTime(7).min(VTime(3)), VTime(3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", VTime(1_500_000)), "1.500ms");
        assert_eq!(format!("{}", VDur::micros(250)), "0.250ms");
        assert_eq!(format!("{:?}", VTime(2_000)), "t+2us");
        assert_eq!(format!("{:?}", VDur(3_000)), "3us");
    }
}
