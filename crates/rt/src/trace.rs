//! Callback-type schedule recording (§5.3 of the paper).
//!
//! The paper approximates a libuv schedule by the sequence of *types* of the
//! callbacks it executes ("timer", "network read", "worker pool task", …) and
//! measures schedule diversity as the Levenshtein distance between such type
//! schedules. The runtime records a [`CbKind`] per dispatched callback; the
//! distance computations live in the `nodefz-trace` crate.

use std::fmt;

/// The type of a dispatched callback, as recorded in a type schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CbKind {
    /// An expired timer callback.
    Timer,
    /// A pending-phase callback.
    Pending,
    /// An idle-handle callback.
    Idle,
    /// A prepare-handle callback.
    Prepare,
    /// A check-phase (`set_immediate`) callback.
    Check,
    /// A close callback.
    Close,
    /// A new inbound connection was accepted.
    NetAccept,
    /// Data arrived on a connection.
    NetRead,
    /// A connection was torn down by the peer.
    NetClose,
    /// A worker-pool task body executed (on a worker).
    PoolTask,
    /// A worker-pool completion ("done") callback executed on the loop.
    PoolDone,
    /// A simulated file-system operation completed.
    FsDone,
    /// A key-value store reply was delivered.
    KvReply,
    /// A signal watcher fired.
    Signal,
    /// Output or exit from a child process.
    ChildIo,
    /// An internal wakeup (scheduler bookkeeping).
    Wakeup,
    /// Any other I/O readiness event.
    IoOther,
}

impl CbKind {
    /// The number of distinct kinds (the length of [`CbKind::all`]).
    pub const COUNT: usize = 17;

    /// Returns this kind's index in [`CbKind::all`] order, for dense
    /// per-kind tables.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns a compact one-byte code used by distance computations.
    pub fn code(self) -> u8 {
        match self {
            CbKind::Timer => b'T',
            CbKind::Pending => b'p',
            CbKind::Idle => b'i',
            CbKind::Prepare => b'r',
            CbKind::Check => b'c',
            CbKind::Close => b'X',
            CbKind::NetAccept => b'A',
            CbKind::NetRead => b'N',
            CbKind::NetClose => b'n',
            CbKind::PoolTask => b'W',
            CbKind::PoolDone => b'D',
            CbKind::FsDone => b'F',
            CbKind::KvReply => b'K',
            CbKind::Signal => b'S',
            CbKind::ChildIo => b'P',
            CbKind::Wakeup => b'w',
            CbKind::IoOther => b'o',
        }
    }

    /// Returns a human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            CbKind::Timer => "timer",
            CbKind::Pending => "pending",
            CbKind::Idle => "idle",
            CbKind::Prepare => "prepare",
            CbKind::Check => "check",
            CbKind::Close => "close",
            CbKind::NetAccept => "net-accept",
            CbKind::NetRead => "net-read",
            CbKind::NetClose => "net-close",
            CbKind::PoolTask => "pool-task",
            CbKind::PoolDone => "pool-done",
            CbKind::FsDone => "fs-done",
            CbKind::KvReply => "kv-reply",
            CbKind::Signal => "signal",
            CbKind::ChildIo => "child-io",
            CbKind::Wakeup => "wakeup",
            CbKind::IoOther => "io",
        }
    }

    /// All recordable kinds, in code order.
    pub fn all() -> &'static [CbKind] {
        &[
            CbKind::Timer,
            CbKind::Pending,
            CbKind::Idle,
            CbKind::Prepare,
            CbKind::Check,
            CbKind::Close,
            CbKind::NetAccept,
            CbKind::NetRead,
            CbKind::NetClose,
            CbKind::PoolTask,
            CbKind::PoolDone,
            CbKind::FsDone,
            CbKind::KvReply,
            CbKind::Signal,
            CbKind::ChildIo,
            CbKind::Wakeup,
            CbKind::IoOther,
        ]
    }
}

impl fmt::Display for CbKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A recorded sequence of callback types for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct TypeSchedule {
    codes: Vec<u8>,
}

impl TypeSchedule {
    /// Creates an empty schedule.
    pub fn new() -> TypeSchedule {
        TypeSchedule::default()
    }

    /// Appends one callback-type observation.
    pub fn push(&mut self, kind: CbKind) {
        self.codes.push(kind.code());
    }

    /// Returns the raw one-byte-per-callback encoding.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Returns the number of recorded callbacks.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Returns whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Returns a schedule truncated to the first `n` callbacks.
    ///
    /// The paper truncates schedules to 20 K callbacks before computing
    /// Levenshtein distances (§5.3).
    pub fn truncated(&self, n: usize) -> TypeSchedule {
        TypeSchedule {
            codes: self.codes.iter().copied().take(n).collect(),
        }
    }

    /// Appends every observation from `other`.
    pub fn extend(&mut self, other: &TypeSchedule) {
        self.codes.extend_from_slice(&other.codes);
    }

    /// Counts how many callbacks of `kind` were recorded.
    pub fn count(&self, kind: CbKind) -> usize {
        let c = kind.code();
        self.codes.iter().filter(|&&b| b == c).count()
    }

    /// Removes all observations, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.codes.clear();
    }
}

/// Per-run recorder for type schedules and dispatch counts.
#[derive(Clone, Debug, Default)]
pub struct TraceRecorder {
    enabled: bool,
    schedule: TypeSchedule,
    dispatched: u64,
}

impl TraceRecorder {
    /// Creates a recorder; when `enabled` is false only counts are kept.
    pub fn new(enabled: bool) -> TraceRecorder {
        TraceRecorder {
            enabled,
            ..TraceRecorder::default()
        }
    }

    /// Records the dispatch of one callback of the given kind.
    pub fn record(&mut self, kind: CbKind) {
        self.dispatched += 1;
        if self.enabled {
            self.schedule.push(kind);
        }
    }

    /// Returns the total number of dispatched callbacks.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Consumes the recorder, returning the recorded schedule.
    pub fn into_schedule(self) -> TypeSchedule {
        self.schedule
    }

    /// Returns the schedule recorded so far.
    pub fn schedule(&self) -> &TypeSchedule {
        &self.schedule
    }

    /// Clears all state for a fresh run, keeping allocated capacity.
    pub fn reset(&mut self, enabled: bool) {
        self.enabled = enabled;
        self.schedule.clear();
        self.dispatched = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_match_all_order() {
        assert_eq!(CbKind::all().len(), CbKind::COUNT);
        for (i, k) in CbKind::all().iter().enumerate() {
            assert_eq!(k.index(), i, "{k:?}");
        }
    }

    #[test]
    fn codes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in CbKind::all() {
            assert!(seen.insert(k.code()), "duplicate code for {k:?}");
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in CbKind::all() {
            assert!(seen.insert(k.label()), "duplicate label for {k:?}");
        }
    }

    #[test]
    fn schedule_push_and_count() {
        let mut s = TypeSchedule::new();
        s.push(CbKind::Timer);
        s.push(CbKind::NetRead);
        s.push(CbKind::Timer);
        assert_eq!(s.len(), 3);
        assert_eq!(s.count(CbKind::Timer), 2);
        assert_eq!(s.count(CbKind::NetRead), 1);
        assert_eq!(s.count(CbKind::Close), 0);
    }

    #[test]
    fn schedule_truncation() {
        let mut s = TypeSchedule::new();
        for _ in 0..10 {
            s.push(CbKind::Check);
        }
        assert_eq!(s.truncated(4).len(), 4);
        assert_eq!(s.truncated(100).len(), 10);
        assert!(s.truncated(0).is_empty());
    }

    #[test]
    fn schedule_extend() {
        let mut a = TypeSchedule::new();
        a.push(CbKind::Timer);
        let mut b = TypeSchedule::new();
        b.push(CbKind::Close);
        a.extend(&b);
        assert_eq!(a.codes(), &[CbKind::Timer.code(), CbKind::Close.code()]);
    }

    #[test]
    fn recorder_disabled_keeps_counts_only() {
        let mut r = TraceRecorder::new(false);
        r.record(CbKind::Timer);
        r.record(CbKind::Timer);
        assert_eq!(r.dispatched(), 2);
        assert!(r.schedule().is_empty());
    }

    #[test]
    fn recorder_enabled_records_schedule() {
        let mut r = TraceRecorder::new(true);
        r.record(CbKind::PoolDone);
        assert_eq!(r.dispatched(), 1);
        assert_eq!(r.into_schedule().count(CbKind::PoolDone), 1);
    }
}
