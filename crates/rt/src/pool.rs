//! The worker pool (libuv threadpool analog).
//!
//! Applications offload expensive or blocking work (file-system operations,
//! DNS, user tasks) to the pool via [`Ctx::submit_work`]. Each task has a
//! *work* closure that executes "on a worker" at some virtual time and a
//! *done* callback that later executes on the event loop.
//!
//! Two delivery regimes exist, mirroring §4.3.3 of the paper:
//!
//! * **Multiplexed** (vanilla libuv): all completions land in a shared done
//!   queue signalled through a single descriptor; the loop drains the whole
//!   queue in one I/O event, executing done callbacks back-to-back.
//! * **De-multiplexed** (Node.fz): every task gets a private descriptor, so
//!   each done callback is an independent I/O event the scheduler may
//!   reorder or defer — at the cost of descriptor pressure (`EMFILE`).
//!
//! [`Ctx::submit_work`]: crate::Ctx::submit_work

use std::any::Any;
use std::collections::VecDeque;

use crate::ctx::Ctx;
use crate::poll::Fd;
use crate::rng::Rng;
use crate::time::{VDur, VTime};

/// Identifier of a submitted worker-pool task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// Context handed to a task's work closure while it runs "on a worker".
pub struct WorkCtx<'a> {
    /// Virtual time at which the work executes.
    pub now: VTime,
    /// Deterministic randomness for the work body.
    pub rng: &'a mut Rng,
}

pub(crate) type WorkFn = Box<dyn FnOnce(&mut WorkCtx<'_>) -> Box<dyn Any>>;
pub(crate) type DoneFn = Box<dyn FnOnce(&mut Ctx<'_>, Box<dyn Any>)>;

pub(crate) struct QueuedTask {
    pub id: TaskId,
    pub work: WorkFn,
    pub done: DoneFn,
    pub cost: VDur,
    pub demux_fd: Option<Fd>,
    /// Submission time, kept for diagnostics.
    #[allow(dead_code)]
    pub submitted: VTime,
}

pub(crate) struct RunningTask {
    pub id: TaskId,
    pub work: WorkFn,
    pub done: DoneFn,
    pub demux_fd: Option<Fd>,
    /// Scheduled completion time (diagnostics; completion is env-driven).
    #[allow(dead_code)]
    pub finish: VTime,
}

pub(crate) struct CompletedTask {
    /// Task identity, kept for diagnostics.
    #[allow(dead_code)]
    pub id: TaskId,
    pub done: DoneFn,
    pub result: Box<dyn Any>,
}

/// Aggregate pool statistics for a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks submitted.
    pub submitted: u64,
    /// Task bodies executed.
    pub executed: u64,
    /// Done callbacks delivered.
    pub completed: u64,
}

pub(crate) struct PoolState {
    pub queue: VecDeque<QueuedTask>,
    pub running: Vec<RunningTask>,
    /// Multiplexed completions awaiting the drain of the shared descriptor.
    pub done_mux: VecDeque<CompletedTask>,
    /// De-multiplexed completions keyed by their private descriptor. A flat
    /// vector: the set is small (bounded by in-flight tasks) and scanned
    /// once per delivery, so linear search beats hashing here.
    pub done_demux: Vec<(Fd, CompletedTask)>,
    /// The shared done descriptor (multiplexed mode).
    pub pool_fd: Option<Fd>,
    /// Whether `pool_fd` has an undelivered readiness mark.
    pub pool_fd_armed: bool,
    /// Serialized mode: when the lone worker started waiting for the queue
    /// to fill up to the lookahead.
    pub wait_since: Option<VTime>,
    pub next_id: u64,
    pub stats: PoolStats,
    pub rng: Rng,
    /// Jitter fraction applied to task cost hints.
    pub cost_jitter: f64,
}

impl PoolState {
    pub fn new(rng: Rng, cost_jitter: f64) -> PoolState {
        PoolState {
            queue: VecDeque::new(),
            running: Vec::new(),
            done_mux: VecDeque::new(),
            done_demux: Vec::new(),
            pool_fd: None,
            pool_fd_armed: false,
            wait_since: None,
            next_id: 0,
            stats: PoolStats::default(),
            rng,
            cost_jitter,
        }
    }

    /// Clears all state for a fresh run, keeping allocated capacity.
    pub fn reset(&mut self, rng: Rng, cost_jitter: f64) {
        self.queue.clear();
        self.running.clear();
        self.done_mux.clear();
        self.done_demux.clear();
        self.pool_fd = None;
        self.pool_fd_armed = false;
        self.wait_since = None;
        self.next_id = 0;
        self.stats = PoolStats::default();
        self.rng = rng;
        self.cost_jitter = cost_jitter;
    }

    /// Clones the pool for a snapshot. Refuses (returns `None`) while any
    /// task is queued, running, or awaiting delivery: task bodies and done
    /// callbacks are `FnOnce` and cannot be duplicated. An idle pool's
    /// identity state — descriptor, id counter, stats, RNG stream — clones
    /// cleanly, so forked runs continue the same deterministic streams.
    pub fn try_clone(&self) -> Option<PoolState> {
        if self.busy() {
            return None;
        }
        Some(PoolState {
            queue: VecDeque::new(),
            running: Vec::new(),
            done_mux: VecDeque::new(),
            done_demux: Vec::new(),
            pool_fd: self.pool_fd,
            pool_fd_armed: self.pool_fd_armed,
            wait_since: self.wait_since,
            next_id: self.next_id,
            stats: self.stats,
            rng: self.rng.clone(),
            cost_jitter: self.cost_jitter,
        })
    }

    /// Stores a de-multiplexed completion under its private descriptor.
    pub fn put_done_demux(&mut self, fd: Fd, task: CompletedTask) {
        self.done_demux.push((fd, task));
    }

    /// Removes and returns the completion stored under `fd`, if any.
    pub fn take_done_demux(&mut self, fd: Fd) -> Option<CompletedTask> {
        let idx = self.done_demux.iter().position(|(f, _)| *f == fd)?;
        Some(self.done_demux.swap_remove(idx).1)
    }

    pub fn next_task_id(&mut self) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Whether any task is queued, running, or awaiting completion delivery.
    pub fn busy(&self) -> bool {
        !self.queue.is_empty()
            || !self.running.is_empty()
            || !self.done_mux.is_empty()
            || !self.done_demux.is_empty()
    }

    /// Earliest finish time among running tasks.
    #[allow(dead_code)] // Exercised by tests; kept as a pool introspection point.
    pub fn next_finish(&self) -> Option<VTime> {
        self.running.iter().map(|t| t.finish).min()
    }

    /// Removes and returns the running task finishing exactly at `id`.
    pub fn take_running(&mut self, id: TaskId) -> Option<RunningTask> {
        let idx = self.running.iter().position(|t| t.id == id)?;
        Some(self.running.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_pool() -> PoolState {
        PoolState::new(Rng::new(1), 0.3)
    }

    fn mk_task(pool: &mut PoolState, finish: VTime) -> TaskId {
        let id = pool.next_task_id();
        pool.running.push(RunningTask {
            id,
            work: Box::new(|_| Box::new(())),
            done: Box::new(|_, _| {}),
            demux_fd: None,
            finish,
        });
        id
    }

    #[test]
    fn ids_increment() {
        let mut p = mk_pool();
        assert_eq!(p.next_task_id(), TaskId(0));
        assert_eq!(p.next_task_id(), TaskId(1));
    }

    #[test]
    fn busy_tracks_queues() {
        let mut p = mk_pool();
        assert!(!p.busy());
        let id = mk_task(&mut p, VTime(10));
        assert!(p.busy());
        let t = p.take_running(id).unwrap();
        assert_eq!(t.id, id);
        assert!(!p.busy());
    }

    #[test]
    fn next_finish_is_min() {
        let mut p = mk_pool();
        assert_eq!(p.next_finish(), None);
        mk_task(&mut p, VTime(30));
        mk_task(&mut p, VTime(10));
        mk_task(&mut p, VTime(20));
        assert_eq!(p.next_finish(), Some(VTime(10)));
    }

    #[test]
    fn take_running_missing_is_none() {
        let mut p = mk_pool();
        assert!(p.take_running(TaskId(7)).is_none());
    }
}
