//! Prefix snapshotting: cheap capture/restore of a paused loop.
//!
//! A fuzz campaign exploring many schedules that share a decision prefix
//! re-executes that prefix on every run. [`LoopSnapshot`] removes the
//! waste: pause the loop at an iteration boundary, capture its state once,
//! and restore it into (the same or another) loop arbitrarily many times —
//! each restore re-forks the captured scheduler, so the resumed run draws
//! exactly the decisions the original would have drawn from that point.
//!
//! ## Admissibility
//!
//! Not every paused loop is forkable. Queued one-shot callbacks (`FnOnce`
//! jobs: microtasks, immediates, pending/close queues, worker-pool task
//! bodies and done callbacks, custom environment effects) cannot be
//! duplicated, so [`EventLoop::fork_admissible`] requires those queues to
//! be empty and the installed scheduler to implement
//! [`Scheduler::fork_box`]. Timers, I/O watchers and idle/prepare/check
//! handles hold `Rc<RefCell<dyn FnMut>>` callbacks, which a snapshot
//! *shares* with the original run.
//!
//! ## Fork safety
//!
//! Because repeatable callbacks are shared, restoring is sound exactly for
//! *fork-safe* programs: callbacks whose control flow does not depend on
//! captured mutable state (captured `Rc<Cell<_>>` counters mutated by one
//! resumed run are visible to the next). One structural hazard is detected
//! rather than documented away: a captured one-shot (`set_timeout`)
//! callback is an `FnOnce` consumed by whichever run fires it first, so
//! each snapshot carries the one-shots' shared spent flags and
//! [`EventLoop::restore`] refuses once any has been consumed — a snapshot
//! holding live one-shots supports exactly one resumed execution, never a
//! silent no-op replay. The deterministic fig6 substrate programs that
//! drive campaign runs through `EnvAction::Custom` are conservatively
//! rejected by the admissibility check; forking is an opt-in fast path,
//! never a silent unsoundness.
//!
//! [`EventLoop::fork_admissible`]: crate::EventLoop::fork_admissible
//! [`Scheduler::fork_box`]: crate::Scheduler::fork_box

use crate::envq::EnvQueue;
use crate::error::AppError;
use crate::events::{CbId, EventLog};
use crate::looper::{LoopConfig, LoopState, RepeatHandles};
use crate::poll::PollState;
use crate::pool::PoolState;
use crate::proc::ProcTable;
use crate::rng::Rng;
use crate::sched::{PoolMode, Scheduler};
use crate::signal::SignalState;
use crate::time::VTime;
use crate::timers::TimerHeap;
use crate::trace::TraceRecorder;

/// A captured loop prefix: everything needed to resume execution from the
/// capture point, including a forked scheduler and a deep copy of the
/// attached event log (if any).
///
/// Created by [`EventLoop::snapshot`], consumed (any number of times) by
/// [`EventLoop::restore`].
///
/// [`EventLoop::snapshot`]: crate::EventLoop::snapshot
/// [`EventLoop::restore`]: crate::EventLoop::restore
pub struct LoopSnapshot {
    pub(crate) cfg: LoopConfig,
    pub(crate) now: VTime,
    pub(crate) rng_env: Rng,
    pub(crate) rng_cost: Rng,
    pub(crate) timers: TimerHeap,
    pub(crate) idle: RepeatHandles,
    pub(crate) prepare: RepeatHandles,
    pub(crate) check: RepeatHandles,
    pub(crate) poll: PollState,
    pub(crate) pool: PoolState,
    pub(crate) env: EnvQueue,
    pub(crate) signals: SignalState,
    pub(crate) procs: ProcTable,
    pub(crate) trace: TraceRecorder,
    pub(crate) errors: Vec<AppError>,
    pub(crate) stopped: bool,
    pub(crate) hung: bool,
    pub(crate) demux_done: bool,
    pub(crate) iter: u64,
    /// Deep copy of the attached event log's content at capture time,
    /// plus the event that was current (`None` = no log attached).
    pub(crate) events: Option<(EventLog, Option<CbId>)>,
    pub(crate) sched: Box<dyn Scheduler>,
    pub(crate) pool_mode: PoolMode,
}

impl std::fmt::Debug for LoopSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopSnapshot")
            .field("now", &self.now)
            .field("iter", &self.iter)
            .field("scheduler", &self.sched.name())
            .finish_non_exhaustive()
    }
}

/// Whether the state is at a forkable point (see module docs): no queued
/// one-shot callbacks anywhere, and a scheduler that can fork itself.
pub(crate) fn fork_admissible(st: &LoopState, sched: &dyn Scheduler) -> bool {
    st.micro.is_empty()
        && st.immediates.is_empty()
        && st.pending.is_empty()
        && st.closing.is_empty()
        && !st.pool.busy()
        && !st.env.has_custom()
        && sched.fork_box().is_some()
}

impl LoopSnapshot {
    /// Captures a snapshot of `st`, or `None` if the state is not at a
    /// forkable point.
    pub(crate) fn capture(
        st: &LoopState,
        sched: &dyn Scheduler,
        pool_mode: PoolMode,
    ) -> Option<LoopSnapshot> {
        if !(st.micro.is_empty()
            && st.immediates.is_empty()
            && st.pending.is_empty()
            && st.closing.is_empty())
        {
            return None;
        }
        let env = st.env.try_clone()?;
        let pool = st.pool.try_clone()?;
        let sched = sched.fork_box()?;
        Some(LoopSnapshot {
            cfg: st.cfg.clone(),
            now: st.now,
            rng_env: st.rng_env.clone(),
            rng_cost: st.rng_cost.clone(),
            timers: st.timers.clone(),
            idle: st.idle.clone(),
            prepare: st.prepare.clone(),
            check: st.check.clone(),
            poll: st.poll.clone(),
            pool,
            env,
            signals: st.signals.clone(),
            procs: st.procs.clone(),
            trace: st.trace.clone(),
            errors: st.errors.clone(),
            stopped: st.stopped,
            hung: st.hung,
            demux_done: st.demux_done,
            iter: st.iter,
            events: st
                .events
                .as_ref()
                .map(|h| (h.0.borrow().clone(), st.current)),
            sched,
            pool_mode,
        })
    }

    /// Overwrites `st` with the captured state and returns a fresh fork of
    /// the captured scheduler, or `None` — leaving `st` untouched — if the
    /// snapshot cannot be soundly resumed: its scheduler refuses to fork
    /// again, or a captured one-shot timer's callback has already been
    /// consumed by another run sharing it (the snapshot went stale).
    ///
    /// If the target loop has an event log attached, the snapshot's log
    /// content is written into that same handle (external holders observe
    /// the rewind); otherwise a fresh handle is attached.
    pub(crate) fn restore_into(&self, st: &mut LoopState) -> Option<Box<dyn Scheduler>> {
        if self.timers.any_spent_oneshot() {
            return None;
        }
        let sched = self.sched.fork_box()?;
        st.cfg = self.cfg.clone();
        st.now = self.now;
        st.rng_env = self.rng_env.clone();
        st.rng_cost = self.rng_cost.clone();
        st.timers = self.timers.clone();
        st.micro.clear();
        st.immediates.clear();
        st.pending.clear();
        st.closing.clear();
        st.idle = self.idle.clone();
        st.prepare = self.prepare.clone();
        st.check = self.check.clone();
        st.poll = self.poll.clone();
        st.pool = self.pool.try_clone().expect("captured pool is idle");
        st.env = self.env.try_clone().expect("captured env has no customs");
        st.signals = self.signals.clone();
        st.procs = self.procs.clone();
        st.trace = self.trace.clone();
        st.errors = self.errors.clone();
        st.stopped = self.stopped;
        st.hung = self.hung;
        st.demux_done = self.demux_done;
        st.iter = self.iter;
        match &self.events {
            Some((content, current)) => {
                let handle = st.events.take().unwrap_or_default();
                *handle.0.borrow_mut() = content.clone();
                st.events = Some(handle);
                st.current = *current;
            }
            None => {
                st.events = None;
                st.current = None;
            }
        }
        Some(sched)
    }

    /// Virtual time at the capture point.
    pub fn now(&self) -> VTime {
        self.now
    }

    /// Loop iterations executed up to the capture point.
    pub fn iterations(&self) -> u64 {
        self.iter
    }

    /// Name of the captured scheduler.
    pub fn scheduler_name(&self) -> &'static str {
        self.sched.name()
    }
}
