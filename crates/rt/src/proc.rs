//! Simulated child processes.
//!
//! §4.2.1 of the paper lists child processes among the server-side
//! nondeterminism sources. A spawned child is an environment actor: it
//! emits output chunks at scheduled offsets and exits after a (jittered)
//! runtime. Output and exit arrive as poll events on the child's pipe
//! descriptor — fuzzable like everything else. `SIGCHLD` is raised at exit
//! for programs that watch it.

use std::collections::VecDeque;

use crate::poll::Fd;
use crate::time::VDur;

/// Identifier of a spawned child process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

/// Specification of a child process to spawn.
#[derive(Clone, Debug)]
pub struct ChildSpec {
    /// Nominal runtime until exit (jittered by the environment RNG).
    pub runtime: VDur,
    /// Exit code reported at termination.
    pub exit_code: i32,
    /// Output chunks: (offset from spawn, bytes). Offsets are clamped to
    /// the child's actual lifetime.
    pub output: Vec<(VDur, Vec<u8>)>,
}

impl ChildSpec {
    /// A child that just runs for `runtime` and exits 0.
    pub fn sleeper(runtime: VDur) -> ChildSpec {
        ChildSpec {
            runtime,
            exit_code: 0,
            output: Vec::new(),
        }
    }

    /// Adds an output chunk.
    pub fn with_output(mut self, offset: VDur, bytes: impl Into<Vec<u8>>) -> ChildSpec {
        self.output.push((offset, bytes.into()));
        self
    }

    /// Sets the exit code.
    pub fn with_exit_code(mut self, code: i32) -> ChildSpec {
        self.exit_code = code;
        self
    }
}

/// An event observable on a child's pipe.
#[derive(Clone)]
pub(crate) enum ChildEvent {
    Output(Vec<u8>),
    Exit(i32),
}

#[derive(Clone)]
pub(crate) struct ChildState {
    pub pid: Pid,
    pub fd: Fd,
    pub inbox: VecDeque<ChildEvent>,
    pub killed: bool,
    pub exited: bool,
}

#[derive(Clone, Default)]
pub(crate) struct ProcTable {
    pub children: Vec<ChildState>,
    pub next_pid: u32,
}

impl ProcTable {
    pub fn next_pid(&mut self) -> Pid {
        self.next_pid += 1;
        Pid(self.next_pid)
    }

    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut ChildState> {
        self.children.iter_mut().find(|c| c.pid == pid)
    }

    pub fn by_fd(&mut self, fd: Fd) -> Option<&mut ChildState> {
        self.children.iter_mut().find(|c| c.fd == fd)
    }

    pub fn remove(&mut self, pid: Pid) -> Option<ChildState> {
        let idx = self.children.iter().position(|c| c.pid == pid)?;
        Some(self.children.swap_remove(idx))
    }

    pub fn running(&self) -> usize {
        self.children.iter().filter(|c| !c.exited).count()
    }

    /// Clears all state for a fresh run, keeping allocated capacity.
    pub fn reset(&mut self) {
        self.children.clear();
        self.next_pid = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder() {
        let spec = ChildSpec::sleeper(VDur::millis(5))
            .with_output(VDur::millis(1), b"hello".to_vec())
            .with_exit_code(3);
        assert_eq!(spec.runtime, VDur::millis(5));
        assert_eq!(spec.exit_code, 3);
        assert_eq!(spec.output.len(), 1);
    }

    #[test]
    fn table_pid_allocation_and_lookup() {
        let mut t = ProcTable::default();
        let a = t.next_pid();
        let b = t.next_pid();
        assert_ne!(a, b);
        t.children.push(ChildState {
            pid: a,
            fd: Fd(9),
            inbox: VecDeque::new(),
            killed: false,
            exited: false,
        });
        assert_eq!(t.running(), 1);
        assert!(t.get_mut(a).is_some());
        assert!(t.by_fd(Fd(9)).is_some());
        assert!(t.get_mut(b).is_none());
        assert!(t.remove(a).is_some());
        assert_eq!(t.running(), 0);
    }
}
