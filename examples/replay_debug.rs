//! Record-and-replay debugging: catch a race with the random fuzzer once,
//! then replay the exact manifesting schedule deterministically, forever.
//!
//! The program under test has an NES-style NW–Timer atomicity violation: a
//! heartbeat timer dereferences a slot that a teardown event may already
//! have cleared.
//!
//! ```sh
//! cargo run -p nodefz-bench --example replay_debug
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use nodefz::{DecisionTrace, FuzzParams, FuzzScheduler, RecordingScheduler, ReplayScheduler};
use nodefz_rt::{EventLoop, LoopConfig, Scheduler, VDur};

/// The buggy program: returns whether the null-deref fired.
fn run_with(scheduler: Box<dyn Scheduler>, env_seed: u64) -> (bool, nodefz_rt::RunReport) {
    let mut el = EventLoop::with_scheduler(LoopConfig::seeded(env_seed), scheduler);
    let slot: Rc<RefCell<Option<u32>>> = Rc::new(RefCell::new(Some(7)));
    let s_timer = slot.clone();
    let s_clear = slot.clone();
    el.enter(move |cx| {
        // Heartbeat: uses the slot without checking it (the bug).
        cx.set_timeout(VDur::millis(4), move |cx| {
            if s_timer.borrow().is_none() {
                cx.crash("null-deref", "heartbeat after teardown");
            }
        });
        // Teardown arrives from the environment shortly after the
        // heartbeat's deadline.
        cx.schedule_env(VDur::micros(4_500), move |_cx| {
            *s_clear.borrow_mut() = None;
        });
        // Suite noise: a few other timers so deferral decisions exist.
        for i in 1..6u64 {
            cx.set_interval(VDur::micros(700 * i), move |cx| {
                cx.busy(VDur::micros(120));
                if cx.now() > nodefz_rt::VTime::ZERO + VDur::millis(10) {
                    cx.stop();
                }
            });
        }
    });
    let report = el.run();
    (report.has_error("null-deref"), report)
}

fn main() {
    println!("phase 1: hunt the race with the random fuzzer, recording decisions\n");
    let mut caught: Option<(u64, DecisionTrace)> = None;
    for seed in 0..500 {
        let fuzz = FuzzScheduler::new(FuzzParams::standard(), seed);
        let (recorder, handle) = RecordingScheduler::new(fuzz);
        let (manifested, _) = run_with(Box::new(recorder), seed);
        if manifested {
            println!("  manifested at sched_seed {seed}");
            caught = Some((seed, handle.snapshot()));
            break;
        }
    }
    let (seed, trace) = caught.expect("the race should manifest within 500 seeds");
    println!("  recorded {} scheduling decisions\n", trace.len());

    println!("phase 2: replay the trace — deterministic re-manifestation\n");
    for attempt in 0..5 {
        let replayer = ReplayScheduler::new(trace.clone());
        let (manifested, report) = run_with(Box::new(replayer), seed);
        assert!(
            manifested,
            "replay attempt {attempt} must reproduce the bug"
        );
        println!(
            "  replay {attempt}: crash reproduced at {} ({} callbacks)",
            report.end_time, report.dispatched
        );
    }
    println!("\nThe flaky manifestation is now a deterministic regression test.");
}
