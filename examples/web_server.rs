//! A registration web server with a check-then-insert atomicity violation
//! (the GHO pattern from the paper's bug study), hunted with Node.fz.
//!
//! The server asynchronously checks whether a username exists and
//! asynchronously inserts it if not — two interleavable steps. The example
//! runs the same workload under vanilla scheduling (the bug hides) and
//! then fuzzes seeds until the duplicate account appears.
//!
//! ```sh
//! cargo run -p nodefz-bench --example web_server
//! ```

use nodefz::Mode;
use nodefz_kv::{Kv, KvTiming};
use nodefz_net::{Client, LatencyModel, SimNet};
use nodefz_rt::{EventLoop, LoopConfig, VDur};

/// Builds the server and workload; returns the kv handle for inspection.
fn scenario(el: &mut EventLoop) -> Kv {
    // Steady network and database timing: the calm schedule really is calm.
    let net = SimNet::with_latency(LatencyModel {
        base: VDur::millis(2),
        jitter: 0.05,
    });
    let n = net.clone();
    let kv = el.enter(|cx| {
        Kv::connect_with(
            cx,
            2,
            KvTiming {
                latency: VDur::millis(1),
                latency_jitter: 0.05,
                proc: VDur::micros(200),
                proc_jitter: 0.1,
            },
        )
        .expect("kv pool")
    });
    let kv_srv = kv.clone();
    el.enter(move |cx| {
        n.listen(cx, 80, move |_cx, conn| {
            let kv = kv_srv.clone();
            conn.on_data(move |cx, conn, msg| {
                let Some(name) = msg.strip_prefix(b"signup:") else {
                    return;
                };
                let name = String::from_utf8_lossy(name).to_string();
                let kv2 = kv.clone();
                let me = conn.clone();
                let key = format!("user:{name}");
                let key2 = key.clone();
                // RACY: async check ...
                kv.get(cx, &key, move |cx, existing| {
                    if existing.is_some() {
                        let _ = me.write(cx, b"taken".to_vec());
                        return;
                    }
                    let kv3 = kv2.clone();
                    let me2 = me.clone();
                    // ... then async insert.
                    kv2.set(cx, &key2, "profile", move |cx, ()| {
                        let row = format!("acct:{}", me2.id().to_owned_label());
                        kv3.set(cx, &row, "created", |_cx, ()| {});
                        let _ = me2.write(cx, b"welcome".to_vec());
                    });
                });
            });
        })
        .expect("listen");
    });
    el.enter(|cx| {
        // A server also runs periodic work — every expired timer is a
        // deferral opportunity for the fuzzer.
        cx.set_interval(VDur::micros(800), |cx| {
            cx.busy(VDur::micros(30));
            if cx.now() > nodefz_rt::VTime::ZERO + VDur::millis(12) {
                // Periodic work winds down with the test.
                cx.stop();
            }
        });
        // The second signup normally arrives well after the first one's
        // insert has been applied.
        for delay_us in [0u64, 3_800] {
            let c = Client::connect(cx, &net, 80);
            c.send_after(cx, VDur::micros(delay_us), b"signup:alice".to_vec());
            c.close_after(cx, VDur::millis(20));
        }
        net.close_all_listeners_after(cx, VDur::millis(30));
    });
    kv
}

fn accounts(kv: &Kv) -> usize {
    kv.count_prefix_sync("acct:")
}

fn main() {
    println!("hunting a check-then-insert AV with Node.fz\n");
    // Vanilla: the calm schedule hides the race.
    let mut el = Mode::Vanilla.build_loop(LoopConfig::seeded(1), 0);
    let kv = scenario(&mut el);
    el.run();
    println!(
        "nodeV  seed 1: {} account row(s) for 'alice'",
        accounts(&kv)
    );

    // Fuzz seeds until the duplicate appears.
    for seed in 0..200 {
        let mut el = Mode::Fuzz.build_loop(LoopConfig::seeded(seed), seed);
        let kv = scenario(&mut el);
        let report = el.run();
        let rows = accounts(&kv);
        if rows > 1 {
            println!(
                "nodeFZ seed {seed}: {} account rows — the race manifested \
                 after {} callbacks at {}",
                rows, report.dispatched, report.end_time
            );
            println!("\nBoth registrations observed 'absent' and both inserted.");
            return;
        }
    }
    panic!("the race should manifest within 200 fuzzed seeds");
}

/// Tiny helper so the example can label rows per connection.
trait OwnedLabel {
    fn to_owned_label(&self) -> String;
}

impl OwnedLabel for nodefz_net::ConnId {
    fn to_owned_label(&self) -> String {
        format!("{self:?}")
    }
}
