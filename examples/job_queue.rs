//! A retryable job queue with the KUE ordering violation (Figure 3 of the
//! paper), and its fix.
//!
//! `mark_failed` must leave a retryable job in state `delayed`; the buggy
//! version launches the `failed` and `delayed` updates concurrently, so
//! they can land in either order. The example measures how often each
//! variant ends in the wrong state under Node.fz.
//!
//! ```sh
//! cargo run -p nodefz-bench --example job_queue
//! ```

use nodefz::Mode;
use nodefz_kv::Kv;
use nodefz_rt::{Ctx, EventLoop, LoopConfig, VDur};

fn mark_failed(cx: &mut Ctx<'_>, kv: &Kv, ordered: bool) {
    // update(): fetch the job, then write state `failed`.
    let update = {
        let kv = kv.clone();
        move |cx: &mut Ctx<'_>, then: Box<dyn FnOnce(&mut Ctx<'_>)>| {
            let kv2 = kv.clone();
            kv.get(cx, "job:7:state", move |cx, _| {
                kv2.set(cx, "job:7:state", "failed", move |cx, ()| then(cx));
            });
        }
    };
    // delayed(): fetch the job, then write state `delayed` and enqueue it.
    let delayed = {
        let kv = kv.clone();
        move |cx: &mut Ctx<'_>| {
            let kv2 = kv.clone();
            kv.get(cx, "job:7:state", move |cx, _| {
                let kv3 = kv2.clone();
                kv2.set(cx, "job:7:state", "delayed", move |cx, ()| {
                    kv3.lpush(cx, "q:delayed", "job:7", |_cx, _| {});
                });
            });
        }
    };
    if ordered {
        // The upstream fix: delayed() runs in update()'s callback.
        update(cx, Box::new(move |cx| delayed(cx)));
    } else {
        // The bug: `self.update().delayed()` — unordered chains.
        update(cx, Box::new(|_cx| {}));
        delayed(cx);
    }
}

fn run_once(seed: u64, ordered: bool) -> Option<String> {
    let mut el = Mode::Fuzz.build_loop(LoopConfig::seeded(seed), seed ^ 0xABCD);
    let kv = el.enter(|cx| Kv::connect(cx, 2).expect("kv"));
    let k = kv.clone();
    el.enter(move |cx| {
        k.set_sync("job:7:state", "active");
        cx.set_timeout(VDur::millis(1), move |cx| mark_failed(cx, &k, ordered));
    });
    el.run();
    kv.get_sync("job:7:state")
}

fn main() {
    println!("KUE #483: a job must end `delayed`, never `failed`+queued\n");
    let runs = 100;
    for (label, ordered) in [
        ("buggy (concurrent updates)", false),
        ("fixed (ordered chains)", true),
    ] {
        let wrong = (0..runs)
            .filter(|&seed| run_once(seed, ordered).as_deref() != Some("delayed"))
            .count();
        println!("{label:<28} wrong final state in {wrong}/{runs} fuzzed runs");
        if ordered {
            assert_eq!(wrong, 0, "the ordered version must always be correct");
        }
    }
    println!("\nOrdering the chains (Figure 3's patch) eliminates the violation.");
    let _ = EventLoop::new(LoopConfig::default());
}
