//! Quickstart: build a tiny event-driven app and run it under the vanilla
//! scheduler and under Node.fz.
//!
//! ```sh
//! cargo run -p nodefz-bench --example quickstart
//! ```

use nodefz::Mode;
use nodefz_rt::{CbKind, LoopConfig, VDur};

fn main() {
    println!("nodefz quickstart: one program, two schedulers\n");
    for mode in [Mode::Vanilla, Mode::Fuzz] {
        // `env_seed` fixes the modelled environment; the second argument
        // seeds the fuzzer's decisions.
        let mut el = mode.build_loop(LoopConfig::seeded(7), 42);

        el.enter(|cx| {
            // A timer, some offloaded work, and an immediate — the three
            // kinds of asynchrony a Node.js program mixes.
            cx.set_timeout(VDur::millis(5), |cx| {
                println!("  [{}] timer fired", cx.now());
            });
            for task in 0..3u32 {
                cx.submit_work(
                    VDur::millis(2),
                    move |_worker| task * task,
                    move |cx, squared| {
                        println!("  [{}] worker task {task} done -> {squared}", cx.now());
                    },
                )
                .expect("submit");
            }
            cx.set_immediate(|cx| {
                println!("  [{}] immediate ran", cx.now());
            });
        });

        let report = el.run();
        println!(
            "{}: {} callbacks, {} pool tasks, finished at {} ({:?})",
            mode.label(),
            report.dispatched,
            report.pool.completed,
            report.end_time,
            report.termination,
        );
        println!(
            "  type schedule: {}\n",
            report
                .schedule
                .codes()
                .iter()
                .map(|&b| b as char)
                .collect::<String>()
        );
        assert_eq!(report.schedule.count(CbKind::Timer), 1);
        assert_eq!(report.pool.completed, 3);
    }
    println!("Same program, same environment seed — different legal schedules.");
}
