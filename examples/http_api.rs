//! A REST-ish API server with a read-modify-write race on a counter
//! resource, hunted with Node.fz through the HTTP layer.
//!
//! `POST /counters/:name/incr` reads the counter from the database, then
//! writes back `value + 1` — a lost-update atomicity violation when two
//! increments interleave.
//!
//! ```sh
//! cargo run -p nodefz-bench --example http_api
//! ```

use nodefz::Mode;
use nodefz_http::{HttpClient, HttpServer, Response, Router};
use nodefz_kv::{Kv, KvTiming};
use nodefz_net::{LatencyModel, SimNet};
use nodefz_rt::{EventLoop, LoopConfig, VDur};

fn scenario(el: &mut EventLoop, atomic: bool) -> Kv {
    let net = SimNet::with_latency(LatencyModel {
        base: VDur::millis(2),
        jitter: 0.05,
    });
    let kv = el.enter(|cx| {
        Kv::connect_with(
            cx,
            2,
            KvTiming {
                latency: VDur::millis(1),
                latency_jitter: 0.05,
                proc: VDur::micros(200),
                proc_jitter: 0.1,
            },
        )
        .expect("kv pool")
    });
    kv.set_sync("counter:hits", "0");
    let kv_srv = kv.clone();
    let n = net.clone();
    el.enter(move |cx| {
        let mut router = Router::new();
        router.post("/counters/:name/incr", move |cx, req, responder| {
            let key = format!("counter:{}", req.param("name").expect("route param"));
            let kv = kv_srv.clone();
            if atomic {
                // FIX: one atomic server-side increment.
                kv.incr(cx, &key, move |cx, value| {
                    responder.send(cx, Response::ok(value.to_string()));
                });
            } else {
                // RACY: read…
                let kv2 = kv.clone();
                let key2 = key.clone();
                kv.get(cx, &key, move |cx, value| {
                    let current: i64 = value.as_deref().and_then(|v| v.parse().ok()).unwrap_or(0);
                    // …then write back. Interleavable.
                    let next = current + 1;
                    kv2.set(cx, &key2, &next.to_string(), move |cx, ()| {
                        responder.send(cx, Response::ok(next.to_string()));
                    });
                });
            }
        });
        HttpServer::listen(cx, &n, 80, router).expect("listen");
        // Periodic server work: deferral opportunities for the fuzzer.
        cx.set_interval(VDur::micros(800), |cx| {
            cx.busy(VDur::micros(30));
            if cx.now() > nodefz_rt::VTime::ZERO + VDur::millis(14) {
                cx.stop();
            }
        });
    });
    el.enter(|cx| {
        for delay_us in [0u64, 3_800] {
            let c = HttpClient::connect(cx, &net, 80);
            c.request_after(
                cx,
                VDur::micros(delay_us),
                nodefz_http::Method::Post,
                "/counters/hits/incr",
                b"",
            );
            c.close_after(cx, VDur::millis(20));
        }
        net.close_all_listeners_after(cx, VDur::millis(30));
    });
    kv
}

fn final_count(kv: &Kv) -> i64 {
    kv.get_sync("counter:hits")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() {
    println!("hunting a lost update behind a REST endpoint\n");
    let mut el = Mode::Vanilla.build_loop(LoopConfig::seeded(1), 0);
    let kv = scenario(&mut el, false);
    el.run();
    println!(
        "nodeV  seed 1: two increments -> counter = {}",
        final_count(&kv)
    );

    for seed in 0..200 {
        let mut el = Mode::Fuzz.build_loop(LoopConfig::seeded(seed), seed);
        let kv = scenario(&mut el, false);
        el.run();
        let count = final_count(&kv);
        if count < 2 {
            println!("nodeFZ seed {seed}: two increments -> counter = {count}  (LOST UPDATE)");
            // The atomic version survives the same seed.
            let mut el = Mode::Fuzz.build_loop(LoopConfig::seeded(seed), seed);
            let kv = scenario(&mut el, true);
            el.run();
            let fixed = final_count(&kv);
            println!("fixed  seed {seed}: two increments -> counter = {fixed}");
            assert_eq!(fixed, 2);
            return;
        }
    }
    panic!("the lost update should manifest within 200 fuzzed seeds");
}
