//! The MKD file-system race: two concurrent `mkdir -p` calls sharing a
//! prefix, with the EEXIST-mishandling bug of mkdirp issue #2.
//!
//! Demonstrates a race on *file-system state* rather than memory — the
//! class of bug the paper shows memory-only race detectors cannot see
//! (§3.3.2).
//!
//! ```sh
//! cargo run -p nodefz-bench --example mkdirp_race
//! ```

use nodefz::Mode;
use nodefz_apps::common::{BugCase, RunCfg, Variant};
use nodefz_apps::Mkd;

fn main() {
    println!("MKD #2: mkdirp('build/cache/js') racing mkdirp('build/cache/css')\n");

    // Vanilla schedules keep the two recursions apart.
    let mut vanilla_hits = 0;
    for seed in 0..50 {
        if Mkd
            .run(&RunCfg::new(Mode::Vanilla, seed), Variant::Buggy)
            .manifested
        {
            vanilla_hits += 1;
        }
    }
    println!("nodeV : {vanilla_hits}/50 runs returned success without the directory");

    // Node.fz interleaves the recursions: one call sees EEXIST on a parent
    // the other just created and returns prematurely.
    let mut fuzz_hits = 0;
    let mut first_evidence = None;
    for seed in 0..50 {
        let out = Mkd.run(&RunCfg::new(Mode::Fuzz, seed), Variant::Buggy);
        if out.manifested {
            fuzz_hits += 1;
            first_evidence.get_or_insert((seed, out.detail));
        }
    }
    println!("nodeFZ: {fuzz_hits}/50 runs returned success without the directory");
    if let Some((seed, detail)) = first_evidence {
        println!("\nfirst manifestation (seed {seed}): {detail}");
    }

    // The patched errno handling survives the same fuzzing.
    let fixed_hits = (0..50)
        .filter(|&seed| {
            Mkd.run(&RunCfg::new(Mode::Fuzz, seed), Variant::Fixed)
                .manifested
        })
        .count();
    println!("\nfixed mkdirp under nodeFZ: {fixed_hits}/50 manifestations");
    assert_eq!(fixed_hits, 0);
    assert!(fuzz_hits > vanilla_hits);
}
